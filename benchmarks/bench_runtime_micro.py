"""Microbenchmarks of the runtime itself (not figure reproductions).

Measures the costs the paper's section VI block-size discussion is
about: per-task dependency analysis, ready-list operations, pragma
parsing, threaded execution overhead, and simulator event throughput.
"""

import time

import numpy as np

from repro import SmpssRuntime, css_task, parse_pragma
from repro.core.invocation import instantiate
from repro.core.dependencies import DependencyTracker
from repro.core.graph import TaskGraph
from repro.core.scheduler import SmpssScheduler
from repro.core.task import TaskDefinition, TaskInstance, reset_task_ids
from repro.core.tracing import NullTracer


@css_task("input(a, b) inout(c)")
def _gemm_like(a, b, c):  # noqa: ARG001
    pass


def test_pragma_parse(benchmark):
    text = "input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) output(dest{i1..j2})"
    parsed = benchmark(parse_pragma, text)
    assert len(parsed.params) == 7


def test_task_instantiation(benchmark):
    a = np.zeros((4, 4), np.float32)
    b = np.zeros((4, 4), np.float32)
    c = np.zeros((4, 4), np.float32)
    defn = _gemm_like.definition

    inst = benchmark(instantiate, defn, (a, b, c), {})
    assert len(inst.accesses) == 3


def test_dependency_analysis_throughput(benchmark):
    """Analyse a 1000-task chain: the paper's task_add overhead."""

    defn = _gemm_like.definition
    a = np.zeros((4, 4), np.float32)
    b = np.zeros((4, 4), np.float32)
    c = np.zeros((4, 4), np.float32)

    def analyse_chain():
        reset_task_ids()
        tracker = DependencyTracker(TaskGraph(keep_finished=False))
        for _ in range(1000):
            tracker.analyze(instantiate(defn, (a, b, c), {}))
        return tracker

    tracker = benchmark(analyse_chain)
    assert tracker.graph.stats.total_tasks == 1000


def test_scheduler_push_pop(benchmark):
    defn = TaskDefinition(func=lambda: None, params=(), name="t")

    def cycle():
        reset_task_ids()
        scheduler = SmpssScheduler(num_threads=8)
        tasks = [
            TaskInstance(definition=defn, accesses=[], arguments={})
            for _ in range(512)
        ]
        for i, t in enumerate(tasks):
            scheduler.push_unlocked(t, thread=i % 8)
        popped = 0
        for i in range(512):
            if scheduler.pop(i % 8) is not None:
                popped += 1
        return popped

    assert benchmark(cycle) == 512


def test_null_tracer_overhead_under_five_percent():
    """Tracing-off must be free: NullTracer adds <5% to the hot path.

    The scheduler (and DependencyTracker) normalise falsy tracers to
    ``None`` at construction, so the disabled-tracing guard is a plain
    ``None`` check rather than a Python-level ``__bool__`` call per
    push/pop.  This pins that property with a paired measurement of the
    hottest tracer-guarded loop — 512 tasks pushed and popped through
    the section III policy — comparing ``tracer=None`` against
    ``tracer=NullTracer()``.  min-of-N timing rejects scheduler noise.
    """

    defn = TaskDefinition(func=lambda: None, params=(), name="t")

    def cycle(tracer):
        reset_task_ids()
        scheduler = SmpssScheduler(num_threads=8, tracer=tracer)
        tasks = [
            TaskInstance(definition=defn, accesses=[], arguments={})
            for _ in range(512)
        ]
        for rounds in range(50):
            for i, t in enumerate(tasks):
                scheduler.push_unlocked(t, thread=i % 8)
            for i in range(512):
                scheduler.pop(i % 8)

    def best_of(tracer_factory, repeats=7):
        best = float("inf")
        for _ in range(repeats):
            tracer = tracer_factory()
            start = time.perf_counter()
            cycle(tracer)
            best = min(best, time.perf_counter() - start)
        return best

    cycle(None)  # warm up allocators and bytecode caches
    disabled = best_of(lambda: None)
    null = best_of(NullTracer)
    overhead = null / disabled - 1.0
    assert overhead < 0.05, (
        f"NullTracer path {overhead:.1%} slower than tracing disabled "
        f"({null:.4f}s vs {disabled:.4f}s)"
    )


def test_health_watchdog_overhead_under_five_percent():
    """``health=True`` (tracing off) adds <5% to the per-task pipeline.

    The health layer's *whole* hot-path footprint is one
    ``FlightRecorder.note_task`` call per completed task — a tuple
    appended to a bounded ring outside both runtime locks — plus a
    ``None`` check when health is off; the watchdog samples on its own
    thread, off the hot path entirely.  A paired wall-clock A/B of two
    full runtimes cannot resolve 5% on a noisy shared host (the noise
    floor between *identical* configs exceeds the bound), so this pin
    compares the two costs directly, each measured the stable way:

    * the per-task cost of the full submission→execution→completion
      pipeline, min-of-N over 300-task batches (the quantity
      ``micro_submission_throughput`` gates);
    * the measured cost of one ``note_task`` call, averaged over a
      tight loop (deterministic to a few ns).

    The health addition must be <5% of the cheapest observed pipeline
    cost — the same claim as a paired A/B, without the noise.
    """

    from repro.obs.flightrec import FlightRecorder

    a = np.zeros(1)

    @css_task("inout(x)")
    def tick(x):
        x += 1

    def batch_seconds() -> float:
        a[0] = 0
        with SmpssRuntime(num_workers=2, metrics=True) as rt:
            tick(a)  # first-submission compile outside the clock
            rt.barrier()
            start = time.perf_counter()
            for _ in range(300):
                tick(a)
            rt.barrier()
            elapsed = time.perf_counter() - start
        assert a[0] == 301
        return elapsed

    batch_seconds()  # warm up allocators and bytecode caches
    per_task = min(batch_seconds() for _ in range(7)) / 300

    recorder = FlightRecorder(num_threads=2)
    calls = 50_000
    start = time.perf_counter()
    for i in range(calls):
        recorder.note_task(i, "tick", 0, 1.0, 0.5)
    note_cost = (time.perf_counter() - start) / calls

    overhead = note_cost / per_task
    assert overhead < 0.05, (
        f"flight-recorder hot path is {overhead:.1%} of the per-task "
        f"pipeline cost ({note_cost * 1e9:.0f}ns vs "
        f"{per_task * 1e6:.1f}us per task)"
    )


def test_threaded_runtime_task_overhead(benchmark):
    """Wall-clock per-task cost of the full threaded pipeline."""

    a = np.zeros(1)

    @css_task("inout(x)")
    def tick(x):
        x += 1

    def run_batch():
        a[0] = 0
        with SmpssRuntime(num_workers=2) as rt:
            for _ in range(300):
                tick(a)
            rt.barrier()
        return a[0]

    assert benchmark(run_batch) == 300


def test_submission_throughput_tasks_per_sec(benchmark):
    """End-to-end tasks/sec of the submission fast path, both shapes.

    The same measurement backs the committed ``micro`` figure baseline
    (``repro.bench compare`` gates it); here it rides along with the
    other microbenchmarks so a local ``pytest benchmarks/`` run shows
    the tasks/sec figure directly in ``extra_info``.
    """

    from repro.bench.experiments import _submission_rate_once

    def run_both():
        return {
            "chain-1": _submission_rate_once("chain-1", 1000, 2),
            "fanout-64": _submission_rate_once("fanout-64", 1000, 2),
        }

    rates = benchmark.pedantic(run_both, rounds=3, iterations=1)
    for variant, rate in rates.items():
        benchmark.extra_info[f"{variant}_tasks_per_sec"] = round(rate)
        assert rate > 0


def test_simulator_event_throughput(benchmark):
    """Simulated tasks retired per second of host time."""

    from repro.sim import ALTIX_32, CostModel, run_static
    from repro.sim.baselines import build_multisort_dag, scheduler_for_model

    template = build_multisort_dag(1 << 18, 1 << 12, "cilk")
    machine = ALTIX_32

    def run():
        return run_static(
            template.build(), machine,
            CostModel(machine, block_size=1),
            scheduler_for_model("cilk"),
        )

    res = benchmark(run)
    assert res.tasks_executed == len(template.nodes)


def test_live_gate_detached_overhead_under_five_percent():
    """A dark dispatch gate must be (nearly) free: <5% on push/pop.

    ``live=False`` leaves ``scheduler.gate`` as ``None``, so the gated
    dispatch path costs one attribute load and a ``None`` check per
    pop.  Even the next tier up — a live session *attached* but wide
    open (no pause, no breakpoints) — must stay within 5% of the
    ungated loop, or attaching a dashboard would perturb the very
    schedule being inspected.  ``DispatchGate.install`` guarantees
    that: a disengaged gate vacates the scheduler's ``gate`` slot
    entirely, so both variants here run the identical ``None``-checked
    path.  Same paired min-of-N idiom as the NullTracer pin, with the
    two variants *interleaved* per repeat so clock-frequency drift
    cancels instead of biasing one side.
    """

    from repro.core.scheduler import DispatchGate

    defn = TaskDefinition(func=lambda: None, params=(), name="t")

    def cycle(gate):
        reset_task_ids()
        scheduler = SmpssScheduler(num_threads=8)
        if gate is not None:
            gate.install(scheduler)
        tasks = [
            TaskInstance(definition=defn, accesses=[], arguments={})
            for _ in range(512)
        ]
        for rounds in range(50):
            for i, t in enumerate(tasks):
                scheduler.push_unlocked(t, thread=i % 8)
            for i in range(512):
                scheduler.pop(i % 8)

    def timed(gate) -> float:
        start = time.perf_counter()
        cycle(gate)
        return time.perf_counter() - start

    cycle(None)  # warm up allocators and bytecode caches
    cycle(DispatchGate())
    detached = float("inf")
    idle_gate = float("inf")
    for _ in range(9):
        detached = min(detached, timed(None))
        idle_gate = min(idle_gate, timed(DispatchGate()))
    overhead = idle_gate / detached - 1.0
    assert overhead < 0.05, (
        f"idle DispatchGate path {overhead:.1%} slower than no gate "
        f"({idle_gate:.4f}s vs {detached:.4f}s)"
    )
