"""Microbenchmarks of the runtime itself (not figure reproductions).

Measures the costs the paper's section VI block-size discussion is
about: per-task dependency analysis, ready-list operations, pragma
parsing, threaded execution overhead, and simulator event throughput.
"""

import numpy as np

from repro import SmpssRuntime, css_task, parse_pragma
from repro.core.invocation import instantiate
from repro.core.dependencies import DependencyTracker
from repro.core.graph import TaskGraph
from repro.core.scheduler import SmpssScheduler
from repro.core.task import TaskDefinition, TaskInstance, reset_task_ids


@css_task("input(a, b) inout(c)")
def _gemm_like(a, b, c):  # noqa: ARG001
    pass


def test_pragma_parse(benchmark):
    text = "input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) output(dest{i1..j2})"
    parsed = benchmark(parse_pragma, text)
    assert len(parsed.params) == 7


def test_task_instantiation(benchmark):
    a = np.zeros((4, 4), np.float32)
    b = np.zeros((4, 4), np.float32)
    c = np.zeros((4, 4), np.float32)
    defn = _gemm_like.definition

    inst = benchmark(instantiate, defn, (a, b, c), {})
    assert len(inst.accesses) == 3


def test_dependency_analysis_throughput(benchmark):
    """Analyse a 1000-task chain: the paper's task_add overhead."""

    defn = _gemm_like.definition
    a = np.zeros((4, 4), np.float32)
    b = np.zeros((4, 4), np.float32)
    c = np.zeros((4, 4), np.float32)

    def analyse_chain():
        reset_task_ids()
        tracker = DependencyTracker(TaskGraph(keep_finished=False))
        for _ in range(1000):
            tracker.analyze(instantiate(defn, (a, b, c), {}))
        return tracker

    tracker = benchmark(analyse_chain)
    assert tracker.graph.stats.total_tasks == 1000


def test_scheduler_push_pop(benchmark):
    defn = TaskDefinition(func=lambda: None, params=(), name="t")

    def cycle():
        reset_task_ids()
        scheduler = SmpssScheduler(num_threads=8)
        tasks = [
            TaskInstance(definition=defn, accesses=[], arguments={})
            for _ in range(512)
        ]
        for i, t in enumerate(tasks):
            scheduler.push_unlocked(t, thread=i % 8)
        popped = 0
        for i in range(512):
            if scheduler.pop(i % 8) is not None:
                popped += 1
        return popped

    assert benchmark(cycle) == 512


def test_threaded_runtime_task_overhead(benchmark):
    """Wall-clock per-task cost of the full threaded pipeline."""

    a = np.zeros(1)

    @css_task("inout(x)")
    def tick(x):
        x += 1

    def run_batch():
        a[0] = 0
        with SmpssRuntime(num_workers=2) as rt:
            for _ in range(300):
                tick(a)
            rt.barrier()
        return a[0]

    assert benchmark(run_batch) == 300


def test_simulator_event_throughput(benchmark):
    """Simulated tasks retired per second of host time."""

    from repro.sim import ALTIX_32, CostModel, run_static
    from repro.sim.baselines import build_multisort_dag, scheduler_for_model

    template = build_multisort_dag(1 << 18, 1 << 12, "cilk")
    machine = ALTIX_32

    def run():
        return run_static(
            template.build(), machine,
            CostModel(machine, block_size=1),
            scheduler_for_model("cilk"),
        )

    res = benchmark(run)
    assert res.tasks_executed == len(template.nodes)
