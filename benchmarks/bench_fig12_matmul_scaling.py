"""Figure 12: matmul with on-demand copies — Gflops vs threads.

Paper shape: threaded Goto/MKL scale smoothly; SMPSs shows a staircase
from its fixed block size but "with 32 threads it surpasses the MKL
parallelization with either MKL and Goto task implementations".
"""

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(n=2048, m=512, threads=(1, 2, 4, 8))
    return dict(n=8192, m=1024, threads=E.THREAD_SWEEP)


def test_fig12_matmul_scaling(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.fig12_matmul_scaling(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)
    if is_quick():
        return
    threads = fig.x
    smpss_goto = fig.get("SMPSs + Goto tiles").values
    smpss_mkl = fig.get("SMPSs + Mkl tiles").values
    goto = fig.get("Threaded Goto").values
    mkl = fig.get("Threaded Mkl").values

    # Smooth threaded libraries: monotone nondecreasing.
    assert all(b >= a * 0.999 for a, b in zip(goto, goto[1:]))
    assert all(b >= a * 0.999 for a, b in zip(mkl, mkl[1:]))

    # SMPSs staircase: divisor thread counts (8/16/32 divide the 64
    # chains) sit near-ideal; non-divisors (12, 24) dip below the
    # threaded libraries' smooth curve.
    def efficiency(series, i):
        return series[i] / (series[0] * threads[i])

    for non_divisor in (12, 24):
        i = threads.index(non_divisor)
        assert efficiency(smpss_goto, i) < efficiency(goto, i), (
            f"no starvation dip at {non_divisor} threads"
        )
    for divisor in (16, 32):
        i = threads.index(divisor)
        assert efficiency(smpss_goto, i) > 0.9

    # At 32 threads SMPSs surpasses threaded MKL with both tile sets.
    assert smpss_goto[-1] > mkl[-1]
    assert smpss_mkl[-1] > mkl[-1]
