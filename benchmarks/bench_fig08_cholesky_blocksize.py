"""Figure 8: Cholesky Gflops vs block size on 32 cores.

Paper: 8192x8192 single floats, blocks 32..2048, Goto vs MKL tiles,
peak 204.8 Gflops; reasonable blocks 128..512, collapse at both ends.
Default here is 4096x4096 (the size the paper's own quoted task counts
imply — see EXPERIMENTS.md); set REPRO_BENCH_SCALE=quick for a smoke
run.
"""

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(n=1024, block_sizes=(32, 64, 128, 256), cores=8)
    return dict(n=4096, block_sizes=(32, 64, 128, 256, 512, 1024), cores=32)


def test_fig08_blocksize_sweep(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.fig08_cholesky_blocksize(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)

    for library in ("Goto", "Mkl"):
        series = fig.get(f"SMPSs + {library} tiles").values
        # Inverted U: the best block size is interior, both ends lower.
        best = max(range(len(series)), key=lambda i: series[i])
        assert 0 < best < len(series) - 1, f"{library}: no interior optimum"
        assert series[0] < 0.6 * series[best], "no small-block overhead wall"
        assert series[-1] < 0.75 * series[best], "no large-block starvation"

    # Goto tiles edge out MKL tiles at the optimum (Figure 8's gap).
    goto = fig.get("SMPSs + Goto tiles").values
    mkl = fig.get("SMPSs + Mkl tiles").values
    assert max(goto) > max(mkl)
