"""Figure 16: N Queens scalability vs 1 thread of the *same* model.

Paper shape: normalised per paradigm, all three scale similarly — the
per-spawn duplication artifact cancels out, which is exactly the
paper's methodological point about such comparisons.
"""

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(n=9, threads=(1, 2, 4, 8))
    return dict(n=12, threads=E.THREAD_SWEEP)


def test_fig16_nqueens_scalability(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.fig16_nqueens_scalability(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)
    threads = fig.x
    series = {label: fig.get(label).values for label in ("Cilk", "OMP3 tasks", "SMPSs")}

    for label, values in series.items():
        assert values[0] == 1.0
        # Near-linear scaling for a compute-bound search.
        for i, t in enumerate(threads):
            assert values[i] > 0.85 * t, f"{label} off-linear at {t}"

    # Similar to each other at every point (within 10%).
    for i in range(len(threads)):
        trio = [series[l][i] for l in series]
        assert max(trio) / min(trio) < 1.1
