"""Section VI prose: the quoted task counts.

"374,272 tasks for Cholesky with 32x32 element blocks, 49,920 with
64x64 blocks" — regenerated from the closed-form count of the flat
Cholesky (Figure 9) and cross-validated against recorded graphs.
"""

from repro.bench import experiments as E


def test_text_task_counts(benchmark, figure_printer):
    out = benchmark(E.text_task_counts)
    assert out["flat_cholesky_T(128)"] == out["paper_quote_32x32"] == 374_272
    assert out["flat_cholesky_T(64)"] == out["paper_quote_64x64"] == 49_920
    for n_blocks in (4, 6, 8):
        assert out[f"recorded_hyper_N{n_blocks}"] == out[f"formula_hyper_N{n_blocks}"]
    assert out["recorded_flat_N8"] == out["formula_flat_N8"]

    class _F:
        @staticmethod
        def table():
            rows = [
                "Section VI task counts",
                f"  T(128) = {out['flat_cholesky_T(128)']}  (paper quotes 374,272 for 32x32 blocks)",
                f"  T(64)  = {out['flat_cholesky_T(64)']}   (paper quotes 49,920 for 64x64 blocks)",
                "  note: both match a 4096x4096 matrix; the prose says 8192x8192"
                " (see EXPERIMENTS.md)",
            ]
            return "\n".join(rows)

    figure_printer(_F)
