"""Backend scaling: threads vs processes on pure-Python kernels.

Not a figure from the paper — the figure the paper's design *implies*
for a GIL-bound language: with task bodies that never release the GIL,
worker threads cannot exceed 1x, while the repro.mp process backend
tracks the core count.  Bitwise backend parity is asserted inside the
experiment on every run.

The scaling assertions only run on hosts with enough cores to express
them (4 process workers + the master need >= 5); on smaller hosts the
run still regenerates the figure and checks parity.
"""

import os

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(n=64, block=32, workers=(1, 2, 4))
    return dict(n=192, block=48, workers=(1, 2, 4))


def test_backend_scaling(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.backend_scaling(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)
    if is_quick():
        return

    workers = fig.x
    threads = fig.get("matmul threads").values
    processes = fig.get("matmul processes").values
    chol_proc = fig.get("cholesky processes").values

    if (os.cpu_count() or 1) < 5:
        # Single-/few-core host: the ISSUE's >=1.8x criterion is not
        # physically expressible; parity was still asserted inside the
        # experiment, and the figure records cpu_count in extras.
        return

    i4 = workers.index(4)
    # Acceptance criterion: >=1.8x at 4 process workers over threads.
    assert processes[i4] >= 1.8 * threads[i4], (
        f"matmul: processes {processes[i4]:.2f}x vs threads "
        f"{threads[i4]:.2f}x at 4 workers"
    )
    assert chol_proc[i4] >= 1.8 * fig.get("cholesky threads").values[i4]
    # GIL cap: threaded pure-Python work cannot meaningfully scale.
    assert max(threads) < 1.5
