"""Figure 5: the 6x6-block Cholesky task graph.

Benchmarks the graph-construction path (dependency analysis of the 56
tasks) and checks the structural witnesses the paper states.
"""

from repro.bench import experiments as E


def test_fig05_graph_construction(benchmark, figure_printer):
    result = benchmark(E.fig05_cholesky_graph)
    assert result["total_tasks"] == 56
    assert result["expected_total"] == 56
    assert result["witness"]["task_51_unlocked_by"] == [1, 6]
    assert result["tasks_by_name"] == result["expected_by_name"]

    class _F:  # tiny adapter so the shared printer can show the facts
        @staticmethod
        def table():
            lines = [
                "Figure 5: 6x6-block Cholesky task graph",
                f"  tasks: {result['total_tasks']} (paper: 56)",
                f"  by type: {result['tasks_by_name']}",
                f"  edges (all true deps): {result['edges']}",
                f"  critical path: {result['critical_path']} tasks",
                f"  task 51 unlocked after tasks {result['witness']['task_51_unlocked_by']}"
                " (paper: 'after running tasks 1 and 6')",
            ]
            return "\n".join(lines)

    figure_printer(_F)


def test_fig05_graph_build_rate_large(benchmark):
    """Dependency-analysis throughput on a 16x16-block Cholesky."""

    import numpy as np

    from repro.apps.cholesky import cholesky_hyper, hyper_task_count
    from repro.blas.hypermatrix import HyperMatrix
    from repro.core.recorder import record_program

    def build():
        hm = HyperMatrix(16, 1, np.float32)
        for i in range(16):
            for j in range(16):
                hm[i, j] = np.zeros((1, 1), np.float32)
        return record_program(cholesky_hyper, hm, execute="skip")

    prog = benchmark(build)
    assert prog.task_count == hyper_task_count(16)["total"]
