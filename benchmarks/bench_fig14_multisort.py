"""Figure 14: Multisort speedup vs threads — Cilk, OMP3 tasks, SMPSs.

Paper shape: "All three versions scale similarly, with SMPSs having
slightly better performance than the others."
"""

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(n=1 << 18, quicksize=1 << 13, threads=(1, 2, 4, 8))
    return dict(n=1 << 22, quicksize=1 << 15, threads=E.THREAD_SWEEP)


def test_fig14_multisort(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.fig14_multisort(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)
    threads = fig.x
    cilk = fig.get("Cilk").values
    omp = fig.get("OMP3 tasks").values
    smpss = fig.get("SMPSs").values

    # All three near 1 at a single thread (no big model artifact).
    for series in (cilk, omp, smpss):
        assert 0.85 < series[0] < 1.1

    # They scale *similarly*: within 20% of each other at every point.
    for i in range(len(threads)):
        trio = (cilk[i], omp[i], smpss[i])
        assert max(trio) / min(trio) < 1.2, f"divergence at {threads[i]} threads"

    # And SMPSs is slightly ahead at the top end.
    assert smpss[-1] >= max(cilk[-1], omp[-1]) * 0.98
    if not is_quick():
        assert smpss[-1] > cilk[-1]
        # Bandwidth ceiling: nobody scales linearly to 32.
        assert max(cilk[-1], omp[-1], smpss[-1]) < 20
        assert min(cilk[-1], omp[-1], smpss[-1]) > 8
