"""Ablations of the design choices sections II, III and VII call out.

Each benchmark flips one mechanism and measures the simulated effect on
a workload the paper associates with it:

* renaming on/off — Strassen's reused scratch grids (section VI.C);
* locality ready-lists vs central queue — CellSs/SuperMatrix contrast
  (section VII.A/C);
* high-priority hint — Cholesky's critical-path potrf (section II);
* main-thread graph window — section III's blocking condition.
"""

import numpy as np
import pytest

from conftest import is_quick

from repro.apps.cholesky import cholesky_hyper
from repro.apps.strassen import strassen_multiply
from repro.blas.hypermatrix import HyperMatrix
from repro.core.scheduler import CentralQueueScheduler, SmpssScheduler
from repro.sim import ALTIX_32, CostModel, MachineConfig, simulate_program


def sym_hyper(n):
    hm = HyperMatrix(n, 1, np.float32)
    for i in range(n):
        for j in range(n):
            hm[i, j] = np.zeros((1, 1), np.float32)
    return hm


def _simulate_strassen(n_blocks, m, cores, renaming):
    machine = ALTIX_32.with_cores(cores)
    return simulate_program(
        strassen_multiply, sym_hyper(n_blocks), sym_hyper(n_blocks),
        sym_hyper(n_blocks),
        machine=machine,
        cost_model=CostModel(machine, block_size=m),
        enable_renaming=renaming,
    )


def test_ablation_renaming(benchmark, figure_printer):
    n_blocks = 4 if is_quick() else 8
    with_renaming = benchmark.pedantic(
        lambda: _simulate_strassen(n_blocks, 512, 16, True),
        rounds=1, iterations=1,
    )
    without = _simulate_strassen(n_blocks, 512, 16, False)
    speedup = without.makespan / with_renaming.makespan

    class _F:
        @staticmethod
        def table():
            return (
                "Ablation: renaming (Strassen, 16 cores)\n"
                f"  with renaming:    {with_renaming.makespan*1e3:9.2f} ms\n"
                f"  without renaming: {without.makespan*1e3:9.2f} ms\n"
                f"  renaming speedup: {speedup:5.2f}x "
                "(WAR/WAW hazards on reused scratch grids serialise)"
            )

    figure_printer(_F)
    assert speedup > 1.1


def _simulate_cholesky(scheduler_factory, cores=16, n_blocks=16, m=128):
    machine = ALTIX_32.with_cores(cores)
    return simulate_program(
        cholesky_hyper, sym_hyper(n_blocks),
        machine=machine,
        cost_model=CostModel(machine, block_size=m),
        scheduler_factory=scheduler_factory,
    )


def test_ablation_locality_scheduler(benchmark, figure_printer):
    locality = benchmark.pedantic(
        lambda: _simulate_cholesky(SmpssScheduler),
        rounds=1, iterations=1,
    )
    central = _simulate_cholesky(CentralQueueScheduler)

    class _F:
        @staticmethod
        def table():
            return (
                "Ablation: per-thread ready lists vs central queue (Cholesky)\n"
                f"  SMPSs locality lists: {locality.makespan*1e3:9.2f} ms, "
                f"cache hits {locality.cache_hits}\n"
                f"  central queue:        {central.makespan*1e3:9.2f} ms, "
                f"cache hits {central.cache_hits}"
            )

    figure_printer(_F)
    # Locality lists must capture at least as many cache hits.
    assert locality.cache_hits >= central.cache_hits
    assert locality.makespan <= central.makespan * 1.05


def test_ablation_priority_hint(benchmark, figure_printer):
    """highpriority on potrf (the Cholesky critical path) helps or is
    neutral — never a slowdown beyond noise."""

    from repro.core.api import css_task
    from repro.blas import kernels

    @css_task("inout(a) highpriority")
    def spotrf_hp(a):
        kernels.potrf(a)

    def cholesky_hp(a):
        n = a.n
        from repro.apps.tasks import sgemm_nt_t, ssyrk_t, strsm_t

        for j in range(n):
            for k in range(j):
                for i in range(j + 1, n):
                    sgemm_nt_t(a[i][k], a[j][k], a[i][j])
            for i in range(j):
                ssyrk_t(a[j][i], a[j][j])
            spotrf_hp(a[j][j])
            for i in range(j + 1, n):
                strsm_t(a[j][j], a[i][j])

    machine = ALTIX_32.with_cores(16)

    def run(main):
        return simulate_program(
            main, sym_hyper(16),
            machine=machine, cost_model=CostModel(machine, block_size=128),
        )

    prioritised = benchmark.pedantic(lambda: run(cholesky_hp), rounds=1, iterations=1)
    plain = run(cholesky_hyper)

    class _F:
        @staticmethod
        def table():
            return (
                "Ablation: highpriority potrf (Cholesky, 16 cores)\n"
                f"  plain:       {plain.makespan*1e3:9.2f} ms\n"
                f"  prioritised: {prioritised.makespan*1e3:9.2f} ms"
            )

    figure_printer(_F)
    assert prioritised.makespan <= plain.makespan * 1.05


def test_ablation_steal_order(benchmark, figure_printer):
    """FIFO stealing (the paper's choice: 'minimize the effect on the
    cache of the victim thread') vs stealing the victim's hot task."""

    from repro.core.scheduler import HotStealScheduler

    cold = benchmark.pedantic(
        lambda: _simulate_cholesky(SmpssScheduler, cores=8, n_blocks=20, m=64),
        rounds=1, iterations=1,
    )
    hot = _simulate_cholesky(HotStealScheduler, cores=8, n_blocks=20, m=64)

    class _F:
        @staticmethod
        def table():
            return (
                "Ablation: steal order (Cholesky, 8 cores)\n"
                f"  FIFO steal (paper): {cold.makespan*1e3:9.2f} ms, "
                f"hits {cold.cache_hits}, steals {cold.steals}\n"
                f"  LIFO (hot) steal:   {hot.makespan*1e3:9.2f} ms, "
                f"hits {hot.cache_hits}, steals {hot.steals}"
            )

    figure_printer(_F)
    assert cold.makespan <= hot.makespan * 1.05
    assert cold.cache_hits >= hot.cache_hits * 0.9


def test_ablation_graph_window(benchmark, figure_printer):
    """A tiny in-flight window throttles the main thread; a roomy one
    lets it race ahead (section III's graph-size condition)."""

    def run(window):
        machine = MachineConfig(cores=8, max_pending_tasks=window)
        return simulate_program(
            cholesky_hyper, sym_hyper(12),
            machine=machine, cost_model=CostModel(machine, block_size=128),
        )

    roomy = benchmark.pedantic(lambda: run(10_000), rounds=1, iterations=1)
    tiny = run(8)

    class _F:
        @staticmethod
        def table():
            return (
                "Ablation: graph-size window (Cholesky, 8 cores)\n"
                f"  window 10000: {roomy.makespan*1e3:9.2f} ms\n"
                f"  window 8:     {tiny.makespan*1e3:9.2f} ms"
            )

    figure_printer(_F)
    assert roomy.makespan <= tiny.makespan * 1.02
    assert roomy.tasks_executed == tiny.tasks_executed
