"""Service throughput: concurrent tenants on one shared fleet (PR 9).

Not a figure from the paper — the figure the service architecture
implies: one daemon, N concurrent client sessions, graphs/sec as N
grows.  The sharded dependency tracker is what keeps independent
tenants from contending on one analysis lock, so the acceptance
criterion is a throughput *ratio*: two concurrent sessions must reach
>= 1.5x the graphs/sec of one session on a >= 4-worker fleet.

The ratio assertion only runs on hosts with enough cores to express
concurrency (4 workers + N clients + the asyncio loop need >= 5); on
smaller hosts the run still regenerates the figure — with every
client's results verified against the sequential oracle inside the
experiment — and records ``cpu_count`` in extras so the committed
baseline is honest about what it could measure.
"""

import os

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(clients=(1, 2), graphs_per_client=5, tasks_per_graph=4, n=24)
    return dict(clients=(1, 2, 4), graphs_per_client=12, tasks_per_graph=8, n=48)


def test_service_throughput(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.service_throughput(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)
    if is_quick():
        return

    if (os.cpu_count() or 1) < 5:
        # Too few cores for concurrency to pay: correctness was still
        # verified per client, and extras record the host shape.
        return

    clients = fig.x
    ratio = fig.get("throughput vs 1 client").values
    i2 = clients.index(2)
    # Acceptance criterion: 2 concurrent sessions >= 1.5x one session.
    assert ratio[i2] >= 1.5, (
        f"2 clients reached only {ratio[i2]:.2f}x of 1-client throughput"
    )
    # More tenants must never collapse below the single-client rate.
    assert min(ratio) >= 0.9
