"""Figure 11: Cholesky Gflops vs threads — SMPSs vs threaded Goto/MKL.

Paper shape: threaded MKL saturates ~4 threads, threaded Goto ~10;
SMPSs (either tile library) scales to 32 "without any noticeable
performance loss".
"""

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(n=2048, m=256, threads=(1, 2, 4, 8))
    return dict(n=8192, m=256, threads=E.THREAD_SWEEP)


def test_fig11_cholesky_scaling(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.fig11_cholesky_scaling(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)
    threads = fig.x
    smpss = fig.get("SMPSs + Goto tiles").values
    goto = fig.get("Threaded Goto").values
    mkl = fig.get("Threaded Mkl").values

    # SMPSs keeps scaling: last point much better than mid sweep.
    assert smpss[-1] > smpss[len(smpss) // 2]
    if not is_quick():
        # SMPSs parallel efficiency at 32 threads stays high.
        assert smpss[-1] / (smpss[0] * threads[-1]) > 0.7
        # MKL plateaus by 4-8: gains < 25% from t=4 to t=32.
        i4 = threads.index(4)
        assert mkl[-1] < mkl[i4] * 1.25
        # Goto still grows well past 4, but stops by ~12.
        i12 = threads.index(12)
        assert goto[i12] > goto[i4] * 1.5
        assert goto[-1] < goto[i12] * 1.1
        # The paper's headline: SMPSs beats both threaded libraries at 32.
        assert smpss[-1] > goto[-1] > mkl[-1]
