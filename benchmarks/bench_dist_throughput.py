"""Distributed residency throughput: repeat submissions ship less (PR 10).

Not a figure from the paper — the figure the cluster backend implies:
one master, two localhost node agents, the same tiled-gemm graph
submitted N times in one session.  The residency map is what makes the
distributed backend more than remote RPC, so the acceptance criterion
is the bytes curve: every submission after the first must move fewer
bytes than the first (inputs are resident, only fresh outputs cross),
with cache hits accounting for the difference.

The experiment itself asserts both the byte drop and a numpy oracle on
the final result, so the committed baseline never records a run that
got the wrong answer or shipped everything twice.  Absolute tasks/sec
is loopback- and host-bound; ``cpu_count`` lands in extras so the
baseline is honest about what it measured.
"""

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(submissions=3, tiles=4, n=48, nodes=2, slots=2)
    return dict(submissions=4, tiles=8, n=96, nodes=2, slots=2)


def test_dist_throughput(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.dist_throughput(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)

    mb = fig.get("MB moved").values
    hits = fig.get("cache hits").values
    # The experiment already asserted the drop; pin the shape here too
    # so a regression in the experiment's own assertion cannot hide it.
    assert all(later < mb[0] for later in mb[1:])
    assert all(h > 0 for h in hits[1:])
