"""Shared helpers for the figure benchmarks.

Every ``bench_figXX`` file regenerates one figure of the paper via
``pytest benchmarks/ --benchmark-only``; the resulting series are
printed so the run doubles as the EXPERIMENTS.md evidence.  Scale is
controlled by ``REPRO_BENCH_SCALE``:

* ``paper`` (default) — the paper's parameters where feasible (see
  DESIGN.md for the two documented deviations);
* ``quick`` — small inputs for smoke-testing the harness itself.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper")


def is_quick() -> bool:
    return SCALE == "quick"


@pytest.fixture
def figure_printer(capsys):
    """Print a FigureResult table so pytest -s / bench logs show it."""

    def show(fig):
        with capsys.disabled():
            print()
            print(fig.table())
        return fig

    return show
