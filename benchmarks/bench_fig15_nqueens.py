"""Figure 15: N Queens speedup vs the *sequential* program.

Paper shape: "SMPSs obtains better performance with 1 thread than the
sequential execution" (renaming realigns data, no hand duplication);
Cilk and OMP3 sit below 1 at one thread because "many publications ...
compare ... with a sequential version that performs those array
duplications" — ours does not.
"""

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(n=9, threads=(1, 2, 4, 8))
    return dict(n=12, threads=E.THREAD_SWEEP)


def test_fig15_nqueens(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.fig15_nqueens(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)
    cilk = fig.get("Cilk").values
    omp = fig.get("OMP3 tasks").values
    smpss = fig.get("SMPSs").values

    # The paper's 1-thread ordering: SMPSs > 1 > Cilk, OMP.
    assert smpss[0] > 1.0
    assert cilk[0] < 1.0
    assert omp[0] < 1.0

    # "This advantage is preserved with more threads."
    for i in range(len(fig.x)):
        assert smpss[i] > cilk[i] > omp[i] * 0.99

    if not is_quick():
        # Strong scaling to 32 threads for all three (paper: ~24-36).
        assert smpss[-1] > 28
        assert cilk[-1] > 22
