"""Figure 13: blocked Strassen — Gflops vs threads.

Paper shape: "much smoother response to varying the number of threads"
than the matmul staircase (the less linearised graph allows more
work-stealing), but lower Gflops than plain matmul: renaming
allocations plus bandwidth-hungry additions/subtractions.
"""

from conftest import is_quick

from repro.bench import experiments as E


def _params():
    if is_quick():
        return dict(n=2048, m=512, threads=(1, 2, 4, 8))
    return dict(n=8192, m=512, threads=E.THREAD_SWEEP)


def test_fig13_strassen_scaling(benchmark, figure_printer):
    fig = benchmark.pedantic(
        lambda: E.fig13_strassen_scaling(**_params()),
        rounds=1, iterations=1,
    )
    figure_printer(fig)
    if is_quick():
        return
    threads = fig.x
    goto = fig.get("SMPSs + Goto tiles").values

    # Smooth: parallel efficiency stays high at every point, including
    # the thread counts where Figure 12's matmul dips.
    for i, t in enumerate(threads):
        assert goto[i] / (goto[0] * t) > 0.85, f"not smooth at {t} threads"

    # Lower than the Figure 12 matmul at 32 threads (same machine).
    mat = E.fig12_matmul_scaling(threads=(1, 32))
    assert goto[-1] < mat.get("SMPSs + Goto tiles").values[-1]


def test_fig13_renaming_is_exercised(benchmark):
    """Strassen is 'an intensive renaming test case' — count renames."""

    import numpy as np

    from repro.apps.strassen import strassen_multiply
    from repro.blas.hypermatrix import HyperMatrix
    from repro.core.recorder import record_program

    def build():
        def sym(n):
            hm = HyperMatrix(n, 1, np.float32)
            for i in range(n):
                for j in range(n):
                    hm[i, j] = np.zeros((1, 1), np.float32)
            return hm

        return record_program(
            strassen_multiply, sym(8), sym(8), sym(8), execute="skip"
        )

    prog = benchmark(build)
    assert prog.graph.stats.renames > 100
