"""Property-based tests for scheduler and simulator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduler import (
    CentralQueueScheduler,
    HotStealScheduler,
    SmpssScheduler,
)
from repro.core.task import TaskDefinition, TaskInstance, TaskState, reset_task_ids
from repro.sim import CostModel, MachineConfig, run_static
from repro.sim.baselines import DagTemplate


_DEFN = TaskDefinition(func=lambda: None, params=(), name="t")


def make_task(hp=False):
    return TaskInstance(definition=_DEFN, accesses=[], arguments={},
                        high_priority=hp)


# ---------------------------------------------------------------------------
# Scheduler fuzz: random interleavings of pushes and pops.
# ---------------------------------------------------------------------------

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("new"), st.booleans()),
        st.tuples(st.just("unlock"), st.integers(0, 3)),
        st.tuples(st.just("pop"), st.integers(0, 3)),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=op_strategy)
@pytest.mark.parametrize(
    "factory", [SmpssScheduler, HotStealScheduler, CentralQueueScheduler]
)
def test_scheduler_conservation(factory, ops):
    """No task is lost or duplicated under any push/pop interleaving,
    ready_count is exact, and popped tasks are RUNNING."""

    reset_task_ids()
    scheduler = factory(num_threads=4)
    pushed: set[int] = set()
    popped: set[int] = set()
    for op in ops:
        if op[0] == "new":
            task = make_task(hp=op[1])
            scheduler.push_new(task)
            pushed.add(task.task_id)
        elif op[0] == "unlock":
            task = make_task()
            scheduler.push_unlocked(task, thread=op[1])
            pushed.add(task.task_id)
        else:
            task = scheduler.pop(op[1])
            if task is not None:
                assert task.state is TaskState.RUNNING
                assert task.task_id not in popped, "double pop!"
                popped.add(task.task_id)
        assert scheduler.ready_count == len(pushed) - len(popped)
    # Drain: everything pushed must eventually come out exactly once.
    while True:
        task = scheduler.pop(0)
        if task is None:
            break
        assert task.task_id not in popped
        popped.add(task.task_id)
    assert popped == pushed
    assert scheduler.ready_count == 0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=30),
)
def test_high_priority_always_first(unlocking_threads):
    """Whenever the high list is non-empty, any pop returns from it."""

    reset_task_ids()
    scheduler = SmpssScheduler(num_threads=4)
    for thread in unlocking_threads:
        scheduler.push_unlocked(make_task(), thread)
    hp = make_task(hp=True)
    scheduler.push_new(hp)
    assert scheduler.pop(2) is hp


# ---------------------------------------------------------------------------
# Simulator: random DAGs respect work/span bounds and dependencies.
# ---------------------------------------------------------------------------


@st.composite
def random_dag(draw):
    count = draw(st.integers(1, 30))
    durations = draw(
        st.lists(
            st.floats(0.001, 1.0, allow_nan=False),
            min_size=count, max_size=count,
        )
    )
    dag = DagTemplate()
    for d in durations:
        dag.add_node("w", d)
    # Forward edges only (guaranteed acyclic).
    for succ in range(1, count):
        n_preds = draw(st.integers(0, min(3, succ)))
        preds = draw(
            st.lists(
                st.integers(0, succ - 1),
                min_size=n_preds, max_size=n_preds, unique=True,
            )
        )
        for pred in preds:
            dag.add_edge(pred, succ)
    return dag


def quiet_machine(cores):
    return MachineConfig(
        cores=cores,
        task_add_overhead=0.0,
        task_dispatch_overhead=0.0,
        steal_overhead=0.0,
        rename_alloc_overhead=0.0,
    )


@settings(max_examples=40, deadline=None)
@given(dag=random_dag(), cores=st.integers(1, 6))
def test_simulated_makespan_within_greedy_bounds(dag, cores):
    machine = quiet_machine(cores)
    result = run_static(
        dag.build(), machine, CostModel(machine, block_size=1), SmpssScheduler
    )
    work = dag.total_work
    span = dag.critical_path()
    assert result.tasks_executed == len(dag.nodes)
    lower = max(work / cores, span)
    upper = work / cores + span
    assert result.makespan >= lower - 1e-9
    assert result.makespan <= upper + 1e-9


@settings(max_examples=25, deadline=None)
@given(dag=random_dag())
def test_single_core_makespan_equals_work(dag):
    machine = quiet_machine(1)
    result = run_static(
        dag.build(), machine, CostModel(machine, block_size=1), SmpssScheduler
    )
    assert result.makespan == pytest.approx(dag.total_work)


@settings(max_examples=25, deadline=None)
@given(dag=random_dag(), cores=st.integers(2, 5))
def test_more_cores_never_slower(dag, cores):
    def run(c):
        machine = quiet_machine(c)
        return run_static(
            dag.build(), machine, CostModel(machine, block_size=1), SmpssScheduler
        ).makespan

    # Greedy scheduling anomalies can exceed 1.0 slightly in theory
    # bounded by the (work/P + span) envelope; check against it.
    t_few = run(cores - 1)
    t_many = run(cores)
    span = dag.critical_path()
    assert t_many <= t_few + span + 1e-9


@settings(max_examples=25, deadline=None)
@given(dag=random_dag(), cores=st.integers(1, 5))
def test_all_schedulers_execute_everything(dag, cores):
    for factory in (SmpssScheduler, HotStealScheduler, CentralQueueScheduler):
        machine = quiet_machine(cores)
        result = run_static(
            dag.build(), machine, CostModel(machine, block_size=1), factory
        )
        assert result.tasks_executed == len(dag.nodes)
