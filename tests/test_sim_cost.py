"""Tests for the task cost model and calibration curves."""

import numpy as np
import pytest

from repro import record_program
from repro.apps.tasks import (
    get_block_t,
    place_t,
    sadd_t,
    seqmerge_t,
    seqquick_t,
    sgemm_t,
    spotrf_t,
)
from repro.sim import ALTIX_32, CostModel
from repro.sim.cache import CoreCache
from repro.sim.calibration import (
    LIBRARIES,
    MEMORY_CONTENTION_ALPHA,
    interp_efficiency,
)


def record_one(call):
    prog = record_program(call, execute="skip")
    assert prog.task_count >= 1
    return prog.tasks


def tile(m=64):
    return np.zeros((m, m), np.float32)


class TestTileKernels:
    def test_gemm_duration_matches_formula(self):
        (task,) = record_one(lambda: sgemm_t(tile(), tile(), tile()))
        model = CostModel(ALTIX_32, library="goto")
        cost = model.cost(task, None)
        m = 64
        eff = LIBRARIES["goto"].efficiency("gemm", m)
        assert cost.flops == 2 * m ** 3
        assert cost.compute == pytest.approx(
            2 * m ** 3 / (ALTIX_32.core_peak_flops * eff)
        )

    def test_symbolic_blocks_use_configured_size(self):
        (task,) = record_one(lambda: sgemm_t(tile(1), tile(1), tile(1)))
        model = CostModel(ALTIX_32, block_size=256)
        cost = model.cost(task, None)
        assert cost.flops == 2 * 256 ** 3

    def test_symbolic_without_block_size_raises(self):
        (task,) = record_one(lambda: sgemm_t(tile(1), tile(1), tile(1)))
        model = CostModel(ALTIX_32)
        with pytest.raises(ValueError, match="block_size"):
            model.cost(task, None)

    def test_potrf_cheaper_than_gemm(self):
        (g,) = record_one(lambda: sgemm_t(tile(), tile(), tile()))
        (p,) = record_one(lambda: spotrf_t(tile()))
        model = CostModel(ALTIX_32)
        assert model.cost(p, None).flops < model.cost(g, None).flops

    def test_goto_faster_than_mkl_at_large_tiles(self):
        (task,) = record_one(lambda: sgemm_t(tile(512), tile(512), tile(512)))
        goto = CostModel(ALTIX_32, library="goto").cost(task, None)
        (task,) = record_one(lambda: sgemm_t(tile(512), tile(512), tile(512)))
        mkl = CostModel(ALTIX_32, library="mkl").cost(task, None)
        assert goto.compute < mkl.compute

    def test_unknown_library(self):
        with pytest.raises(ValueError, match="unknown library"):
            CostModel(ALTIX_32, library="atlas")


class TestMemoryAndCache:
    def test_cache_hits_remove_traffic(self):
        a, b, c = tile(), tile(), tile()
        (task,) = record_one(lambda: sgemm_t(a, b, c))
        model = CostModel(ALTIX_32)
        cache = CoreCache(ALTIX_32.cache_bytes)
        cold = model.cost(task, cache)
        (task2,) = record_one(lambda: sgemm_t(a, b, c))
        warm = model.cost(task2, cache)
        assert warm.memory == 0.0
        assert cold.memory > 0.0

    def test_add_tasks_are_bandwidth_bound(self):
        a, b, c = tile(256), tile(256), tile(256)
        (task,) = record_one(lambda: sadd_t(a, b, c))
        model = CostModel(ALTIX_32)
        cost = model.cost(task, CoreCache(ALTIX_32.cache_bytes))
        assert cost.memory > cost.compute

    def test_copy_tasks_charge_flat_traffic(self):
        flat = np.zeros((256, 256), np.float32)
        block = tile(64)
        (task,) = record_one(lambda: get_block_t(1, 1, flat, block))
        model = CostModel(ALTIX_32)
        cost = model.cost(task, None)
        assert cost.flops == 0
        # At least the flat side of the copy is charged.
        assert cost.memory >= 64 * 64 * 4 / ALTIX_32.core_bandwidth

    def test_opaque_flat_matrix_does_not_set_tile_size(self):
        flat = np.zeros((256, 256), np.float32)
        block = tile(64)
        (task,) = record_one(lambda: get_block_t(1, 1, flat, block))
        model = CostModel(ALTIX_32)
        cost = model.cost(task, None)
        # Traffic must be tile-scale, nowhere near the 256 KB flat size.
        assert cost.memory < 3 * (64 * 64 * 4) / ALTIX_32.core_bandwidth


class TestRenamingCosts:
    def test_clone_costs_more_than_same(self):
        data = np.zeros(1024, np.float32)

        def hazard():
            place_t(data, 0, 1)
            seqquick_like_reader(data)
            place_t(data, 1, 2)  # pending reader -> CLONE

        @make_reader
        def seqquick_like_reader(a):  # noqa: ARG001
            pass

        prog = record_program(hazard, execute="skip")
        model = CostModel(ALTIX_32)
        costs = [model.cost(t, None) for t in prog.tasks]
        assert costs[0].rename == 0.0
        assert costs[2].rename > 0.0


def make_reader(func):
    from repro import css_task

    return css_task("input(a)")(func)


class TestSortCosts:
    def test_seqquick_scales_nlogn(self):
        data = np.zeros(1 << 16, np.float32)
        (small,) = record_one(lambda: seqquick_t(data, 0, 1023))
        (large,) = record_one(lambda: seqquick_t(data, 0, 65535))
        model = CostModel(ALTIX_32.with_cores(1))
        ratio = model.cost(large, None).compute / model.cost(small, None).compute
        assert 64 < ratio < 64 * 2  # n log n growth between 1K and 64K

    def test_contention_grows_with_cores(self):
        data = np.zeros(4096, np.float32)
        (t1,) = record_one(lambda: seqquick_t(data, 0, 4095))
        single = CostModel(ALTIX_32.with_cores(1)).cost(t1, None).compute
        (t2,) = record_one(lambda: seqquick_t(data, 0, 4095))
        many = CostModel(ALTIX_32.with_cores(32)).cost(t2, None).compute
        expected = 1 + MEMORY_CONTENTION_ALPHA * 31
        assert many / single == pytest.approx(expected)

    def test_merge_cost_linear(self):
        data = np.zeros(8192, np.float32)
        dest = np.zeros(8192, np.float32)
        (a,) = record_one(lambda: seqmerge_t(data, 0, 1023, 1024, 2047, dest))
        (b,) = record_one(lambda: seqmerge_t(data, 0, 2047, 2048, 4095, dest))
        model = CostModel(ALTIX_32.with_cores(1))
        assert model.cost(b, None).compute == pytest.approx(
            2 * model.cost(a, None).compute
        )


class TestEfficiencyInterpolation:
    def test_exact_points(self):
        curve = {32: 0.3, 64: 0.6}
        assert interp_efficiency(curve, 32) == 0.3
        assert interp_efficiency(curve, 64) == 0.6

    def test_midpoint_log2(self):
        curve = {32: 0.3, 128: 0.7}
        assert interp_efficiency(curve, 64) == pytest.approx(0.5)

    def test_clamping(self):
        curve = {32: 0.3, 64: 0.6}
        assert interp_efficiency(curve, 8) == 0.3
        assert interp_efficiency(curve, 4096) == 0.6

    def test_monotone_curves(self):
        for profile in LIBRARIES.values():
            sizes = sorted(profile.gemm_efficiency)
            values = [profile.gemm_efficiency[s] for s in sizes]
            assert values == sorted(values)
