"""Soundness oracle for the region dependency engine (section V.A).

For random region programs, every pair of tasks whose accesses
*element-wise conflict* (they touch a common element and at least one
writes it) must be ordered by a dependency path in the recorded graph.
The engine may be conservative (extra edges are allowed — they cost
parallelism, not correctness); it must never MISS a conflict.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import css_task
from repro.core.recorder import RecordingRuntime


@css_task("input(data{i..j}, i, j)")
def read_region(data, i, j):  # noqa: ARG001
    pass


@css_task("output(data{i..j}) input(i, j)")
def write_region(data, i, j):  # noqa: ARG001
    pass


@css_task("inout(data{i..j}) input(i, j)")
def update_region(data, i, j):  # noqa: ARG001
    pass


_OPS = [
    (read_region, False, True),
    (write_region, True, False),
    (update_region, True, True),
]

program = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 15), st.integers(0, 15)),
    min_size=2,
    max_size=14,
)


def _conflicts(a, b) -> bool:
    """Element-wise conflict between two ops (op, lo, hi)."""

    (op_a, lo_a, hi_a), (op_b, lo_b, hi_b) = a, b
    _, writes_a, _ = _OPS[op_a]
    _, writes_b, _ = _OPS[op_b]
    if not (writes_a or writes_b):
        return False
    return not (hi_a < lo_b or hi_b < lo_a)


@settings(max_examples=80, deadline=None)
@given(ops=program)
def test_all_conflicting_pairs_are_ordered(ops):
    import networkx as nx

    data = np.zeros(16, np.float64)
    normalised = [
        (op, min(x, y), max(x, y)) for op, x, y in ops
    ]
    recorder = RecordingRuntime(execute="skip")
    with recorder:
        tasks = []
        for op, lo, hi in normalised:
            func, _w, _r = _OPS[op]
            tasks.append(func(data, lo, hi))
    prog = recorder.finish()
    g = prog.graph.to_networkx()
    closure = nx.transitive_closure_dag(g)

    for idx_a in range(len(normalised)):
        for idx_b in range(idx_a + 1, len(normalised)):
            if _conflicts(normalised[idx_a], normalised[idx_b]):
                a_id = tasks[idx_a].task_id
                b_id = tasks[idx_b].task_id
                assert closure.has_edge(a_id, b_id), (
                    f"conflicting ops {normalised[idx_a]} -> "
                    f"{normalised[idx_b]} not ordered"
                )


@settings(max_examples=50, deadline=None)
@given(ops=program)
def test_disjoint_reads_never_ordered_directly(ops):
    """Read-read pairs get no direct edge (no false read serialisation)."""

    data = np.zeros(16, np.float64)
    recorder = RecordingRuntime(execute="skip")
    with recorder:
        tasks = []
        for _op, x, y in ops:
            tasks.append(read_region(data, min(x, y), max(x, y)))
    prog = recorder.finish()
    assert prog.graph.stats.total_edges == 0


@settings(max_examples=50, deadline=None)
@given(ops=program)
def test_execution_matches_sequential_oracle(ops):
    """Executable version: region sums/fills match sequential replay."""

    @css_task("inout(data{i..j}) input(i, j, v)")
    def add_const(data, i, j, v):
        data[i : j + 1] += v

    def run(mode):
        data = np.arange(16, dtype=np.float64)
        if mode == "seq":
            for op, x, y in ops:
                lo, hi = min(x, y), max(x, y)
                data[lo : hi + 1] += op + 1
            return data
        recorder = RecordingRuntime(execute="eager")
        with recorder:
            for op, x, y in ops:
                add_const(data, min(x, y), max(x, y), op + 1)
            recorder.barrier()
        return data

    assert np.array_equal(run("seq"), run("eager"))
