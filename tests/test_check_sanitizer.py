"""Tests for the repro.check dynamic layer (the runtime access sanitizer)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg as sla

from repro import SmpssRuntime, css_task
from repro.apps.cholesky import cholesky_hyper
from repro.blas.hypermatrix import HyperMatrix
from repro.check import AccessViolation
from repro.check.sanitize import guard_readonly
from repro.core.runtime import TaskExecutionError
from repro.core.tracing import EventKind

pytestmark = pytest.mark.check


def _sabotaged_cholesky_tasks():
    """Blocked-Cholesky-style tasks where trsm *also* scribbles on the
    diagonal block it is only supposed to read — the classic
    misannotation the sanitizer exists to catch."""

    @css_task("input(a, b) inout(c)")
    def gemm(a, b, c):
        c -= a @ b.T

    @css_task("inout(a)")
    def potrf(a):
        a[...] = sla.cholesky(a, lower=True, check_finite=False)

    @css_task("input(diag) inout(below)")
    def trsm_sabotaged(diag, below):
        below[...] = sla.solve_triangular(
            diag, below.T, lower=True, check_finite=False
        ).T
        diag[0, 0] = -1.0  # the undeclared write

    return gemm, potrf, trsm_sabotaged


def _run_blocked_cholesky(trsm, gemm, potrf, hm, **runtime_kwargs):
    with SmpssRuntime(num_workers=3, **runtime_kwargs) as rt:
        n = hm.n
        for j in range(n):
            for k in range(j):
                for i in range(j + 1, n):
                    gemm(hm[i][k], hm[j][k], hm[i][j])
                gemm(hm[j][k], hm[j][k], hm[j][j])
            potrf(hm[j][j])
            for i in range(j + 1, n):
                trsm(hm[j][j], hm[i][j])
        rt.barrier()
        return rt


class TestViolationDetection:
    def test_threaded_cholesky_undeclared_write_is_caught(self):
        gemm, potrf, trsm = _sabotaged_cholesky_tasks()
        hm = HyperMatrix.random_spd(3, 8, seed=7)
        with pytest.raises(TaskExecutionError) as exc:
            _run_blocked_cholesky(trsm, gemm, potrf, hm, sanitize=True)
        cause = exc.value.__cause__
        assert isinstance(cause, AccessViolation)
        # The report names the task and the parameter.
        assert cause.task == "trsm_sabotaged"
        assert cause.param == "diag"
        assert cause.rule == "input-write"
        assert "trsm_sabotaged" in str(exc.value)
        assert "'diag'" in str(cause)

    def test_same_program_passes_without_sanitize(self):
        # sanitize=False (the default): no behavioral change, the
        # undeclared write silently lands, nothing raises.  Two blocks,
        # so nothing downstream consumes the scribbled diagonal.
        gemm, potrf, trsm = _sabotaged_cholesky_tasks()
        hm = HyperMatrix.random_spd(2, 8, seed=7)
        rt = _run_blocked_cholesky(trsm, gemm, potrf, hm)
        assert rt.sanitizer is None
        assert hm[0][0][0, 0] == -1.0  # the scribble went through

    def test_violation_recorded_in_findings(self):
        gemm, potrf, trsm = _sabotaged_cholesky_tasks()
        hm = HyperMatrix.random_spd(2, 8, seed=1)
        rt = SmpssRuntime(num_workers=2, sanitize=True)
        with pytest.raises(TaskExecutionError):
            with rt:
                potrf(hm[0][0])
                trsm(hm[0][0], hm[1][0])
                rt.barrier()
        assert rt.sanitizer.violations >= 1
        finding = rt.sanitizer.findings[0]
        assert finding.rule == "input-write"
        assert finding.task == "trsm_sabotaged"
        assert finding.param == "diag"
        assert "trsm_sabotaged" in rt.sanitizer.report()

    def test_undeclared_parameter_write_is_caught(self):
        @css_task("inout(c)")
        def leaky(c, scratch):
            c += 1.0
            scratch[0] = 9.0  # scratch appears in no clause

        c = np.zeros(4)
        scratch = np.zeros(4)
        with pytest.raises(TaskExecutionError) as exc:
            with SmpssRuntime(num_workers=1, sanitize=True):
                leaky(c, scratch)
        cause = exc.value.__cause__
        assert isinstance(cause, AccessViolation)
        assert cause.param == "scratch"
        assert cause.rule == "undeclared-mutation"

    def test_blas_out_write_is_translated(self):
        # np.add(..., out=a) bypasses the subclass methods; the
        # read-only flag stops it and the runtime translates the
        # anonymous ValueError into a named AccessViolation.
        @css_task("input(a) output(b)")
        def bad_out(a, b):
            np.add(a, 1.0, out=a)
            b[:] = a

        a, b = np.ones(4), np.zeros(4)
        with pytest.raises(TaskExecutionError) as exc:
            with SmpssRuntime(num_workers=1, sanitize=True):
                bad_out(a, b)
        cause = exc.value.__cause__
        assert isinstance(cause, AccessViolation)
        assert cause.param == "a"
        assert isinstance(cause.__cause__, ValueError)

    def test_augmented_assignment_on_input_is_caught(self):
        @css_task("input(a) output(b)")
        def bad_aug(a, b):
            a += 1.0
            b[:] = a

        with pytest.raises(TaskExecutionError) as exc:
            with SmpssRuntime(num_workers=1, sanitize=True):
                bad_aug(np.ones(3), np.zeros(3))
        assert isinstance(exc.value.__cause__, AccessViolation)
        assert "+=" in str(exc.value.__cause__)


class TestUnwrittenOutput:
    def test_unwritten_output_reported_not_raised(self):
        @css_task("input(a) output(b)")
        def forgot(a, b):
            return float(a.sum())

        a, b = np.ones(4), np.zeros(4)
        rt = SmpssRuntime(num_workers=1, sanitize=True)
        with rt:
            forgot(a, b)
        findings = rt.sanitizer.findings
        assert [f.rule for f in findings] == ["unwritten-output"]
        assert findings[0].param == "b"
        assert findings[0].task == "forgot"

    def test_written_output_is_clean(self):
        @css_task("input(a) output(b)")
        def ok(a, b):
            b[:] = a * 2

        rt = SmpssRuntime(num_workers=1, sanitize=True)
        with rt:
            ok(np.ones(4), np.zeros(4))
        assert rt.sanitizer.findings == []


class TestNoBehaviorChange:
    def test_real_cholesky_correct_under_sanitize(self):
        hm = HyperMatrix.random_spd(4, 8, seed=11)
        dense = hm.to_dense()
        rt = SmpssRuntime(num_workers=3, sanitize=True)
        with rt:
            cholesky_hyper(hm)
        expected = sla.cholesky(dense, lower=True)
        assert np.allclose(np.tril(hm.to_dense()), np.tril(expected), atol=1e-5)
        assert rt.sanitizer.violations == 0

    def test_guards_do_not_leak_into_user_arrays(self):
        seen = {}

        @css_task("input(a) output(b)")
        def peek(a, b):
            seen["writeable"] = a.flags.writeable
            b[:] = a

        a, b = np.ones(4), np.zeros(4)
        with SmpssRuntime(num_workers=1, sanitize=True):
            peek(a, b)
        assert seen["writeable"] is False  # guarded inside the task
        assert a.flags.writeable  # the user's array is untouched

    def test_scalars_and_opaque_pass_through(self):
        seen = {}

        @css_task("opaque(m) input(r) inout(acc)")
        def touch(m, r, acc):
            m[r] = 42.0  # opaque: writable by design
            seen["type"] = type(m)
            acc += m[r]

        m = np.zeros(3)
        acc = np.zeros(1)
        rt = SmpssRuntime(num_workers=1, sanitize=True)
        with rt:
            touch(m, 1, acc)
        assert seen["type"] is np.ndarray  # not a guarded subclass
        assert m[1] == 42.0
        assert rt.sanitizer.findings == []


class TestTraceIntegration:
    def test_violation_event_lands_in_trace(self):
        @css_task("input(a)")
        def bad(a):
            a[0] = 1.0

        rt = SmpssRuntime(num_workers=1, sanitize=True, trace=True)
        with pytest.raises(TaskExecutionError):
            with rt:
                bad(np.zeros(2))
        events = [e for e in rt.tracer.events if e.kind == EventKind.VIOLATION]
        assert len(events) == 1
        assert events[0].task_name == "bad"
        assert events[0].extra == ("input-write", "a")

    def test_violation_in_paraver_export(self):
        @css_task("input(a)")
        def bad(a):
            a[0] = 1.0

        rt = SmpssRuntime(num_workers=1, sanitize=True, trace=True)
        with pytest.raises(TaskExecutionError):
            with rt:
                bad(np.zeros(2))
        assert ":90000008:" in rt.tracer.to_paraver()


class TestMetricsIntegration:
    def test_violations_counted_into_metrics(self):
        @css_task("input(a)")
        def bad(a):
            a[0] = 1.0

        rt = SmpssRuntime(num_workers=1, sanitize=True, metrics=True)
        with pytest.raises(TaskExecutionError):
            with rt:
                bad(np.zeros(2))
        snap = rt.metrics.snapshot()
        assert snap["check.violations"] == 1
        assert snap["check.findings"] == {"rule=input-write": 1}

    def test_counter_visible_in_exposition(self):
        # The counter must show up on the Prometheus page the health
        # endpoint serves, so a scrape of a misbehaving run sees the
        # sanitizer firing without the trace.
        from repro.obs.exposition import render_registry

        @css_task("input(a)")
        def bad(a):
            a[0] = 1.0

        rt = SmpssRuntime(num_workers=1, sanitize=True, metrics=True)
        with pytest.raises(TaskExecutionError):
            with rt:
                bad(np.zeros(2))
        text = render_registry(rt.metrics)
        assert "repro_check_violations 1" in text
        assert 'repro_check_findings{rule="input-write"} 1' in text

    def test_metrics_off_no_counter(self):
        @css_task("input(a)")
        def bad(a):
            a[0] = 1.0

        rt = SmpssRuntime(num_workers=1, sanitize=True, metrics=False)
        with pytest.raises(TaskExecutionError):
            with rt:
                bad(np.zeros(2))
        assert rt.sanitizer.violations == 1
        assert "check.violations" not in rt.metrics.snapshot()


class TestGuardMechanics:
    def test_guard_is_view_not_copy(self):
        base = np.arange(6.0)
        g = guard_readonly(base, "t", "p")
        assert g.base is base
        assert not g.flags.writeable
        with pytest.raises(AccessViolation, match="'p'"):
            g[0] = 1.0
        with pytest.raises(AccessViolation):
            g.sort()

    def test_ufunc_result_is_ordinary_and_writable(self):
        g = guard_readonly(np.arange(4.0), "t", "p")
        result = g + 1
        result[0] = 99.0  # fresh buffer: no violation
        assert result[0] == 99.0

    def test_slice_of_guard_stays_guarded(self):
        g = guard_readonly(np.arange(8.0), "t", "p")
        with pytest.raises(AccessViolation):
            g[2:5][0] = 1.0
