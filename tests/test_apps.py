"""Tests for the paper's application codes (sections IV-VI).

Each app must produce identical results sequentially (no runtime), under
eager recording, and under the threaded runtime — the paper's
dual-compilation property.
"""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import RecordingRuntime, SmpssRuntime, record_program
from repro.apps import cholesky, lu, matmul, multisort, nqueens, strassen
from repro.blas.hypermatrix import HyperMatrix


class TestMatmulVariants:
    def _inputs(self, n, m, seed=0):
        a = HyperMatrix.random(n, m, np.float64, seed=seed)
        b = HyperMatrix.random(n, m, np.float64, seed=seed + 1)
        c = HyperMatrix.zeros(n, m, np.float64)
        return a, b, c

    def test_dense_sequential(self):
        a, b, c = self._inputs(3, 8)
        matmul.matmul_dense(a, b, c)
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    @pytest.mark.parametrize("order", ["ijk", "ikj", "jik", "jki", "kij", "kji"])
    def test_any_loop_order_correct(self, order):
        """'Note that any ordering of the three nested loops produces
        correct results.'"""

        a, b, c = self._inputs(3, 4, seed=order.__hash__() % 100)
        with SmpssRuntime(num_workers=2) as rt:
            matmul.matmul_dense(a, b, c, loop_order=order)
            rt.barrier()
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())

    def test_bad_loop_order(self):
        a, b, c = self._inputs(2, 4)
        with pytest.raises(ValueError):
            matmul.matmul_dense(a, b, c, loop_order="iij")

    def test_sparse_allocates_only_needed_blocks(self):
        a = HyperMatrix.random_sparse(5, 4, 0.3, np.float64, seed=2)
        b = HyperMatrix.random_sparse(5, 4, 0.3, np.float64, seed=3)
        c = HyperMatrix(5, 4, np.float64)
        matmul.matmul_sparse(a, b, c)
        dense = a.to_dense() @ b.to_dense()
        assert np.allclose(c.to_dense(), dense)
        # A block is present iff some k links A and B there.
        for i in range(5):
            for j in range(5):
                needed = any(
                    a[i][k] is not None and b[k][j] is not None for k in range(5)
                )
                assert (c[i][j] is not None) == needed

    def test_sparse_empty_inputs(self):
        a = HyperMatrix(3, 4)
        b = HyperMatrix(3, 4)
        c = HyperMatrix(3, 4)
        matmul.matmul_sparse(a, b, c)
        assert c.block_count() == 0

    def test_flat_threaded(self):
        rng = np.random.default_rng(5)
        af = rng.standard_normal((32, 32))
        bf = rng.standard_normal((32, 32))
        cf = np.zeros((32, 32))
        with SmpssRuntime(num_workers=2) as rt:
            matmul.matmul_flat(af, bf, cf, 8)
            rt.barrier()
        assert np.allclose(cf, af @ bf)

    def test_flat_size_check(self):
        with pytest.raises(ValueError):
            matmul.matmul_flat(np.zeros((10, 10)), np.zeros((10, 10)),
                               np.zeros((10, 10)), 3)


class TestCholeskyVariants:
    def _spd(self, size, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((size, size))
        return x @ x.T + size * np.eye(size)

    def test_hyper_sequential(self):
        spd = self._spd(32)
        hm = HyperMatrix.from_dense(spd, 8)
        cholesky.cholesky_hyper(hm)
        assert np.allclose(
            hm.lower_to_dense(), sla.cholesky(spd, lower=True), atol=1e-8
        )

    def test_flat_eager_recording(self):
        spd = self._spd(24, seed=4)
        work = np.array(spd)
        recorder = RecordingRuntime(execute="eager")
        with recorder:
            cholesky.cholesky_flat(work, 8)
            recorder.barrier()
        assert np.allclose(np.tril(work), sla.cholesky(spd, lower=True), atol=1e-8)

    def test_flat_divisibility_check(self):
        with pytest.raises(ValueError):
            cholesky.cholesky_flat(np.eye(10), 3)

    def test_task_count_components(self):
        counts = cholesky.hyper_task_count(6)
        assert counts == {
            "sgemm_nt_t": 20, "ssyrk_t": 15, "spotrf_t": 6,
            "strsm_t": 15, "total": 56,
        }


class TestStrassen:
    def test_matches_numpy_sequential(self):
        a = HyperMatrix.random(2, 8, np.float64, seed=0)
        b = HyperMatrix.random(2, 8, np.float64, seed=1)
        c = HyperMatrix.zeros(2, 8, np.float64)
        strassen.strassen_multiply(a, b, c)
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-10)

    def test_power_of_two_required(self):
        a = HyperMatrix.random(3, 4)
        with pytest.raises(ValueError, match="power-of-two"):
            strassen.strassen_multiply(a, a, a)

    def test_task_count_formula_matches_recording(self):
        for n_blocks in (2, 4):
            a = HyperMatrix.random(n_blocks, 2, np.float64, seed=0)
            b = HyperMatrix.random(n_blocks, 2, np.float64, seed=1)
            c = HyperMatrix.zeros(n_blocks, 2, np.float64)
            prog = record_program(
                strassen.strassen_multiply, a, b, c, execute="skip"
            )
            expected = strassen.strassen_task_count(n_blocks)
            assert prog.task_count == expected["total"]
            assert prog.graph.stats.tasks_by_name["smul_t"] == expected["smul_t"]

    def test_renaming_happens(self):
        """Section VI.C: 'an intensive renaming test case'."""

        a = HyperMatrix.random(4, 2, np.float64, seed=0)
        b = HyperMatrix.random(4, 2, np.float64, seed=1)
        c = HyperMatrix.zeros(4, 2, np.float64)
        prog = record_program(strassen.strassen_multiply, a, b, c, execute="skip")
        assert prog.graph.stats.renames > 20

    def test_flops_fewer_than_classic_beyond_crossover(self):
        """Strassen's formula gives < 2 n^3 for enough levels."""

        classic = 2 * (16 * 64) ** 3
        assert strassen.strassen_flops(16, 64) < classic


class TestMultisort:
    def test_sequential_path(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(2000).astype(np.float32)
        expected = np.sort(data)
        multisort.multisort(data, quicksize=64)
        assert (data == expected).all()

    def test_small_array_single_task(self):
        data = np.array([3.0, 1.0, 2.0], dtype=np.float32)
        multisort.multisort(data, quicksize=8)
        assert (data == np.array([1.0, 2.0, 3.0], dtype=np.float32)).all()

    def test_empty_array(self):
        data = np.empty(0, np.float32)
        multisort.multisort(data)
        assert len(data) == 0

    def test_tmp_shape_check(self):
        with pytest.raises(ValueError):
            multisort.multisort(np.zeros(10, np.float32), np.zeros(5, np.float32))

    def test_quicksize_floor(self):
        with pytest.raises(ValueError):
            multisort.multisort(np.zeros(10, np.float32), quicksize=2)

    def test_with_duplicates_and_sorted_input(self):
        data = np.concatenate(
            [np.zeros(100), np.arange(100), np.arange(100)[::-1]]
        ).astype(np.float32)
        expected = np.sort(data)
        with SmpssRuntime(num_workers=2):
            multisort.multisort(data, quicksize=16)
        assert (data == expected).all()

    def test_recursive_merge_topology_task_counts(self):
        data = np.empty(1 << 14, np.float32)
        tmp = np.empty(1 << 14, np.float32)
        prog = record_program(
            multisort.multisort_recursive_merge_topology, data, tmp, 1 << 12,
            execute="skip",
        )
        names = prog.graph.stats.tasks_by_name
        assert names["seqquick_t"] == 4  # one level of 4-way split
        assert names["seqmerge_piece_t"] > 3


class TestNQueens:
    @pytest.mark.parametrize("n", [4, 5, 6, 7, 8])
    def test_sequential_counts(self, n):
        solutions, nodes = nqueens.nqueens_sequential(n)
        assert solutions == nqueens.KNOWN_SOLUTIONS[n]
        assert nodes >= solutions

    @pytest.mark.parametrize("n", [6, 8])
    def test_smpss_version_counts(self, n):
        assert nqueens.nqueens_smpss_count(n) == nqueens.KNOWN_SOLUTIONS[n]

    @pytest.mark.parametrize("n", [6, 8])
    def test_duplicating_version_counts(self, n):
        assert nqueens.nqueens_duplicating_count(n) == nqueens.KNOWN_SOLUTIONS[n]

    def test_smpss_under_eager_recording(self):
        recorder = RecordingRuntime(execute="eager")
        with recorder:
            count = nqueens.nqueens_smpss_count(7)
        assert count == nqueens.KNOWN_SOLUTIONS[7]

    def test_smpss_renames_the_solution_array(self):
        """'The runtime takes care of it by renaming the array as
        needed' (section VI.E)."""

        recorder = RecordingRuntime(execute="eager")
        with recorder:
            nqueens.nqueens_smpss(6)
        assert recorder.graph.stats.renames > 0

    def test_leaf_tasks_not_serialised(self):
        """Sibling leaf tasks must not depend on one another."""

        prog = record_program(lambda: nqueens.nqueens_smpss(6), execute="eager")
        leaves = [t for t in prog.graph if t.name == "nqueens_task"]
        assert len(leaves) > 1
        for a in leaves:
            for b in leaves:
                assert b not in a.successors


class TestLU:
    def test_sequential_reconstruction(self):
        rng = np.random.default_rng(0)
        original = rng.standard_normal((32, 32))
        work = np.array(original)
        ipiv = lu.lu_blocked(work, 8)
        assert np.allclose(lu.lu_reconstruct(work, ipiv), original, atol=1e-10)

    def test_matches_scipy_solution(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((24, 24))
        b = rng.standard_normal(24)
        work = np.array(a)
        ipiv = lu.lu_blocked(work, 8)
        # Solve via the computed factors.
        x = np.array(b)
        for row in range(24):  # apply P
            p = int(ipiv[row])
            if p != row:
                x[[row, p]] = x[[p, row]]
        l = np.tril(work, -1) + np.eye(24)
        u = np.triu(work)
        y = sla.solve_triangular(l, x, lower=True, unit_diagonal=True)
        solution = sla.solve_triangular(u, y)
        assert np.allclose(a @ solution, b, atol=1e-8)

    def test_task_count_formula(self):
        rng = np.random.default_rng(3)
        work = rng.standard_normal((24, 24))
        prog = record_program(lu.lu_blocked, work, 8, execute="eager")
        assert prog.task_count == lu.lu_task_count(3)["total"]

    def test_singular_matrix_raises(self):
        with pytest.raises(ZeroDivisionError):
            lu.lu_blocked(np.zeros((8, 8)), 4)

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            lu.lu_blocked(np.zeros((8, 6)), 2)
        with pytest.raises(ValueError):
            lu.lu_blocked(np.zeros((9, 9)), 4)

    def test_parallelism_exists(self):
        """Trailing tiles of distinct block columns are independent."""

        rng = np.random.default_rng(4)
        work = rng.standard_normal((32, 32))
        prog = record_program(lu.lu_blocked, work, 8, execute="eager")
        cp = prog.graph.critical_path_length()
        assert cp < prog.task_count  # not a chain
