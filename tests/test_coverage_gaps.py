"""Tests for smaller paths not exercised elsewhere."""

import numpy as np
import pytest

from repro import SmpssRuntime, css_task
from repro.apps.cholesky import run_hyper
from repro.apps.matmul import run_dense
from repro.blas.hypermatrix import HyperMatrix


class TestAppRunners:
    def test_run_dense_with_and_without_runtime(self):
        a = HyperMatrix.random(2, 4, np.float64, seed=0)
        b = HyperMatrix.random(2, 4, np.float64, seed=1)
        expected = a.to_dense() @ b.to_dense()

        c = HyperMatrix.zeros(2, 4, np.float64)
        run_dense(a, b, c)  # sequential path
        assert np.allclose(c.to_dense(), expected)

        c2 = HyperMatrix.zeros(2, 4, np.float64)
        with SmpssRuntime(num_workers=2):
            run_dense(a, b, c2)  # barriers internally
            assert np.allclose(c2.to_dense(), expected)

    def test_run_hyper(self):
        hm = HyperMatrix.random_spd(3, 4, seed=2)
        dense = hm.to_dense()
        import scipy.linalg as sla

        with SmpssRuntime(num_workers=2):
            run_hyper(hm)
            assert np.allclose(
                hm.lower_to_dense(), sla.cholesky(dense, lower=True), atol=1e-8
            )


class TestCompilerRun:
    def test_cli_run_mode(self, tmp_path, capsys):
        from repro.compiler.__main__ import main

        path = tmp_path / "prog.py"
        path.write_text(
            "#pragma css task input(a)\n"
            "def show(a):\n"
            "    print('value', a)\n"
            "\n"
            "if __name__ == '__main__':\n"
            "    show(42)\n"
        )
        assert main([str(path), "--run"]) == 0
        assert "value 42" in capsys.readouterr().out


class TestSimulatedRuntimeExtras:
    def test_acquire_and_wait_for(self):
        from repro.sim import ALTIX_32, CostModel, SimulatedRuntime

        @css_task("inout(a)")
        def bump(a):
            a += 1

        data = np.zeros(4)
        machine = ALTIX_32.with_cores(2)
        runtime = SimulatedRuntime(
            machine=machine,
            cost_model=CostModel(machine, block_size=4),
            execute_bodies=True,
        )
        with runtime:
            task = bump(data)
            latest = runtime.acquire(data)
            assert (latest == 1.0).all()
            runtime.wait_for(task)
            runtime.barrier()
        assert runtime.result().tasks_executed == 1

    def test_untracked_acquire(self):
        from repro.sim import SimulatedRuntime

        runtime = SimulatedRuntime()
        obj = np.zeros(2)
        assert runtime.acquire(obj) is obj


class TestEngineDrainFallback:
    def test_single_core_static_run(self):
        """run_static on a 1-core machine uses the core-0 fallback."""

        from repro.core.scheduler import SmpssScheduler
        from repro.sim import CostModel, MachineConfig, run_static
        from repro.sim.baselines import DagTemplate

        dag = DagTemplate()
        for _ in range(5):
            dag.add_node("w", 1.0)
        machine = MachineConfig(
            cores=1, task_dispatch_overhead=0.0, steal_overhead=0.0
        )
        res = run_static(
            dag.build(), machine, CostModel(machine, block_size=1), SmpssScheduler
        )
        assert res.tasks_executed == 5
        assert res.makespan == pytest.approx(5.0)


class TestSchedulerEdgeBehaviour:
    def test_two_thread_mutual_steal(self):
        from repro.core.scheduler import SmpssScheduler
        from repro.core.task import TaskDefinition, TaskInstance

        defn = TaskDefinition(func=lambda: None, params=(), name="t")
        s = SmpssScheduler(num_threads=2)
        mine = TaskInstance(definition=defn, accesses=[], arguments={})
        yours = TaskInstance(definition=defn, accesses=[], arguments={})
        s.push_unlocked(mine, 0)
        s.push_unlocked(yours, 1)
        got0 = s.pop(0)
        got1 = s.pop(1)
        assert {got0, got1} == {mine, yours}
        assert got0 is mine and got1 is yours  # own lists first
        assert s.stats.steals == 0


class TestHyperMatrixMisc:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            HyperMatrix(0, 4)
        with pytest.raises(ValueError):
            HyperMatrix.random_sparse(2, 2, density=1.5)

    def test_setitem_requires_tuple(self):
        hm = HyperMatrix(2, 2)
        with pytest.raises(TypeError):
            hm[0] = [None, None]

    def test_size_property(self):
        assert HyperMatrix(3, 5).size == 15


class TestStrassenAcc:
    def test_acc_tasks(self):
        from repro.apps.strassen import sacc_t, ssubacc_t, smul_t

        a = np.full((2, 2), 3.0)
        c = np.ones((2, 2))
        sacc_t(a, c)
        assert (c == 4.0).all()
        ssubacc_t(a, c)
        assert (c == 1.0).all()
        out = np.empty((2, 2))
        smul_t(a, a, out)
        assert np.allclose(out, a @ a)
