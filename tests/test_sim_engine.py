"""Tests for the discrete-event engine and virtual machine."""

import pytest

from repro.core.scheduler import SmpssScheduler
from repro.sim import ALTIX_32, CostModel, MachineConfig, run_static
from repro.sim.baselines import DagTemplate
from repro.sim.cache import CoreCache, ResidencyIndex


def template_chain(durations):
    dag = DagTemplate()
    prev = None
    for d in durations:
        node = dag.add_node("work", d)
        if prev is not None:
            dag.add_edge(prev, node)
        prev = node
    return dag


def template_fan(duration, width):
    dag = DagTemplate()
    for _ in range(width):
        dag.add_node("work", duration)
    return dag


def quiet_machine(cores):
    """A machine with zero overheads for exact makespan arithmetic."""

    return MachineConfig(
        cores=cores,
        task_add_overhead=0.0,
        task_dispatch_overhead=0.0,
        steal_overhead=0.0,
        rename_alloc_overhead=0.0,
    )


def run(dag, cores):
    machine = quiet_machine(cores)
    return run_static(
        dag.build(), machine, CostModel(machine, block_size=1), SmpssScheduler
    )


class TestExactSchedules:
    def test_serial_chain_sums(self):
        res = run(template_chain([1.0, 2.0, 3.0]), cores=4)
        assert res.makespan == pytest.approx(6.0)
        assert res.tasks_executed == 3

    def test_independent_tasks_parallelise(self):
        res = run(template_fan(1.0, 8), cores=8)
        assert res.makespan == pytest.approx(1.0)

    def test_more_tasks_than_cores_waves(self):
        res = run(template_fan(1.0, 10), cores=4)
        # 10 unit tasks on 4 cores: ceil(10/4) = 3 waves.
        assert res.makespan == pytest.approx(3.0)

    def test_single_core(self):
        res = run(template_fan(1.0, 5), cores=1)
        assert res.makespan == pytest.approx(5.0)

    def test_diamond_critical_path(self):
        dag = DagTemplate()
        a = dag.add_node("a", 1.0)
        b = dag.add_node("b", 5.0)
        c = dag.add_node("c", 1.0)
        d = dag.add_node("d", 1.0)
        dag.add_edge(a, b)
        dag.add_edge(a, c)
        dag.add_edge(b, d)
        dag.add_edge(c, d)
        res = run(dag, cores=2)
        assert res.makespan == pytest.approx(7.0)

    def test_busy_time_conservation(self):
        res = run(template_fan(2.0, 6), cores=3)
        assert sum(res.busy_time) == pytest.approx(12.0)
        assert res.utilisation == pytest.approx(1.0)

    def test_determinism(self):
        dag = template_fan(1.0, 16)
        first = run(dag, cores=5)
        second = run(dag, cores=5)
        assert first.makespan == second.makespan
        assert first.busy_time == second.busy_time


class TestSimResult:
    def test_gflops_and_speedup(self):
        res = run(template_fan(1.0, 4), cores=4)
        assert res.gflops(2e9) == pytest.approx(2.0)
        assert res.speedup(4.0) == pytest.approx(4.0)


class TestCoreCache:
    def test_hit_miss_lru(self):
        cache = CoreCache(capacity=100)
        assert not cache.touch(1, 60)  # miss, inserted
        assert cache.touch(1, 60)  # hit
        assert not cache.touch(2, 60)  # miss, evicts 1
        assert not cache.touch(1, 60)  # 1 was evicted
        assert cache.misses == 3 and cache.hits == 1

    def test_lru_order_respected(self):
        cache = CoreCache(capacity=100)
        cache.touch(1, 40)
        cache.touch(2, 40)
        cache.touch(1, 40)  # refresh 1
        cache.touch(3, 40)  # evicts 2 (LRU), not 1
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_oversized_object_never_cached(self):
        cache = CoreCache(capacity=10)
        assert not cache.touch(1, 100)
        assert 1 not in cache
        assert cache.used_bytes == 0

    def test_invalidate(self):
        cache = CoreCache(capacity=100)
        cache.touch(1, 50)
        cache.invalidate(1)
        assert 1 not in cache
        assert cache.used_bytes == 0
        cache.invalidate(99)  # absent: no-op

    def test_residency_index(self):
        index = ResidencyIndex()
        a = CoreCache(100, core_id=0, residency=index)
        b = CoreCache(100, core_id=1, residency=index)
        a.touch(7, 10)
        b.touch(7, 10)
        assert index.holders(7) == {0, 1}
        a.invalidate(7)
        assert index.holders(7) == {1}
        b.invalidate(7)
        assert index.holders(7) == frozenset()


class TestCoherency:
    def test_writer_invalidates_other_cores(self):
        """A task writing a datum evicts it from other cores' caches,
        so the next reader there pays the traffic again."""

        import numpy as np

        from repro import record_program
        from repro.apps.tasks import sgemm_t
        from repro.core.graph import TaskGraph
        from repro.core.scheduler import SmpssScheduler
        from repro.sim.engine import VirtualMachine

        a = np.zeros((1, 1), np.float32)
        b = np.zeros((1, 1), np.float32)
        c = np.zeros((1, 1), np.float32)
        prog = record_program(lambda: sgemm_t(a, b, c), execute="skip")
        machine = quiet_machine(2)
        cost = CostModel(machine, block_size=64)
        scheduler = SmpssScheduler(2)
        vm = VirtualMachine(machine, prog.graph, scheduler, cost)
        # Preload c into core 1's cache, then run the writer on core 0.
        vm.caches[1].touch(id(c), 4)
        task = prog.tasks[0]
        vm.start_task(0, task, 0.0)
        assert id(c) not in vm.caches[1]
