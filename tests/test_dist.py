"""End-to-end tests of the distributed backend (repro.dist).

Everything the threaded runtime guarantees must hold bit-for-bit under
``backend="cluster"`` with all agents on localhost: dependency order,
renaming, regions, error propagation.  On top the backend adds its own
contracts — datum residency (repeat submissions ship fewer bytes),
locality-aware placement, one automatic re-dispatch after an agent
death, structured data-loss errors in lazy mode — pinned down here.
"""

import threading
import time

import numpy as np
import pytest

from repro import SmpssRuntime, TaskExecutionError, css_task
from repro.apps.cholesky import HyperMatrix, cholesky_hyper
from repro.apps.multisort import multisort
from repro.dist import (
    AgentServer,
    DistDataLossError,
    DistSerializationError,
    RemoteTaskError,
)
from repro.obs.exposition import render_registry

pytestmark = pytest.mark.dist


# ---------------------------------------------------------------------------
# task definitions (module level so agents resolve them by name)
# ---------------------------------------------------------------------------

@css_task("input(a, b) inout(c)")
def axpy_t(a, b, c):
    c += a * b


@css_task("input(a, b) output(c)")
def mul_t(a, b, c):
    np.multiply(a, b, out=c)


@css_task("input(c) inout(acc)")
def accum_t(c, acc):
    acc += c


@css_task("inout(a)")
def incr_t(a):
    a += 1


@css_task("inout(a)")
def slow_incr_t(a):
    time.sleep(0.05)
    a += 1


@css_task("inout(a)")
def boom_t(a):
    raise ValueError("remote kaboom")


@css_task("opaque(ctx) inout(a)")
def opaque_t(ctx, a):
    a += 1


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------

@pytest.fixture()
def agents():
    """Two in-process localhost agents, two slots each."""

    started = [
        AgentServer("tcp:127.0.0.1:0", slots=2).start() for _ in range(2)
    ]
    try:
        yield started
    finally:
        for agent in started:
            agent.close()


def cluster(agents, **kwargs):
    return SmpssRuntime(
        backend="cluster", nodes=[a.address for a in agents], **kwargs
    )


# ---------------------------------------------------------------------------
# bitwise parity with the threads backend
# ---------------------------------------------------------------------------

class TestParity:
    def test_cholesky_bitwise_identical_to_threads(self, agents):
        h_ref = HyperMatrix.random_spd(6, 24, seed=7)
        h_dist = h_ref.copy()
        with SmpssRuntime(num_workers=4) as rt:
            cholesky_hyper(h_ref)
            rt.barrier()
        with cluster(agents) as rt:
            cholesky_hyper(h_dist)
            rt.barrier()
            snap = rt.metrics.snapshot()
        assert np.array_equal(h_ref.lower_to_dense(), h_dist.lower_to_dense())
        # Both nodes did real work (placement did not serialise).
        per_node = snap["dist.node_tasks"]
        assert sum(bool(v) for v in per_node.values()) >= 1

    def test_multisort_bitwise_identical_to_threads(self, agents):
        rng = np.random.default_rng(11)
        data = rng.random(4096)
        ref = data.copy()
        with SmpssRuntime(num_workers=4) as rt:
            multisort(ref, quicksize=256)
            rt.barrier()
        got = data.copy()
        with cluster(agents) as rt:
            multisort(got, quicksize=256)
            rt.barrier()
        assert np.array_equal(ref, got)

    def test_war_waw_renaming_matches_threads(self, agents):
        # incr chains + cross-reads: exercises CLONE (inout rename)
        # and FRESH (output rename) across the wire.
        rng = np.random.default_rng(3)
        a0 = rng.random((16, 16))
        b0 = rng.random((16, 16))

        def program(rt, a, b):
            c = np.empty((16, 16))
            for _ in range(3):
                incr_t(a)
                mul_t(a, b, c)
                accum_t(c, b)
            rt.barrier()
            return c

        a_ref, b_ref = a0.copy(), b0.copy()
        with SmpssRuntime(num_workers=2) as rt:
            c_ref = program(rt, a_ref, b_ref)
        a_d, b_d = a0.copy(), b0.copy()
        with cluster(agents) as rt:
            c_d = program(rt, a_d, b_d)
        assert np.array_equal(a_ref, a_d)
        assert np.array_equal(b_ref, b_d)
        assert np.array_equal(c_ref, c_d)

    def test_processes_agent_mode(self):
        agent = AgentServer("tcp:127.0.0.1:0", slots=2, processes=True).start()
        try:
            rng = np.random.default_rng(5)
            a = rng.random((16, 16))
            b = rng.random((16, 16))
            c = rng.random((16, 16))
            expect = c + a * b
            with SmpssRuntime(backend="cluster", nodes=[agent.address]) as rt:
                axpy_t(a, b, c)
                rt.barrier()
            assert np.array_equal(expect, c)
        finally:
            agent.close()


# ---------------------------------------------------------------------------
# residency cache
# ---------------------------------------------------------------------------

class TestResidencyCache:
    def test_second_submission_ships_fewer_bytes(self, agents):
        rng = np.random.default_rng(13)
        A = [rng.random((64, 64)) for _ in range(6)]
        B = [rng.random((64, 64)) for _ in range(6)]
        with cluster(agents) as rt:
            m = rt.metrics

            def submit():
                acc = np.zeros((64, 64))
                for a, b in zip(A, B):
                    c = np.empty((64, 64))
                    mul_t(a, b, c)
                    accum_t(c, acc)
                rt.barrier()
                return acc

            r1 = submit()
            first = m.counter("dist.bytes_moved").value
            hits1 = m.counter("dist.cache_hits").value
            r2 = submit()
            second = m.counter("dist.bytes_moved").value - first
            hits2 = m.counter("dist.cache_hits").value - hits1
        assert np.array_equal(r1, r2)
        assert second < first      # A/B resident from the first round
        assert hits2 > 0

    def test_mutation_between_barriers_invalidates_cache(self, agents):
        rng = np.random.default_rng(17)
        a = rng.random((32, 32))
        b = rng.random((32, 32))
        with cluster(agents) as rt:
            c = np.empty((32, 32))
            mul_t(a, b, c)
            rt.barrier()
            a[0, 0] = 123.456  # out-of-band mutation
            c2 = np.empty((32, 32))
            mul_t(a, b, c2)
            rt.barrier()
            assert np.array_equal(c2, a * b)

    def test_barrier_evicts_everything_but_base_arrays(self, agents):
        a = np.random.default_rng(19).random((16, 16))
        with cluster(agents) as rt:
            for _ in range(3):
                incr_t(a)  # renamed clones come and go
            rt.barrier()
            residency = rt._cluster._residency
            for entry in residency.entries():
                assert entry.is_base
                assert entry.obj is a

    def test_acquire_fetches_lazy_output_home(self, agents):
        a = np.zeros((8, 8))
        with cluster(agents) as rt:
            incr_t(a)
            # wait_on/acquire must see the remote write without a
            # barrier.
            got = rt.acquire(a)
            assert np.array_equal(got, np.ones((8, 8)))


# ---------------------------------------------------------------------------
# failure semantics
# ---------------------------------------------------------------------------

class TestFailures:
    def test_agent_death_recovers_with_one_redispatch(self, agents):
        rng = np.random.default_rng(23)
        arrays = [rng.random((8, 8)) for _ in range(8)]
        expect = [a + 1 for a in arrays]
        killer = threading.Timer(0.1, agents[1].kill)
        with cluster(agents, dist_write_through=True) as rt:
            killer.start()
            for a in arrays:
                slow_incr_t(a)
            rt.barrier()
            deaths = rt.metrics.counter("dist.agent_deaths").value
            redispatched = rt.metrics.counter(
                "dist.redispatched_tasks").value
            text = render_registry(rt.metrics)
        killer.cancel()
        assert all(np.array_equal(e, a) for e, a in zip(expect, arrays))
        assert deaths >= 1
        assert redispatched >= 1
        # Prometheus exposition carries the death counters and the
        # per-node gauges.
        assert "repro_dist_agent_deaths" in text
        assert 'node="n1"' in text

    def test_lazy_mode_sole_copy_loss_is_structured(self, agents):
        a = np.zeros((8, 8))
        with pytest.raises((TaskExecutionError, DistDataLossError)) as exc:
            with cluster(agents) as rt:
                incr_t(a)
                time.sleep(0.3)  # output now resident on an agent only
                agents[0].kill()
                agents[1].kill()
                rt.barrier()
        root = exc.value
        while root.__cause__ is not None:
            root = root.__cause__
        assert isinstance(root, (DistDataLossError, Exception))
        assert "DistDataLossError" in type(root).__name__ or isinstance(
            root, DistDataLossError)

    def test_remote_error_carries_traceback(self, agents):
        a = np.zeros(4)
        with pytest.raises(TaskExecutionError) as exc:
            with cluster(agents) as rt:
                boom_t(a)
                rt.barrier()
        cause = exc.value.__cause__
        assert isinstance(cause, RemoteTaskError)
        assert "remote kaboom" in str(cause)
        assert "boom_t" in str(cause)

    def test_opaque_nonscalar_is_rejected(self, agents):
        a = np.zeros(4)
        ctx = np.ones(4)  # writes through it would be lost silently
        with pytest.raises(TaskExecutionError) as exc:
            with cluster(agents) as rt:
                opaque_t(ctx, a)
                rt.barrier()
        assert isinstance(exc.value.__cause__, DistSerializationError)


# ---------------------------------------------------------------------------
# lifecycle / configuration
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_agents_are_reusable_across_sessions(self, agents):
        for _ in range(2):
            a = np.zeros((8, 8))
            with cluster(agents) as rt:
                incr_t(a)
                rt.barrier()
            assert np.array_equal(a, np.ones((8, 8)))
        # Session release dropped the store: nothing left behind.
        for agent in agents:
            assert agent.store.stats()["entries"] == 0

    def test_num_workers_derived_from_agent_slots(self, agents):
        with cluster(agents) as rt:
            assert rt.config.num_workers == 4  # 2 agents x 2 slots

    def test_config_validation(self):
        with pytest.raises(TypeError):
            SmpssRuntime(backend="cluster")  # no nodes
        with pytest.raises(TypeError):
            SmpssRuntime(backend="cluster", nodes=["tcp:x:1"], num_workers=2)
        with pytest.raises(TypeError):
            SmpssRuntime(num_workers=2, nodes=["tcp:x:1"])  # threads + nodes

    def test_liveness_surface(self, agents):
        with cluster(agents) as rt:
            live = rt._mp.liveness()
            assert len(live) == 4
            assert all(w["alive"] for w in live)
            assert {w["node"] for w in live} == {"n0", "n1"}
