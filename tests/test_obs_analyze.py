"""Tests for the critical-path / utilisation analyzer and its CLI."""

import numpy as np
import pytest

from repro import SmpssRuntime, css_task, record_program
from repro.apps.cholesky import cholesky_hyper
from repro.blas.hypermatrix import HyperMatrix
from repro.obs import (
    analyze_events,
    analyze_tracer,
    load_chrome_trace,
    render_report,
    runtime_report,
    write_chrome_trace,
)
from repro.obs.__main__ import main as obs_main

pytestmark = pytest.mark.obs


@css_task("inout(a)")
def bump(a):
    a += 1


@css_task("input(a, b) inout(c)")
def gemm_t(a, b, c):
    c += a @ b


def _placeholder_hyper(n_blocks):
    hm = HyperMatrix(n_blocks, 1, np.float32)
    for i in range(n_blocks):
        for j in range(n_blocks):
            hm[i, j] = np.zeros((1, 1), np.float32)
    return hm


class TestCriticalPath:
    def test_cholesky_6x6_span_matches_hand_check(self):
        """T∞ of the 6x6 blocked Cholesky DAG, hand-checked.

        The longest chain alternates potrf(k) -> trsm(k+1,k) ->
        syrk(k+1,k) -> potrf(k+1): three tasks per elimination step
        after the first potrf, so T∞ = 1 + 3*(N-1) = 16 for N=6.
        """

        prog = record_program(
            cholesky_hyper, _placeholder_hyper(6), execute="skip"
        )
        assert prog.graph.critical_path_length() == 16
        path = prog.critical_path()
        assert len(path) == 16
        # The path is a real chain: consecutive tasks are dependent.
        for pred, succ in zip(path, path[1:]):
            assert pred in succ.predecessors
        # It starts at the first potrf and ends at the last.
        assert path[0].name == "spotrf_t"
        assert path[-1].name == "spotrf_t"

    def test_weighted_path_prefers_heavy_branch(self):
        def program():
            a, b, c = np.zeros(1), np.zeros(1), np.zeros(1)
            bump(a)          # 1
            bump(b)          # 2
            gemm_t(np.zeros((1, 1)), np.zeros((1, 1)), np.zeros((1, 1)))  # 3
            bump(a)          # 4: chain on a

        prog = record_program(program, execute="skip")
        heavy = prog.graph.critical_path_tasks(
            weight=lambda t: 10.0 if t.name == "gemm_t" else 1.0
        )
        assert [t.name for t in heavy] == ["gemm_t"]
        unit = prog.graph.critical_path_tasks()
        assert [t.name for t in unit] == ["bump", "bump"]


class TestAnalyzeTracer:
    def _traced(self, tasks=8, workers=3):
        arr = np.zeros(1)
        rt = SmpssRuntime(num_workers=workers, trace=True, keep_graph=True)
        with rt:
            for _ in range(tasks):
                bump(arr)
            rt.barrier()
        return rt

    def test_busy_times_match_tracer_within_one_percent(self):
        rt = self._traced(tasks=10)
        report = analyze_tracer(rt.tracer, num_threads=rt.num_threads)
        reference = rt.tracer.busy_time_by_thread()
        for thread, busy in reference.items():
            assert report.threads[thread].busy == pytest.approx(
                busy, rel=0.01
            )
        assert report.total_tasks == 10

    def test_thread_padding_and_idle(self):
        rt = self._traced(tasks=4, workers=3)
        report = analyze_tracer(rt.tracer, num_threads=4)
        assert set(report.threads) == {0, 1, 2, 3}
        for usage in report.threads.values():
            assert usage.idle(report.makespan) <= report.makespan + 1e-12

    def test_locality_rate_bounds(self):
        report = analyze_tracer(self._traced(tasks=10).tracer)
        assert 0.0 <= report.locality_rate <= 1.0
        # A serial inout chain: at most 9 unlock candidates (the root is
        # released at submission; later tasks only count when a worker
        # completion — not the fast main thread — released them).
        assert report.locality_candidates <= 9
        assert report.locality_hits <= report.locality_candidates

    def test_graph_adds_work_span_bounds(self):
        rt = self._traced(tasks=6)
        report = analyze_tracer(
            rt.tracer, graph=rt.graph, num_threads=rt.num_threads
        )
        assert report.work == pytest.approx(report.total_busy, rel=0.05)
        # A pure chain: span == work, parallelism == 1.
        assert report.span == pytest.approx(report.work, rel=0.05)
        assert report.bound_lower <= report.bound_upper

    def test_barrier_time_recorded(self):
        report = analyze_tracer(self._traced().tracer)
        assert report.barrier_time >= 0.0

    def test_utilisation_in_unit_interval(self):
        report = analyze_tracer(self._traced().tracer, num_threads=4)
        assert 0.0 < report.utilisation <= 1.0


class TestRenderAndRuntimeReport:
    def test_render_contains_sections(self):
        arr = np.zeros(1)
        rt = SmpssRuntime(num_workers=2, trace=True)
        with rt:
            for _ in range(5):
                bump(arr)
            rt.barrier()
        text = render_report(analyze_tracer(rt.tracer), title="t")
        assert "== t ==" in text
        assert "makespan" in text and "per-thread:" in text
        assert "locality hit-rate" in text
        assert "bump" in text

    def test_runtime_report_without_trace(self):
        arr = np.zeros(1)
        rt = SmpssRuntime(num_workers=1)
        with rt:
            bump(arr)
            rt.barrier()
        text = rt.report()
        assert "no trace recorded" in text
        assert "metrics:" in text  # registry still contributes

    def test_runtime_report_with_trace_and_graph(self):
        arr = np.zeros(1)
        rt = SmpssRuntime(num_workers=2, trace=True, keep_graph=True)
        with rt:
            for _ in range(6):
                bump(arr)
            rt.barrier()
        text = rt.report()
        assert "T1 (work)" in text and "Tinf (span)" in text
        assert "greedy bounds" in text

    def test_simulated_runtime_report(self):
        from repro.sim import ALTIX_32, CostModel, SimulatedRuntime

        machine = ALTIX_32.with_cores(4)
        rt = SimulatedRuntime(
            machine=machine,
            cost_model=CostModel(machine, block_size=64),
            trace=True,
        )
        with rt:
            cholesky_hyper(_placeholder_hyper(4))
            rt.barrier()
        text = rt.report()
        assert "per-thread:" in text
        assert "thr  3" in text  # all 4 virtual cores reported
        assert runtime_report(rt) == rt.report().replace(
            "simulated runtime report", "runtime report"
        )


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        arr = np.zeros(1)
        rt = SmpssRuntime(num_workers=2, trace=True)
        with rt:
            for _ in range(5):
                bump(arr)
            rt.barrier()
        path = write_chrome_trace(rt.tracer, str(tmp_path / "trace.json"))
        assert obs_main(["report", path, "--threads", "3"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "thr  2" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "absent.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_report_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}')
        assert obs_main(["report", str(path)]) == 1
        assert "no recognisable events" in capsys.readouterr().err

    def test_loaded_report_matches_live_analysis(self, tmp_path):
        arr = np.zeros(1)
        rt = SmpssRuntime(num_workers=2, trace=True)
        with rt:
            for _ in range(6):
                bump(arr)
            rt.barrier()
        live = analyze_tracer(rt.tracer)
        loaded = analyze_events(
            load_chrome_trace(str(write_chrome_trace(
                rt.tracer, str(tmp_path / "t.json")
            )))
        )
        assert loaded.total_tasks == live.total_tasks
        assert loaded.makespan == pytest.approx(live.makespan, rel=1e-3)
        assert loaded.locality_hits == live.locality_hits
        assert loaded.locality_candidates == live.locality_candidates
