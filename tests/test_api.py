"""Tests for the css_task decorator and runtime stack."""

import numpy as np
import pytest

from repro import InvocationError, SmpssRuntime, css_task
from repro.core import api
from repro.core.invocation import instantiate
from repro.core.regions import Region
from repro.core.task import Direction


class TestDecorator:
    def test_attaches_definition(self):
        @css_task("input(a) output(b)")
        def f(a, b):  # noqa: ARG001
            pass

        assert f.definition.name == "f"
        assert [p.direction for p in f.definition.params] == [
            Direction.INPUT, Direction.OUTPUT,
        ]

    def test_sequential_attribute(self):
        calls = []

        @css_task("input(a)")
        def f(a):
            calls.append(a)

        f.sequential(1)
        assert calls == [1]

    def test_unknown_param_rejected(self):
        with pytest.raises(TypeError, match="not in the function signature"):
            @css_task("input(zzz)")
            def f(a):  # noqa: ARG001
                pass

    def test_varargs_rejected(self):
        with pytest.raises(TypeError, match="not\\s+supported"):
            @css_task("input(a)")
            def f(a, *rest):  # noqa: ARG001
                pass

    def test_kwonly_rejected(self):
        with pytest.raises(TypeError):
            @css_task("input(a)")
            def f(a, *, opt=1):  # noqa: ARG001
                pass

    def test_highpriority_marks_definition(self):
        @css_task("inout(a) highpriority")
        def f(a):  # noqa: ARG001
            pass

        assert f.definition.high_priority

    def test_defaults_applied(self):
        @css_task("input(a, n)")
        def f(a, n=3):  # noqa: ARG001
            pass

        inst = instantiate(f.definition, (np.zeros(2),), {})
        assert inst.arguments["n"] == 3

    def test_keyword_call_binding(self):
        @css_task("input(a, b)")
        def f(a, b):  # noqa: ARG001
            pass

        inst = instantiate(f.definition, (), {"b": 2, "a": 1})
        assert inst.arguments == {"a": 1, "b": 2}

    def test_bad_arity(self):
        @css_task("input(a)")
        def f(a):  # noqa: ARG001
            pass

        with pytest.raises(InvocationError):
            instantiate(f.definition, (1, 2, 3), {})


class TestConstants:
    def test_constants_resolve_dimensions(self):
        @css_task("input(a[N][N])", constants={"N": 4})
        def f(a):  # noqa: ARG001
            pass

        inst = instantiate(f.definition, (np.zeros((4, 4)),), {})
        assert inst.accesses[0].region is None  # dims only, no region

    def test_constants_resolve_region_bounds(self):
        @css_task("input(a{0..N-1})", constants={"N": 4})
        def f(a):  # noqa: ARG001
            pass

        inst = instantiate(f.definition, (np.zeros(8),), {})
        assert inst.accesses[0].region == Region(((0, 3),))


class TestRegionsAtInvocation:
    @staticmethod
    def _task():
        @css_task("inout(data{i..j}) input(i, j)")
        def f(data, i, j):  # noqa: ARG001
            pass

        return f

    def test_region_resolved_from_args(self):
        f = self._task()
        inst = instantiate(f.definition, (np.zeros(10), 2, 5), {})
        assert inst.accesses[0].region == Region(((2, 5),))

    def test_region_exceeding_extent_rejected(self):
        f = self._task()
        with pytest.raises(InvocationError, match="exceeds"):
            instantiate(f.definition, (np.zeros(4), 0, 9), {})

    def test_inverted_region_rejected(self):
        f = self._task()
        with pytest.raises(InvocationError):
            instantiate(f.definition, (np.zeros(10), 5, 2), {})


class TestRuntimeStack:
    def test_nested_push_pop(self):
        assert api.current_runtime() is None
        with SmpssRuntime(num_workers=1) as outer:
            assert api.current_runtime() is outer
        assert api.current_runtime() is None

    def test_mismatched_pop_detected(self):
        with pytest.raises(RuntimeError, match="mismatched"):
            api.pop_runtime(object())

    def test_module_barrier_noop_without_runtime(self):
        api.barrier()  # must not raise
