"""Tests for the repro.check whole-program layer (``repro.check.flow``).

Three angles:

* the ``misflowed.py`` fixture seeds exactly one bug per ``flow-*``
  rule next to clean controls — every bug must be reported exactly
  once and the controls not at all;
* the acceptance loop: the static skeleton extracted from the Figure 5
  Cholesky example must match the task graph the recording runtime
  builds for the same driver, task for task and edge for edge;
* the shipped corpus (``src/repro/apps``, ``examples/``) stays
  flow-clean, so CI can fail on any new finding.
"""

from __future__ import annotations

import json

from pathlib import Path

import numpy as np
import pytest

from repro.check import (
    ERROR,
    RULES,
    WARNING,
    SuppressionIndex,
    flow_file,
    flow_paths,
    flow_source,
)
from repro.check.__main__ import main as check_main

pytestmark = pytest.mark.flow

REPO = Path(__file__).resolve().parent.parent
FIXTURE = Path(__file__).resolve().parent / "fixtures" / "misflowed.py"

FLOW_RULES = sorted(r for r in RULES if r.startswith("flow-"))

PRELUDE = (
    "import numpy as np\n"
    "from repro import SmpssRuntime\n"
    "from repro.core.api import barrier, css_task, wait_on\n"
)


def flow_snippet(body: str, **kwargs):
    return flow_source(PRELUDE + body, "<snippet>", **kwargs)


def rules_of(findings):
    return [f.rule for f in findings]


@pytest.fixture(scope="module")
def fixture_result():
    return flow_file(FIXTURE)


# ---------------------------------------------------------------------------
# the misflowed fixture: one finding per rule, nothing else
# ---------------------------------------------------------------------------


class TestFixture:
    def test_every_rule_exactly_once(self, fixture_result):
        counts: dict[str, int] = {}
        for f in fixture_result.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        assert counts == {rule: 1 for rule in FLOW_RULES}

    def test_severities(self, fixture_result):
        severities = {f.rule: f.severity for f in fixture_result.findings}
        assert severities == {
            "flow-overlapping-writes": ERROR,
            "flow-opaque-race": ERROR,
            "flow-missing-barrier": ERROR,
            "flow-dead-barrier": WARNING,
            "flow-serialization": WARNING,
            "flow-renaming-pressure": WARNING,
        }

    def test_findings_carry_locations(self, fixture_result):
        for f in fixture_result.findings:
            assert f.file.endswith("misflowed.py")
            assert f.line > 0

    def test_skeleton_extracted(self, fixture_result):
        graph = fixture_result.graph
        assert graph.task_count > 0
        assert not graph.truncated
        # renaming_pressure_bug alone forces nine renames of `a`.
        assert graph.renames >= 9


# ---------------------------------------------------------------------------
# rule behaviour on minimal drivers
# ---------------------------------------------------------------------------


TASK_AND_SUBMIT = (
    "@css_task('output(a)')\n"
    "def t(a):\n"
    "    a[:] = 1\n"
    "with SmpssRuntime() as rt:\n"
    "    a = np.zeros(4)\n"
    "    t(a)\n"
)


class TestRules:
    def test_missing_barrier_on_driver_read(self):
        result = flow_snippet(TASK_AND_SUBMIT + "    x = a[0]\n")
        assert rules_of(result.findings) == ["flow-missing-barrier"]

    def test_barrier_resolves_driver_read(self):
        result = flow_snippet(
            TASK_AND_SUBMIT + "    barrier()\n    x = a[0]\n"
        )
        assert result.findings == []

    def test_wait_on_resolves_driver_read(self):
        result = flow_snippet(
            TASK_AND_SUBMIT + "    wait_on(a)\n    x = a[0]\n"
        )
        assert result.findings == []

    def test_runtime_exit_is_implicit_sync(self):
        # Reading after the `with` block needs no explicit barrier.
        result = flow_snippet(TASK_AND_SUBMIT + "x = a[0]\n")
        assert result.findings == []

    def test_conditional_submission_never_errors(self):
        # Zero-false-positive policy: a submission under an opaque
        # branch may not happen, so the driver read is not *provably*
        # racy and must not produce an error finding.
        result = flow_snippet(
            "@css_task('output(a)')\n"
            "def t(a):\n"
            "    a[:] = 1\n"
            "import os\n"
            "with SmpssRuntime() as rt:\n"
            "    a = np.zeros(4)\n"
            "    if os.environ.get('X'):\n"
            "        t(a)\n"
            "    x = a[0]\n"
        )
        assert result.findings == []

    def test_dead_barrier_back_to_back(self):
        result = flow_snippet(
            TASK_AND_SUBMIT + "    barrier()\n    barrier()\n"
        )
        assert rules_of(result.findings) == ["flow-dead-barrier"]

    def test_conditional_barrier_not_dead(self):
        # A barrier reached only on an opaque branch resets nothing
        # provably, so a later unconditional barrier stays unflagged.
        result = flow_snippet(
            "@css_task('output(a)')\n"
            "def t(a):\n"
            "    a[:] = 1\n"
            "import os\n"
            "with SmpssRuntime() as rt:\n"
            "    a = np.zeros(4)\n"
            "    t(a)\n"
            "    if os.environ.get('X'):\n"
            "        barrier()\n"
            "    barrier()\n"
        )
        assert result.findings == []

    def test_partial_overlap_writes_error(self):
        result = flow_snippet(
            "@css_task('inout(d{i..j}) input(i, j)')\n"
            "def fill(d, i, j):\n"
            "    d[i : j + 1] = i\n"
            "with SmpssRuntime() as rt:\n"
            "    d = np.zeros(32)\n"
            "    fill(d, 0, 15)\n"
            "    fill(d, 8, 24)\n"
            "    barrier()\n"
        )
        assert rules_of(result.findings) == ["flow-overlapping-writes"]

    def test_contained_region_writes_are_fine(self):
        # Containment is renaming/chain territory, not a hazard.
        result = flow_snippet(
            "@css_task('inout(d{i..j}) input(i, j)')\n"
            "def fill(d, i, j):\n"
            "    d[i : j + 1] = i\n"
            "with SmpssRuntime() as rt:\n"
            "    d = np.zeros(32)\n"
            "    fill(d, 0, 15)\n"
            "    fill(d, 4, 11)\n"
            "    barrier()\n"
        )
        assert result.findings == []

    def test_skeleton_matches_recording_semantics(self):
        # produce -> consume -> produce: TRUE edge then a rename
        # (the second produce lands under a pending reader).
        result = flow_snippet(
            "@css_task('output(a)')\n"
            "def p(a):\n"
            "    a[:] = 1\n"
            "@css_task('input(a)')\n"
            "def c(a):\n"
            "    a.sum()\n"
            "with SmpssRuntime() as rt:\n"
            "    a = np.zeros(4)\n"
            "    p(a)\n"
            "    c(a)\n"
            "    p(a)\n"
            "    barrier()\n"
        )
        doc = result.graph.to_json_dict()
        assert [row[1] for row in doc["tasks"]] == ["p", "c", "p"]
        assert doc["edges"] == [[1, 2, "true"]]  # rename kills WAR/WAW
        assert doc["renames"] == 1


# ---------------------------------------------------------------------------
# suppressions (shared resolver)
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_line_suppression(self):
        result = flow_snippet(
            TASK_AND_SUBMIT
            + "    x = a[0]  # css: ignore[flow-missing-barrier]\n"
        )
        assert result.findings == []

    def test_wrong_rule_does_not_suppress(self):
        result = flow_snippet(
            TASK_AND_SUBMIT
            + "    x = a[0]  # css: ignore[flow-dead-barrier]\n"
        )
        assert rules_of(result.findings) == ["flow-missing-barrier"]

    def test_file_header_suppression(self):
        result = flow_source(
            "# css: ignore[flow-missing-barrier]\n" + PRELUDE
            + TASK_AND_SUBMIT + "    x = a[0]\n",
            "<snippet>",
        )
        assert result.findings == []

    def test_index_file_scope_from_docstring(self):
        index = SuppressionIndex.from_source(
            '"""Module doc.\n\n# css: ignore[flow-serialization]\n"""\n'
            "x = 1\n"
        )
        assert index.is_suppressed("flow-serialization", 99)
        assert not index.is_suppressed("flow-dead-barrier", 99)

    def test_index_scope_lines(self):
        index = SuppressionIndex.from_source(
            "x = 1\n"
            "y = 2  # css: ignore[flow-dead-barrier]\n"
        )
        assert index.is_suppressed("flow-dead-barrier", 5, scope_lines=(2,))
        assert not index.is_suppressed("flow-dead-barrier", 5)

    def test_index_bare_ignore(self):
        index = SuppressionIndex.from_source("x = 1  # css: ignore\n")
        assert index.is_suppressed("flow-missing-barrier", 1)
        assert index.rules_for_line(1) == frozenset({"*"})


# ---------------------------------------------------------------------------
# acceptance: static skeleton == recorded graph (Figure 5 Cholesky)
# ---------------------------------------------------------------------------


class TestCholeskyAcceptance:
    def test_static_skeleton_matches_recording(self):
        from repro import record_program
        from repro.apps.cholesky import cholesky_hyper
        from repro.blas.hypermatrix import HyperMatrix

        result = flow_file(
            REPO / "examples" / "cholesky_factorization.py",
            entry="figure5_demo",
        )
        assert result.findings == []
        static = result.graph.to_json_dict()

        hm = HyperMatrix(6, 1, np.float32)
        for i in range(6):
            for j in range(6):
                hm[i, j] = np.zeros((1, 1), np.float32)
        prog = record_program(cholesky_hyper, hm, execute="skip")
        recorded = prog.to_json_dict()

        assert static["tasks"] == recorded["tasks"]
        static_edges = {(p, s): k for p, s, k in static["edges"]}
        recorded_edges = {(p, s): k for p, s, k in recorded["edges"]}
        assert static_edges == recorded_edges
        assert static["renames"] == 0


# ---------------------------------------------------------------------------
# the shipped corpus stays clean
# ---------------------------------------------------------------------------


class TestCorpusClean:
    def test_apps_and_examples_flow_clean(self):
        findings = flow_paths(
            [REPO / "src" / "repro" / "apps", REPO / "examples"]
        )
        assert findings == [], "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_text_reports_and_exits_1(self, capsys):
        assert check_main(["flow", str(FIXTURE)]) == 1
        captured = capsys.readouterr()
        for rule in FLOW_RULES:
            assert rule in captured.out
        assert "static skeleton:" in captured.err

    def test_json_single_file_includes_graph(self, capsys):
        assert check_main(["flow", str(FIXTURE), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert sorted({f["rule"] for f in doc["findings"]}) == FLOW_RULES
        graph = doc["graph"]
        assert graph["format"] == "repro.staticgraph"
        assert graph["tasks"] and graph["stream"]

    def test_dot_output(self, capsys):
        assert check_main(["flow", str(FIXTURE), "--format", "dot"]) == 1
        captured = capsys.readouterr()
        assert captured.out.startswith("digraph")
        assert "// " in captured.err  # findings ride along as comments

    def test_select_filters(self, capsys):
        assert check_main(
            ["flow", str(FIXTURE), "--select", "flow-dead-barrier"]
        ) == 1
        out = capsys.readouterr().out
        assert "flow-dead-barrier" in out
        assert "flow-missing-barrier" not in out

    def test_unknown_rule_is_usage_error(self):
        with pytest.raises(SystemExit):
            check_main(["flow", str(FIXTURE), "--select", "no-such-rule"])

    def test_entry_requires_single_file(self):
        with pytest.raises(SystemExit):
            check_main(["flow", str(FIXTURE), str(FIXTURE),
                        "--entry", "main"])

    def test_rules_catalogue_lists_flow_rules(self, capsys):
        assert check_main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule in FLOW_RULES:
            assert rule in out
