"""Tests for the section III scheduling policy."""

import pytest

from repro.core.scheduler import CentralQueueScheduler, SmpssScheduler
from repro.core.task import TaskDefinition, TaskInstance, TaskState, reset_task_ids


def make_tasks(count, high_priority=False):
    reset_task_ids()
    defn = TaskDefinition(func=lambda: None, params=(), name="t")
    return [
        TaskInstance(
            definition=defn, accesses=[], arguments={},
            high_priority=high_priority,
        )
        for _ in range(count)
    ]


def task(name="t", hp=False):
    defn = TaskDefinition(func=lambda: None, params=(), name=name)
    return TaskInstance(definition=defn, accesses=[], arguments={}, high_priority=hp)


class TestMainList:
    def test_new_tasks_fifo_from_main(self):
        s = SmpssScheduler(num_threads=2)
        tasks = make_tasks(3)
        for t in tasks:
            s.push_new(t)
        assert s.pop(0) is tasks[0]
        assert s.pop(1) is tasks[1]
        assert s.pop(0) is tasks[2]

    def test_pop_empty(self):
        s = SmpssScheduler(num_threads=2)
        assert s.pop(0) is None
        assert s.stats.failed_pops == 1


class TestHighPriority:
    def test_high_priority_first(self):
        s = SmpssScheduler(num_threads=2)
        normal = task("n")
        hp = task("h", hp=True)
        s.push_new(normal)
        s.push_new(hp)
        assert s.pop(0) is hp
        assert s.pop(0) is normal

    def test_high_priority_beats_own_list(self):
        s = SmpssScheduler(num_threads=2)
        own = task("own")
        s.push_unlocked(own, thread=1)
        hp = task("h", hp=True)
        s.push_new(hp)
        assert s.pop(1) is hp

    def test_unlocked_high_priority_goes_global(self):
        s = SmpssScheduler(num_threads=3)
        hp = task("h", hp=True)
        s.push_unlocked(hp, thread=2)
        # Any thread sees it first, not just thread 2.
        assert s.pop(1) is hp


class TestOwnListLifo:
    def test_own_list_lifo(self):
        """'Threads consume tasks from their own list in LIFO order.'"""

        s = SmpssScheduler(num_threads=2)
        a, b, c = task("a"), task("b"), task("c")
        for t in (a, b, c):
            s.push_unlocked(t, thread=1)
        assert s.pop(1) is c
        assert s.pop(1) is b
        assert s.pop(1) is a

    def test_own_before_main(self):
        s = SmpssScheduler(num_threads=2)
        main_task = task("main")
        own_task = task("own")
        s.push_new(main_task)
        s.push_unlocked(own_task, thread=1)
        assert s.pop(1) is own_task


class TestStealing:
    def test_steal_fifo(self):
        """'they steal from other threads in FIFO order' — the oldest."""

        s = SmpssScheduler(num_threads=2)
        a, b = task("a"), task("b")
        s.push_unlocked(a, thread=1)
        s.push_unlocked(b, thread=1)
        assert s.pop(0) is a  # stolen: FIFO end (victim pops LIFO end)
        assert s.stats.steals == 1

    def test_steal_order_creation_from_next(self):
        """'steal work from other threads in creation order starting
        from the next one.'"""

        s = SmpssScheduler(num_threads=4)
        v2, v3 = task("v2"), task("v3")
        s.push_unlocked(v2, thread=2)
        s.push_unlocked(v3, thread=3)
        # Thread 1 starts its scan at thread 2.
        assert s.pop(1) is v2
        # Thread 1 again: thread 2 empty now, wraps to 3.
        assert s.pop(1) is v3

    def test_steal_wraps_around(self):
        s = SmpssScheduler(num_threads=3)
        v0 = task("v0")
        s.push_unlocked(v0, thread=0)
        assert s.pop(2) is v0  # 2 -> scan 0, 1

    def test_no_self_steal_double_pop(self):
        s = SmpssScheduler(num_threads=2)
        a = task("a")
        s.push_unlocked(a, thread=1)
        assert s.pop(1) is a
        assert s.pop(1) is None


class TestAccounting:
    def test_ready_count(self):
        s = SmpssScheduler(num_threads=2)
        tasks = [task() for _ in range(3)]
        for t in tasks:
            s.push_new(t)
        assert s.ready_count == 3
        s.pop(0)
        assert s.ready_count == 2
        assert s.has_ready()

    def test_state_transitions(self):
        s = SmpssScheduler(num_threads=1)
        t = task()
        s.push_new(t)
        assert t.state is TaskState.READY
        s.pop(0)
        assert t.state is TaskState.RUNNING

    def test_needs_main_thread(self):
        with pytest.raises(ValueError):
            SmpssScheduler(num_threads=0)


class TestCentralQueue:
    """The CellSs/SuperMatrix-style ablation scheduler (section VII)."""

    def test_global_fifo(self):
        s = CentralQueueScheduler(num_threads=4)
        a, b = task("a"), task("b")
        s.push_unlocked(a, thread=2)
        s.push_unlocked(b, thread=3)
        # No per-thread affinity: everyone sees FIFO order.
        assert s.pop(1) is a
        assert s.pop(2) is b

    def test_high_priority(self):
        s = CentralQueueScheduler(num_threads=2)
        n, h = task("n"), task("h", hp=True)
        s.push_new(n)
        s.push_new(h)
        assert s.pop(0) is h

    def test_counts(self):
        s = CentralQueueScheduler(num_threads=2)
        s.push_new(task())
        assert s.has_ready()
        s.pop(0)
        assert not s.has_ready()
        assert s.pop(0) is None
