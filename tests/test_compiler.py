"""Tests for the source-to-source translator."""

import textwrap

import numpy as np
import pytest

from repro import SmpssRuntime
from repro.compiler import (
    CompileError,
    compile_annotated,
    load_annotated_module,
    translate_source,
)


SIMPLE = textwrap.dedent(
    """\
    import numpy as np

    #pragma css task input(a, b) inout(c)
    def sgemm_t(a, b, c):
        c += a @ b

    def run(a, b, c):
        sgemm_t(a, b, c)
        #pragma css barrier
        return c
    """
)


class TestTranslation:
    def test_task_pragma_becomes_decorator(self):
        out = translate_source(SIMPLE)
        assert '@__css_task__("input(a, b) inout(c)")' in out
        assert "#pragma css task" not in out

    def test_barrier_pragma_becomes_call(self):
        out = translate_source(SIMPLE)
        assert "    __css_barrier__()" in out

    def test_prelude_is_single_line(self):
        out = translate_source(SIMPLE)
        prelude, rest = out.split("\n", 1)
        assert "__css_task__" in prelude
        assert rest.splitlines()[0] == "import numpy as np"

    def test_line_count_preserved_plus_prelude(self):
        out = translate_source(SIMPLE)
        assert len(out.split("\n")) == len(SIMPLE.split("\n")) + 1

    def test_wait_on(self):
        src = "#pragma css wait on(result)\n"
        out = translate_source(src)
        assert "__css_wait_on__(result)" in out

    def test_start_finish_are_noops(self):
        src = "#pragma css start\nx = 1\n#pragma css finish\n"
        out = translate_source(src)
        assert "x = 1" in out
        assert "no-op" in out

    def test_continuation_lines(self):
        src = textwrap.dedent(
            """\
            #pragma css task input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) \\
            # output(dest{i1..j2})
            def seqmerge(data, i1, j1, i2, j2, dest):
                pass
            """
        )
        out = translate_source(src)
        assert "output(dest{i1..j2})" in out
        # Continuation line replaced by a blank to keep numbering.
        assert len(out.split("\n")) == len(src.split("\n")) + 1

    def test_indented_task(self):
        src = textwrap.dedent(
            """\
            class Holder:
                #pragma css task inout(a)
                def bump(a):
                    a += 1
            """
        )
        out = translate_source(src)
        assert '    @__css_task__("inout(a)")' in out


class TestErrors:
    def test_invalid_clause_reports_line(self):
        src = "x = 1\n#pragma css task banana(a)\ndef f(a):\n    pass\n"
        with pytest.raises(CompileError, match=":2:"):
            translate_source(src)

    def test_task_without_def(self):
        src = "#pragma css task input(a)\nx = 1\n"
        with pytest.raises(CompileError, match="function definition"):
            translate_source(src)

    def test_task_with_wrong_indent_def(self):
        src = "#pragma css task input(a)\nif True:\n    def f(a):\n        pass\n"
        with pytest.raises(CompileError):
            translate_source(src)

    def test_barrier_with_arguments(self):
        with pytest.raises(CompileError, match="no arguments"):
            translate_source("#pragma css barrier now\n")

    def test_bad_wait(self):
        with pytest.raises(CompileError, match="wait on"):
            translate_source("#pragma css wait for(x)\n")

    def test_dangling_continuation(self):
        with pytest.raises(CompileError, match="continuation"):
            translate_source("#pragma css task input(a) \\")


class TestExecution:
    def test_compiled_module_runs_sequentially(self):
        module = compile_annotated(SIMPLE, "seq_prog")
        a = np.ones((4, 4))
        b = np.ones((4, 4))
        c = np.zeros((4, 4))
        module.run(a, b, c)
        assert (c == 4.0).all()

    def test_compiled_module_runs_in_parallel(self):
        module = compile_annotated(SIMPLE, "par_prog")
        a = np.ones((4, 4))
        b = np.ones((4, 4))
        c = np.zeros((4, 4))
        with SmpssRuntime(num_workers=2):
            module.run(a, b, c)  # the barrier pragma synchronises
        assert (c == 4.0).all()

    def test_annotated_cholesky_program(self):
        """A realistic annotated program: Figure 4 as comments only."""

        src = textwrap.dedent(
            """\
            import numpy as np
            import scipy.linalg as sla

            #pragma css task input(a, b) inout(c)
            def gemm_t(a, b, c):
                c -= a @ b.T

            #pragma css task input(a) inout(b)
            def syrk_t(a, b):
                b -= a @ a.T

            #pragma css task inout(a)
            def potrf_t(a):
                a[...] = sla.cholesky(a, lower=True)

            #pragma css task input(a) inout(b)
            def trsm_t(a, b):
                b[...] = sla.solve_triangular(a, b.T, lower=True).T

            def cholesky(A, N):
                for j in range(N):
                    for k in range(j):
                        for i in range(j + 1, N):
                            gemm_t(A[i][k], A[j][k], A[i][j])
                    for i in range(j):
                        syrk_t(A[j][i], A[j][j])
                    potrf_t(A[j][j])
                    for i in range(j + 1, N):
                        trsm_t(A[j][j], A[i][j])
                #pragma css barrier
            """
        )
        module = compile_annotated(src, "annotated_cholesky")
        n_blocks, m = 4, 8
        size = n_blocks * m
        rng = np.random.default_rng(0)
        x = rng.standard_normal((size, size))
        spd = x @ x.T + size * np.eye(size)
        blocks = [
            [np.array(spd[i * m:(i + 1) * m, j * m:(j + 1) * m])
             for j in range(n_blocks)]
            for i in range(n_blocks)
        ]
        import scipy.linalg as sla

        with SmpssRuntime(num_workers=3):
            module.cholesky(blocks, n_blocks)
        lower = np.zeros((size, size))
        for i in range(n_blocks):
            for j in range(i + 1):
                piece = blocks[i][j]
                lower[i * m:(i + 1) * m, j * m:(j + 1) * m] = (
                    np.tril(piece) if i == j else piece
                )
        assert np.allclose(lower, sla.cholesky(spd, lower=True), atol=1e-8)

    def test_wait_on_execution(self):
        src = textwrap.dedent(
            """\
            import numpy as np

            #pragma css task inout(a)
            def bump(a):
                a += 1

            def run(a):
                bump(a)
                #pragma css wait on(a)
                latest = __css_wait_on__(a)
                return float(latest[0])
            """
        )
        module = compile_annotated(src, "wait_prog")
        a = np.zeros(1)
        with SmpssRuntime(num_workers=2):
            value = module.run(a)
        assert value == 1.0

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "prog.py"
        path.write_text(SIMPLE)
        module = load_annotated_module(str(path))
        a = np.ones((2, 2))
        c = np.zeros((2, 2))
        module.run(a, a, c)
        assert (c == 2.0).all()

    def test_cli_translate(self, tmp_path, capsys):
        from repro.compiler.__main__ import main

        path = tmp_path / "prog.py"
        path.write_text(SIMPLE)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "@__css_task__" in out

    def test_cli_output_file(self, tmp_path):
        from repro.compiler.__main__ import main

        src = tmp_path / "prog.py"
        src.write_text(SIMPLE)
        dst = tmp_path / "out.py"
        assert main([str(src), "-o", str(dst)]) == 0
        assert "@__css_task__" in dst.read_text()

    def test_cli_error_reporting(self, tmp_path, capsys):
        from repro.compiler.__main__ import main

        path = tmp_path / "bad.py"
        path.write_text("#pragma css task nope(a)\ndef f(a):\n    pass\n")
        assert main([str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestCliErrorPaths:
    """``python -m repro.compiler`` must fail like a compiler: exit
    code 1, message on stderr, and a faithful file:line location."""

    def _main(self):
        from repro.compiler.__main__ import main

        return main

    def test_malformed_pragma_exit_code_and_line(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(
            "x = 1\n"
            "y = 2\n"
            "#pragma css task banana(a)\n"
            "def f(a):\n"
            "    pass\n"
        )
        assert self._main()([str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert f"{path}:3:" in err  # the pragma's own line

    def test_continuation_error_reports_first_pragma_line(self, tmp_path, capsys):
        # A clause error inside a continued pragma must point at the
        # line the pragma *starts* on, not the continuation line.
        path = tmp_path / "cont.py"
        path.write_text(
            "#pragma css task input(a) \\\n"
            "# banana(b)\n"
            "def f(a, b):\n"
            "    pass\n"
        )
        assert self._main()([str(path)]) == 1
        err = capsys.readouterr().err
        assert f"{path}:1:" in err
        assert "banana" in err

    def test_dangling_continuation_exit_code(self, tmp_path, capsys):
        path = tmp_path / "dangle.py"
        path.write_text("#pragma css task input(a) \\\n")
        assert self._main()([str(path)]) == 1
        assert "continuation" in capsys.readouterr().err

    def test_task_without_def_location(self, tmp_path, capsys):
        path = tmp_path / "nodef.py"
        path.write_text("x = 0\n#pragma css task input(a)\nx = 1\n")
        assert self._main()([str(path)]) == 1
        err = capsys.readouterr().err
        assert f"{path}:2:" in err
        assert "function definition" in err

    def test_run_mode_reports_compile_errors(self, tmp_path, capsys):
        path = tmp_path / "bad_run.py"
        path.write_text("#pragma css barrier now\n")
        assert self._main()([str(path), "--run"]) == 1
        assert "no arguments" in capsys.readouterr().err

    def test_error_line_survives_blank_and_comment_lines(self, tmp_path, capsys):
        # Decorator lines and comments between pragma and def are legal;
        # the reported line must still be the pragma's.
        path = tmp_path / "deco.py"
        path.write_text(
            "\n"
            "# a comment\n"
            "\n"
            "#pragma css task input(a{1..)\n"
            "def f(a):\n"
            "    pass\n"
        )
        assert self._main()([str(path)]) == 1
        assert f"{path}:4:" in capsys.readouterr().err


class TestIterTaskPragmas:
    def test_payloads_and_lines(self):
        from repro.compiler import iter_task_pragmas

        source = (
            "x = 1\n"
            "#pragma css task input(a)\n"
            "def f(a):\n"
            "    pass\n"
            "#pragma css barrier\n"
            "#pragma css task inout(b)\n"
            "@decorated\n"
            "def g(b):\n"
            "    pass\n"
        )
        found = list(iter_task_pragmas(source))
        assert found == [
            ("input(a)", 2, 3),
            ("inout(b)", 6, 8),
        ]

    def test_continuation_payload_merged(self):
        from repro.compiler import iter_task_pragmas

        source = (
            "#pragma css task input(a) \\\n"
            "# inout(b)\n"
            "def f(a, b):\n"
            "    pass\n"
        )
        ((payload, pragma_line, def_line),) = iter_task_pragmas(source)
        assert payload == "input(a) inout(b)"
        assert (pragma_line, def_line) == (1, 3)

    def test_missing_def_yields_none(self):
        from repro.compiler import iter_task_pragmas

        ((_, _, def_line),) = iter_task_pragmas("#pragma css task input(a)\n")
        assert def_line is None
