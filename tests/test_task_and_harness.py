"""Unit tests for the task model and the figure-result harness."""

import pytest

from repro.bench.harness import FigureResult, Series
from repro.core.pragma import parse_pragma
from repro.core.task import (
    Direction,
    InvocationError,
    TaskDefinition,
    TaskInstance,
    TaskState,
    reset_task_ids,
)


class TestDirections:
    def test_reads_writes_matrix(self):
        assert Direction.INPUT.reads and not Direction.INPUT.writes
        assert Direction.OUTPUT.writes and not Direction.OUTPUT.reads
        assert Direction.INOUT.reads and Direction.INOUT.writes
        assert not Direction.OPAQUE.reads and not Direction.OPAQUE.writes


class TestTaskDefinition:
    def _definition(self, pragma="input(a) inout(b)"):
        def f(a, b, n=7):  # noqa: ARG001
            pass

        return TaskDefinition(func=f, params=parse_pragma(pragma).params)

    def test_name_from_function(self):
        assert self._definition().name == "f"

    def test_param_names_cached(self):
        defn = self._definition()
        assert defn.param_names == ("a", "b", "n")
        assert defn.positions == {"a": 0, "b": 1, "n": 2}

    def test_fast_bind_positional(self):
        defn = self._definition()
        assert defn.bind_dict((1, 2, 3), {}) == {"a": 1, "b": 2, "n": 3}

    def test_slow_bind_with_defaults(self):
        defn = self._definition()
        assert defn.bind_dict((1, 2), {}) == {"a": 1, "b": 2, "n": 7}

    def test_slow_bind_keywords(self):
        defn = self._definition()
        assert defn.bind_dict((), {"b": 2, "a": 1}) == {"a": 1, "b": 2, "n": 7}

    def test_bind_error_names_task(self):
        defn = self._definition()
        with pytest.raises(InvocationError, match="'f'"):
            defn.bind_dict((), {"zzz": 1})

    def test_declared_direction(self):
        defn = self._definition()
        assert defn.declared_direction("a") is Direction.INPUT
        assert defn.declared_direction("b") is Direction.INOUT
        assert defn.declared_direction("n") is None

    def test_needs_expressions_flag(self):
        assert not self._definition().needs_expressions

        def g(a, i, j):  # noqa: ARG001
            pass

        with_regions = TaskDefinition(
            func=g, params=parse_pragma("inout(a{i..j}) input(i, j)").params
        )
        assert with_regions.needs_expressions


class TestTaskInstance:
    def test_id_sequence(self):
        reset_task_ids()
        defn = TaskDefinition(func=lambda: None, params=(), name="x")
        a = TaskInstance(definition=defn, accesses=[], arguments={})
        b = TaskInstance(definition=defn, accesses=[], arguments={})
        assert (a.task_id, b.task_id) == (1, 2)

    def test_initial_state(self):
        defn = TaskDefinition(func=lambda: None, params=(), name="x")
        t = TaskInstance(definition=defn, accesses=[], arguments={})
        assert t.state is TaskState.BLOCKED
        assert t.is_ready  # no deps and still blocked

    def test_identity_semantics(self):
        defn = TaskDefinition(func=lambda: None, params=(), name="x")
        a = TaskInstance(definition=defn, accesses=[], arguments={})
        b = TaskInstance(definition=defn, accesses=[], arguments={})
        assert a == a and a != b
        assert len({a, b}) == 2


class TestFigureResult:
    def _figure(self):
        fig = FigureResult(
            "Figure T", "test", "threads", "Gflops", [1, 2, 4]
        )
        fig.add("A", [1.0, 2.0, 4.0])
        fig.add("B", [0.5, 1.0, 1.5])
        return fig

    def test_series_lookup(self):
        fig = self._figure()
        assert fig.get("A").values == [1.0, 2.0, 4.0]
        with pytest.raises(KeyError):
            fig.get("missing")

    def test_series_length_checked(self):
        fig = self._figure()
        with pytest.raises(ValueError):
            fig.add("C", [1.0])

    def test_table_contains_everything(self):
        fig = self._figure()
        fig.notes.append("a note")
        text = fig.table()
        assert "Figure T" in text
        assert "threads" in text and "A" in text and "B" in text
        assert "a note" in text
        assert "4.00" in text

    def test_ascii_chart(self):
        art = self._figure().ascii_chart(height=8, width=20)
        assert "*" in art and "o" in art
        assert "A" in art and "B" in art

    def test_empty_chart(self):
        fig = FigureResult("F", "t", "x", "y", [])
        assert "empty" in fig.ascii_chart()

    def test_series_at(self):
        fig = self._figure()
        series = fig.get("A")
        assert series.at(fig.x, 4) == 4.0
