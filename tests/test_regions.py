"""Tests for array regions (section V.A) — geometry and properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core.regions import FULL_DIM, Region, RegionError


class TestConstruction:
    def test_valid(self):
        r = Region(((0, 5), (3, 3)))
        assert r.ndim == 2

    def test_empty_interval_rejected(self):
        with pytest.raises(RegionError, match="empty interval"):
            Region(((5, 4),))

    def test_negative_lower_rejected(self):
        with pytest.raises(RegionError, match="negative"):
            Region(((-1, 4),))

    def test_full_sentinel_allowed(self):
        r = Region((FULL_DIM,))
        assert r.is_full

    def test_from_slice(self):
        assert Region.from_slice(3, 7).intervals == ((3, 6),)
        with pytest.raises(RegionError):
            Region.from_slice(3, 3)

    def test_full_factory(self):
        assert Region.full(3).ndim == 3
        assert Region.full(3).is_full


class TestOverlap:
    def test_disjoint_1d(self):
        assert not Region(((0, 4),)).overlaps(Region(((5, 9),)))

    def test_adjacent_touching(self):
        # Inclusive bounds: {0..4} and {4..8} share element 4.
        assert Region(((0, 4),)).overlaps(Region(((4, 8),)))

    def test_2d_disjoint_rows_same_cols(self):
        a = Region(((0, 3), (0, 9)))
        b = Region(((4, 7), (0, 9)))
        assert not a.overlaps(b)

    def test_2d_corner_overlap(self):
        a = Region(((0, 5), (0, 5)))
        b = Region(((5, 9), (5, 9)))
        assert a.overlaps(b)

    def test_full_overlaps_everything(self):
        assert Region.full(1).overlaps(Region(((100, 200),)))

    def test_rank_mismatch_is_conservative(self):
        assert Region(((0, 1),)).overlaps(Region(((5, 6), (0, 1))))

    def test_symmetry(self):
        a = Region(((0, 5), (2, 4)))
        b = Region(((3, 8), (4, 9)))
        assert a.overlaps(b) == b.overlaps(a)


class TestContainment:
    def test_contains(self):
        assert Region(((0, 9),)).contains(Region(((2, 5),)))
        assert not Region(((2, 5),)).contains(Region(((0, 9),)))

    def test_full_contains_all(self):
        assert Region.full(1).contains(Region(((3, 7),)))
        assert not Region(((3, 7),)).contains(Region.full(1))

    def test_self_containment(self):
        r = Region(((2, 5), (1, 1)))
        assert r.contains(r)


class TestIntersection:
    def test_basic(self):
        a = Region(((0, 5),))
        b = Region(((3, 9),))
        assert a.intersection(b) == Region(((3, 5),))

    def test_disjoint_returns_none(self):
        assert Region(((0, 2),)).intersection(Region(((3, 4),))) is None

    def test_with_full(self):
        assert Region.full(1).intersection(Region(((3, 4),))) == Region(((3, 4),))


class TestConversions:
    def test_to_slices(self):
        r = Region(((2, 4), FULL_DIM))
        assert r.to_slices() == (slice(2, 5), slice(None))

    def test_resolved_against(self):
        r = Region((FULL_DIM, (1, 3)))
        assert r.resolved_against((10, 5)).intervals == ((0, 9), (1, 3))

    def test_resolution_bound_check(self):
        with pytest.raises(RegionError, match="exceeds"):
            Region(((0, 10),)).resolved_against((5,))

    def test_element_count(self):
        assert Region(((0, 4), (0, 1))).element_count() == 10
        assert Region((FULL_DIM,)).element_count() is None


# ---------------------------------------------------------------------------
# Property-based: region algebra invariants
# ---------------------------------------------------------------------------

interval = st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
    lambda t: (min(t), max(t))
)
region_1d = interval.map(lambda iv: Region((iv,)))
region_2d = st.tuples(interval, interval).map(lambda t: Region(t))


@given(region_2d, region_2d)
def test_overlap_iff_intersection(a, b):
    assert a.overlaps(b) == (a.intersection(b) is not None)


@given(region_2d, region_2d)
def test_intersection_contained_in_both(a, b):
    inter = a.intersection(b)
    if inter is not None:
        assert a.contains(inter)
        assert b.contains(inter)


@given(region_2d, region_2d)
def test_containment_implies_overlap(a, b):
    if a.contains(b):
        assert a.overlaps(b)


@given(region_2d, region_2d, region_2d)
def test_intersection_associative(a, b, c):
    def inter3(x, y, z):
        xy = x.intersection(y)
        return None if xy is None else xy.intersection(z)

    left = inter3(a, b, c)
    right_bc = b.intersection(c)
    right = None if right_bc is None else a.intersection(right_bc)
    assert left == right


@given(region_1d)
def test_element_count_matches_slices(r):
    (lo, hi), = r.intervals
    assert r.element_count() == hi - lo + 1
    sl = r.to_slices()[0]
    assert sl.stop - sl.start == r.element_count()
