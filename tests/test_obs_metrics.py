"""Tests for repro.obs.metrics and its runtime integration."""

import json

import numpy as np
import pytest

from repro import SmpssRuntime, css_task
from repro.obs import MetricsRegistry, default_metrics, reset_default_metrics
from repro.obs.metrics import CounterMetric, GaugeMetric, HistogramMetric

pytestmark = pytest.mark.obs


@css_task("inout(a)")
def bump(a):
    a += 1


class TestMetricPrimitives:
    def test_counter(self):
        registry = MetricsRegistry()
        c = registry.counter("requests")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert registry.counter("requests") is c  # same object back

    def test_gauge(self):
        g = MetricsRegistry().gauge("depth")
        g.set(7)
        g.inc(2)
        g.dec()
        assert g.value == 8

    def test_histogram_stats_and_buckets(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0.5, 1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 7.5
        assert h.min == 0.5 and h.max == 4.0
        assert h.mean == pytest.approx(1.875)
        snap = h.snapshot()
        # frexp exponents: 0.5->0, 1.0->1, 2.0->2, 4.0->3
        assert sum(snap["buckets"].values()) == 4

    def test_histogram_underflow_bucket(self):
        h = MetricsRegistry().histogram("delta")
        h.observe(0.0)
        h.observe(-1.0)
        assert h.snapshot()["buckets"] == {"underflow": 2}

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        a = registry.counter("tasks", type="gemm")
        b = registry.counter("tasks", type="trsm")
        assert a is not b
        a.inc(3)
        snap = registry.snapshot()
        assert snap["tasks"]["type=gemm"] == 3
        assert snap["tasks"]["type=trsm"] == 0

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        with registry.timer("op_seconds"):
            pass
        h = registry.histogram("op_seconds")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g", thread=1).set(2.5)
        registry.histogram("h").observe(3.0)
        parsed = json.loads(registry.to_json())
        assert parsed["c"] == 1
        assert parsed["g"]["thread=1"] == 2.5
        assert parsed["h"]["count"] == 1


class TestAbsorb:
    def test_counters_add_gauges_overwrite_histograms_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        a.absorb(b)
        assert a.counter("n").value == 5
        assert a.gauge("g").value == 9
        h = a.histogram("h")
        assert h.count == 2 and h.sum == 4.0 and h.max == 3.0

    def test_runtime_publishes_to_default_registry(self):
        registry = reset_default_metrics()
        arr = np.zeros(1)
        with SmpssRuntime(num_workers=1) as rt:
            bump(arr)
            rt.barrier()
        assert default_metrics() is registry
        snap = registry.snapshot()
        assert snap["tasks_executed"] == 1
        assert snap["task_duration_seconds"]["task=bump"]["count"] == 1
        reset_default_metrics()


class TestRuntimeIntegration:
    def _run(self, tasks=8, **kwargs):
        arr = np.zeros(1)
        rt = SmpssRuntime(num_workers=2, **kwargs)
        with rt:
            for _ in range(tasks):
                bump(arr)
            rt.barrier()
        return rt

    def test_task_duration_histogram_counts_every_task(self):
        rt = self._run(tasks=10)
        hist = rt.metrics.histogram("task_duration_seconds", task="bump")
        assert hist.count == 10
        assert hist.sum > 0

    def test_analysis_and_barrier_overhead_recorded(self):
        rt = self._run(tasks=5)
        assert rt.metrics.histogram("analysis_seconds").count == 5
        # One explicit barrier + one implicit at shutdown.
        assert rt.metrics.histogram("barrier_wait_seconds").count == 2

    def test_ready_queue_depth_observed(self):
        rt = self._run(tasks=6)
        assert rt.metrics.histogram("ready_queue_depth").count == 6

    def test_scheduler_stats_exposed_through_registry(self):
        rt = self._run(tasks=6)
        snap = rt.stats()["metrics"]
        total_pops = (
            snap["scheduler.pops_high"]
            + snap["scheduler.pops_local"]
            + snap["scheduler.pops_main"]
        )
        assert total_pops == 6
        assert "scheduler.failed_steals" in snap
        # Per-thread breakdown present and consistent with the total.
        per_thread = snap.get("scheduler.pops_by_thread", {})
        assert sum(per_thread.values()) == 6

    def test_metrics_disabled_stays_quiet(self):
        rt = self._run(tasks=4, metrics=False)
        assert rt.metrics.histogram("task_duration_seconds", task="bump").count == 0
        assert rt.metrics.histogram("analysis_seconds").count == 0

    def test_renaming_footprint_gauges(self):
        src = np.zeros(4)
        outs = [np.zeros(4) for _ in range(3)]

        @css_task("input(a) output(b)")
        def snapshot(a, b):
            b[...] = a

        rt = SmpssRuntime(num_workers=2)
        with rt:
            for out in outs:
                snapshot(src, out)
                bump(src)
            rt.barrier()
        snap = rt.metrics.snapshot()
        assert snap["graph.renames"] >= 1
        assert "renaming.total_buffers" in snap


class TestSchedulerStatsSatellite:
    def test_failed_steals_and_per_thread_counters(self):
        from repro.core.scheduler import SmpssScheduler
        from repro.core.task import TaskDefinition, TaskInstance, reset_task_ids

        reset_task_ids()
        defn = TaskDefinition(func=lambda: None, params=(), name="t")
        s = SmpssScheduler(num_threads=4)
        # Pop on empty: fast path counts a failed pop AND failed steal.
        assert s.pop(2) is None
        assert s.stats.failed_pops == 1
        assert s.stats.failed_steals == 1
        assert s.stats.failed_pops_by_thread[2] == 1
        # Steal: task pushed to thread 1's list, popped by thread 3.
        task = TaskInstance(definition=defn, accesses=[], arguments={})
        s.push_unlocked(task, thread=1)
        assert s.pop(3) is task
        assert s.stats.steals == 1
        assert s.stats.steals_by_thief[3] == 1
        assert s.stats.steals_by_victim[1] == 1
        assert s.stats.pops_by_thread[3] == 1

    def test_as_dict_roundtrips_into_registry(self):
        from repro.core.scheduler import SmpssScheduler

        s = SmpssScheduler(num_threads=2)
        s.pop(0)
        registry = MetricsRegistry()
        registry.ingest_scheduler_stats(s.stats)
        snap = registry.snapshot()
        assert snap["scheduler.failed_pops"] == 1
        assert snap["scheduler.failed_pops_by_thread"]["thread=0"] == 1


class TestHistogramQuantile:
    def test_exact_before_folding(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.5) == 50.0
        assert h.quantile(0.95) == 95.0
        assert h.quantile(0.99) == 99.0
        assert h.quantile(0.0) == 1.0   # nearest-rank: rank clamps to 1
        assert h.quantile(1.0) == 100.0

    def test_empty_returns_none(self):
        h = MetricsRegistry().histogram("lat")
        assert h.quantile(0.5) is None

    def test_out_of_range_raises(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        with pytest.raises(ValueError, match="quantile q"):
            h.quantile(1.5)
        with pytest.raises(ValueError, match="quantile q"):
            h.quantile(-0.1)

    def test_single_observation(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(3.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 3.25

    def test_after_folding_within_bucket_bound(self):
        h = MetricsRegistry().histogram("lat")
        n = HistogramMetric._FOLD_AT + 100  # force at least one fold
        for v in range(1, n + 1):
            h.observe(float(v))
        assert h._count > 0  # something actually folded
        true_p50 = n // 2
        estimate = h.quantile(0.5)
        # Folded buckets answer at their upper power-of-two bound:
        # conservative, but never more than 2x the true value.
        assert true_p50 <= estimate <= 2 * true_p50

    def test_quantile_does_not_fold(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        before = list(h._raw)
        h.quantile(0.95)
        assert list(h._raw) == before

    def test_underflow_bucket_counts_at_zero(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.0)
        h.observe(8.0)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 8.0


def test_metric_classes_exported():
    assert all(
        cls.__name__ in dir(__import__("repro.obs", fromlist=["obs"]))
        for cls in (CounterMetric, GaugeMetric, HistogramMetric)
    )
