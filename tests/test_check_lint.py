"""Tests for the repro.check static layer (the annotation linter)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check import (
    ERROR,
    RULES,
    WARNING,
    filter_findings,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.check.__main__ import main as check_main

pytestmark = pytest.mark.check

REPO = Path(__file__).resolve().parent.parent
FIXTURE = Path(__file__).resolve().parent / "fixtures" / "misannotated.py"


def rules_of(findings):
    return [f.rule for f in findings]


def lint_snippet(body: str, **kwargs):
    return lint_source(
        "from repro.core.api import css_task\n" + body, "<snippet>", **kwargs
    )


# ---------------------------------------------------------------------------
# one test per rule code
# ---------------------------------------------------------------------------


class TestRules:
    def test_input_write(self):
        findings = lint_snippet(
            "@css_task('input(a) output(b)')\n"
            "def f(a, b):\n"
            "    a[0] = 1.0\n"
            "    b[:] = a\n"
        )
        assert rules_of(findings) == ["input-write"]
        f = findings[0]
        assert f.severity == ERROR
        assert f.task == "f"
        assert f.param == "a"
        assert f.line == 4  # the write site, not the def

    def test_input_write_augassign(self):
        findings = lint_snippet(
            "@css_task('input(a) output(b)')\n"
            "def f(a, b):\n"
            "    a += 1\n"
            "    b[:] = a\n"
        )
        assert rules_of(findings) == ["input-write"]

    def test_input_write_mutating_method(self):
        findings = lint_snippet(
            "@css_task('input(a) output(b)')\n"
            "def f(a, b):\n"
            "    a.sort()\n"
            "    b[:] = a\n"
        )
        assert rules_of(findings) == ["input-write"]

    def test_undeclared_mutation(self):
        findings = lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a, scratch):\n"
            "    scratch[0] = a[0]\n"
        )
        assert rules_of(findings) == ["undeclared-mutation"]
        assert findings[0].param == "scratch"
        assert findings[0].severity == ERROR

    def test_unwritten_output(self):
        findings = lint_snippet(
            "@css_task('input(a) output(b)')\n"
            "def f(a, b):\n"
            "    return a.sum()\n"
        )
        assert rules_of(findings) == ["unwritten-output"]
        assert findings[0].param == "b"
        assert findings[0].severity == WARNING

    def test_unwritten_output_suppressed_by_escape(self):
        # b passed to an unknown call: it may be written there, so the
        # linter must stay quiet (zero-false-positive policy).
        findings = lint_snippet(
            "import numpy as np\n"
            "@css_task('input(a) output(b)')\n"
            "def f(a, b):\n"
            "    np.matmul(a, a, out=b)\n"
        )
        assert findings == []

    def test_read_before_write(self):
        findings = lint_snippet(
            "@css_task('input(a) output(c)')\n"
            "def f(a, c):\n"
            "    t = c[0]\n"
            "    c[0] = t + a[0]\n"
        )
        assert rules_of(findings) == ["read-before-write"]
        assert findings[0].param == "c"

    def test_read_before_write_not_for_inout(self):
        findings = lint_snippet(
            "@css_task('input(a) inout(c)')\n"
            "def f(a, c):\n"
            "    c += a\n"
        )
        assert findings == []

    def test_metadata_read_is_not_a_read(self):
        # a.shape[0] before the first write must not trip the rule
        # (get_block_t in the apps does exactly this).
        findings = lint_snippet(
            "@css_task('output(c) input(n)')\n"
            "def f(c, n):\n"
            "    m = c.shape[0]\n"
            "    c[:] = m * n\n"
        )
        assert findings == []

    def test_global_mutation(self):
        findings = lint_snippet(
            "STATE = [0]\n"
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    STATE[0] = a[0]\n"
        )
        assert rules_of(findings) == ["global-mutation"]
        assert findings[0].severity == WARNING

    def test_local_shadowing_is_fine(self):
        findings = lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    buf = [0]\n"
            "    buf[0] = a[0]\n"
        )
        assert findings == []

    def test_unknown_region_name(self):
        findings = lint_snippet(
            "@css_task('output(v{0..K}) input(n)')\n"
            "def f(v, n):\n"
            "    v[:] = n\n"
        )
        assert rules_of(findings) == ["unknown-region-name"]
        assert findings[0].severity == ERROR

    def test_region_name_from_constants_kwarg(self):
        findings = lint_snippet(
            "@css_task('output(v{0..K}) input(n)', constants={'K': 7})\n"
            "def f(v, n):\n"
            "    v[:] = n\n"
        )
        assert findings == []

    def test_region_name_from_cli_constants(self):
        findings = lint_snippet(
            "@css_task('output(v{0..K}) input(n)')\n"
            "def f(v, n):\n"
            "    v[:] = n\n",
            constants=["K"],
        )
        assert findings == []

    def test_opaque_leak(self):
        findings = lint_snippet(
            "@css_task('input(src) output(dst)')\n"
            "def copy(src, dst):\n"
            "    dst[:] = src\n"
            "@css_task('opaque(h) output(dst)')\n"
            "def outer(h, dst):\n"
            "    copy(h, dst)\n"
        )
        assert rules_of(findings) == ["opaque-leak"]
        assert findings[0].param == "h"

    def test_opaque_to_opaque_is_fine(self):
        findings = lint_snippet(
            "@css_task('opaque(p) inout(x)')\n"
            "def inner(p, x):\n"
            "    x += 1\n"
            "@css_task('opaque(h) inout(x)')\n"
            "def outer(h, x):\n"
            "    inner(h, x)\n"
        )
        assert findings == []

    def test_bad_pragma_phantom_param(self):
        findings = lint_snippet(
            "@css_task('input(a) output(q)')\n"
            "def f(a, b):\n"
            "    b[:] = a\n"
        )
        assert "bad-pragma" in rules_of(findings)
        bad = [f for f in findings if f.rule == "bad-pragma"][0]
        assert "'q'" in bad.message
        assert bad.severity == ERROR

    def test_bad_pragma_unparsable(self):
        findings = lint_snippet(
            "@css_task('banana(a)')\n"
            "def f(a):\n"
            "    return a\n"
        )
        assert rules_of(findings) == ["bad-pragma"]

    def test_bad_pragma_comment_without_def(self):
        findings = lint_source(
            "# pragma css task input(a)\n"
            "x = 1\n",
            "<snippet>",
        )
        assert rules_of(findings) == ["bad-pragma"]
        assert findings[0].line == 1

    def test_comment_pragma_task_is_linted(self):
        findings = lint_source(
            "# pragma css task input(v)\n"
            "def negate(v):\n"
            "    v[:] = -v\n",
            "<snippet>",
        )
        assert rules_of(findings) == ["input-write"]
        assert findings[0].task == "negate"

    def test_syntax_error_is_one_bad_pragma(self):
        findings = lint_source("def f(:\n", "<snippet>")
        assert rules_of(findings) == ["bad-pragma"]


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_on_finding_line(self):
        findings = lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    a[0] = 1.0  # css: ignore[input-write]\n"
        )
        assert findings == []

    def test_bare_ignore_suppresses_all(self):
        findings = lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    a[0] = 1.0  # css: ignore\n"
        )
        assert findings == []

    def test_wrong_rule_does_not_suppress(self):
        findings = lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    a[0] = 1.0  # css: ignore[unwritten-output]\n"
        )
        assert rules_of(findings) == ["input-write"]

    def test_on_decorator_line_scopes_whole_task(self):
        findings = lint_snippet(
            "@css_task('input(a) output(b)')  # css: ignore[unwritten-output]\n"
            "def f(a, b):\n"
            "    return a.sum()\n"
        )
        assert findings == []


# ---------------------------------------------------------------------------
# binding-form hardening: walrus, match patterns, starred targets
# ---------------------------------------------------------------------------


class TestBindingForms:
    def test_walrus_rebind_is_not_a_param_write(self):
        # `a := ...` rebinds the local name; the subsequent item write
        # lands on the new object, not the input argument.
        findings = lint_snippet(
            "@css_task('input(a) input(n)')\n"
            "def f(a, n):\n"
            "    if (a := n * 2):\n"
            "        a[0] = 1.0\n"
        )
        assert findings == []

    def test_walrus_rebind_of_output_never_reaches_caller(self):
        findings = lint_snippet(
            "@css_task('output(b) input(n)')\n"
            "def f(b, n):\n"
            "    if (b := n * 2) > 0:\n"
            "        pass\n"
        )
        assert rules_of(findings) == ["unwritten-output"]

    def test_match_captures_are_locals(self):
        # MatchAs/MatchStar/MatchMapping captures bind without a
        # Name/Store node; mutating them must not look like a write to
        # an undeclared global.
        findings = lint_snippet(
            "@css_task('input(x)')\n"
            "def f(x):\n"
            "    match x:\n"
            "        case [head, *tail]:\n"
            "            tail.append(head)\n"
            "        case {**rest}:\n"
            "            rest['k'] = 1\n"
        )
        assert findings == []

    def test_starred_target_rebinds_param(self):
        findings = lint_snippet(
            "@css_task('inout(a) input(xs)')\n"
            "def f(a, xs):\n"
            "    first, *a = xs\n"
            "    a[0] = 1\n"
        )
        assert findings == []

    def test_starred_assignment_binds_local(self):
        findings = lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    *rest, last = a\n"
            "    rest.append(last)\n"
        )
        assert findings == []

    def test_starred_call_argument_still_read(self):
        findings = lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    print(*a)\n"
        )
        assert findings == []

    def test_plain_input_write_still_fires(self):
        # The hardening must not swallow the plain case.
        findings = lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    a[0] = 1.0\n"
        )
        assert rules_of(findings) == ["input-write"]

    def test_continuation_line_suppression(self):
        # A suppression on a pragma-block continuation line scopes the
        # whole task, same as on the pragma line itself.
        findings = lint_source(
            "import numpy as np\n"
            "# pragma css task input(a) \\\n"
            "#   output(b)  # css: ignore[unwritten-output]\n"
            "def f(a, b):\n"
            "    return a.sum()\n",
            "<s>",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# fixture + corpus
# ---------------------------------------------------------------------------


EXPECTED_FIXTURE_RULES = {
    "input-write": 2,          # decorator + comment-pragma variants
    "undeclared-mutation": 2,  # sneaky_scratch + phantom_param's b
    "unwritten-output": 1,
    "read-before-write": 1,
    "global-mutation": 1,
    "unknown-region-name": 1,
    "opaque-leak": 1,
    "bad-pragma": 1,
}


class TestFixture:
    def test_every_rule_detected(self):
        findings = lint_file(FIXTURE)
        counts: dict[str, int] = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        assert counts == EXPECTED_FIXTURE_RULES
        # Every per-task rule is seeded; the whole-program flow-* rules
        # have their own fixture (misflowed.py, tests/test_check_flow.py).
        assert set(counts) == {r for r in RULES if not r.startswith("flow-")}

    def test_clean_controls_stay_clean(self):
        findings = lint_file(FIXTURE)
        assert not any(f.task in ("ok_task", "suppressed_write", "copy_vec")
                       for f in findings)

    def test_findings_carry_locations(self):
        for f in lint_file(FIXTURE):
            assert f.file.endswith("misannotated.py")
            assert f.line > 0


class TestCorpusIsClean:
    """Zero false positives over the repo's own tasks (satellite 2)."""

    def test_apps_and_examples(self):
        findings = lint_paths(
            [REPO / "src" / "repro" / "apps", REPO / "examples"]
        )
        assert findings == [], render_text(findings)


# ---------------------------------------------------------------------------
# reporters + CLI
# ---------------------------------------------------------------------------


class TestReporters:
    def _findings(self):
        return lint_snippet(
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    a[0] = 1.0\n"
        )

    def test_render_text(self):
        text = render_text(self._findings())
        assert "input-write" in text
        assert "1 error(s)" in text

    def test_render_json(self):
        doc = json.loads(render_json(self._findings()))
        assert doc["counts"] == {"total": 1, "errors": 1}
        (entry,) = doc["findings"]
        assert entry["rule"] == "input-write"
        assert entry["task"] == "f"
        assert entry["line"] == 4

    def test_filter_select_and_ignore(self):
        findings = lint_file(FIXTURE)
        only = filter_findings(findings, select=["bad-pragma"])
        assert rules_of(only) == ["bad-pragma"]
        dropped = filter_findings(findings, ignore=["bad-pragma"])
        assert "bad-pragma" not in rules_of(dropped)


class TestCli:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text(
            "from repro.core.api import css_task\n"
            "@css_task('inout(c)')\n"
            "def f(c):\n"
            "    c += 1\n"
        )
        assert check_main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, capsys):
        assert check_main(["lint", str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        assert "input-write" in out

    def test_json_format(self, capsys):
        assert check_main(["lint", str(FIXTURE), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["total"] == sum(EXPECTED_FIXTURE_RULES.values())

    def test_select_filter(self, capsys):
        code = check_main(
            ["lint", str(FIXTURE), "--select", "unwritten-output"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "unwritten-output" in out
        assert "input-write" not in out

    def test_unknown_rule_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            check_main(["lint", str(FIXTURE), "--select", "no-such-rule"])
        assert exc.value.code == 2

    def test_missing_path_exits_two(self, capsys):
        assert check_main(["lint", "/no/such/file.py"]) == 2

    def test_rules_subcommand(self, capsys):
        assert check_main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out
