"""Shared fixtures for the test suite."""

import pytest


@pytest.fixture(autouse=True)
def _no_leaked_arena_segments(request):
    """Assert shared-memory hygiene after every mp-marked test.

    Each ``-m mp`` test must leave ``/dev/shm`` exactly as it found it:
    a leaked ``repro-arena-*`` segment means a SharedArena was dropped
    without ``close(unlink=True)`` — a host-level leak that outlives
    the interpreter, which is why it is an error and not a warning.
    Segments that already existed before the test (e.g. from a crashed
    unrelated process) are not attributed to it.
    """

    if request.node.get_closest_marker("mp") is None:
        yield
        return
    from repro.mp import leaked_segment_files

    before = set(leaked_segment_files())
    yield
    leaked = [name for name in leaked_segment_files() if name not in before]
    assert not leaked, (
        f"test leaked shared-memory segment(s): {leaked}; every "
        f"SharedArena must be closed with unlink=True"
    )
