"""The repro.bench CLI: --save/--quick/--repeat/--seed and the compare gate.

A synthetic millisecond-cheap figure is injected into the registry so
the CLI paths (repeat aggregation, provenance stamping, baseline
recording, regression/improvement exit codes) are exercised without
running real simulations.  One test at the end runs a real quick-mode
figure against the committed baselines as the acceptance check.
"""

import json
import os

import pytest

from repro.bench import experiments as E
from repro.bench import registry
from repro.bench.compare import compare_figures, lower_is_better
from repro.bench.harness import FigureResult

pytestmark = pytest.mark.bench


@pytest.fixture
def fake_figure(monkeypatch):
    """Register a cheap synthetic figure 'figt' controlled by `state`."""

    state = {"factor": 1.0, "jitter": [0.0], "calls": 0, "seeds": []}

    def figtest_synthetic(seed=None):
        state["seeds"].append(seed)
        jit = state["jitter"][state["calls"] % len(state["jitter"])]
        state["calls"] += 1
        fig = FigureResult("Figure T", "synthetic", "threads", "Gflops", [1, 2])
        fig.add("SMPSs", [10.0 * state["factor"] + jit,
                          20.0 * state["factor"] + jit])
        return fig

    monkeypatch.setitem(registry.FIGURES, "figt", "figtest_synthetic")
    monkeypatch.setitem(registry.QUICK_PARAMS, "figt", {})
    monkeypatch.setattr(E, "figtest_synthetic", figtest_synthetic, raising=False)
    return state


def _main(argv):
    from repro.bench.__main__ import main

    return main(argv)


class TestRepeatAndSave:
    def test_save_stamps_provenance_and_spread(self, fake_figure, tmp_path, capsys):
        fake_figure["jitter"] = [0.0, 3.0, 1.0]  # median of {10,13,11} = 11
        assert _main(["figt", "--quick", "--repeat", "3",
                      "--save", str(tmp_path)]) == 0
        assert fake_figure["calls"] == 3
        doc = json.loads((tmp_path / "figt.json").read_text())
        assert doc["series"]["SMPSs"][0] == pytest.approx(11.0)
        assert doc["spread"]["SMPSs"][0] == pytest.approx(1.5)  # IQR of {10,11,13}
        prov = doc["provenance"]
        assert prov["repeats"] == 3 and prov["scale"] == "quick"
        assert prov["figure"] == "figt"
        metrics = json.loads((tmp_path / "figt.metrics.json").read_text())
        assert metrics["provenance"]["repeats"] == 3
        assert (tmp_path / "figt.csv").exists()

    def test_seed_forwarded_and_recorded(self, fake_figure, tmp_path, capsys):
        assert _main(["figt", "--seed", "42", "--save", str(tmp_path)]) == 0
        assert fake_figure["seeds"] == [42]
        doc = json.loads((tmp_path / "figt.json").read_text())
        assert doc["provenance"]["seed"] == 42

    def test_repeat_zero_rejected(self, fake_figure, capsys):
        assert _main(["figt", "--repeat", "0"]) == 2

    def test_single_run_default(self, fake_figure, capsys):
        assert _main(["figt"]) == 0
        assert fake_figure["calls"] == 1
        assert "Figure T" in capsys.readouterr().out

    def test_list_mentions_compare(self, capsys):
        assert _main(["list"]) == 0
        assert "compare" in capsys.readouterr().out


class TestCompareGate:
    def _record(self, tmp_path):
        assert _main(["compare", "--baseline", str(tmp_path), "--quick",
                      "--repeat", "2", "--figures", "figt", "--update"]) == 0
        path = tmp_path / "BENCH_figtest_synthetic.json"
        assert path.exists()
        return path

    def test_update_records_baseline_with_provenance(self, fake_figure, tmp_path, capsys):
        path = self._record(tmp_path)
        doc = json.loads(path.read_text())
        assert doc["provenance"]["scale"] == "quick"
        assert doc["provenance"]["repeats"] == 2

    def test_unchanged_run_exits_zero(self, fake_figure, tmp_path, capsys):
        self._record(tmp_path)
        assert _main(["compare", "--baseline", str(tmp_path), "--quick"]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out

    def test_regression_beyond_threshold_exits_nonzero(self, fake_figure, tmp_path, capsys):
        self._record(tmp_path)
        fake_figure["factor"] = 0.80  # -20% Gflops, floor is 5%
        assert _main(["compare", "--baseline", str(tmp_path), "--quick"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_small_delta_within_noise_passes(self, fake_figure, tmp_path, capsys):
        self._record(tmp_path)
        fake_figure["factor"] = 0.97  # -3% < the 5% floor
        assert _main(["compare", "--baseline", str(tmp_path), "--quick"]) == 0

    def test_improvement_exits_zero(self, fake_figure, tmp_path, capsys):
        self._record(tmp_path)
        fake_figure["factor"] = 1.30
        assert _main(["compare", "--baseline", str(tmp_path), "--quick"]) == 0
        assert "improved" in capsys.readouterr().out

    def test_min_rel_is_tunable(self, fake_figure, tmp_path, capsys):
        self._record(tmp_path)
        fake_figure["factor"] = 0.97
        assert _main(["compare", "--baseline", str(tmp_path), "--quick",
                      "--min-rel", "0.01"]) == 1

    def test_noisy_baseline_widens_threshold(self, fake_figure, tmp_path, capsys):
        # Baseline recorded with heavy jitter -> IQR dominates the floor.
        fake_figure["jitter"] = [0.0, 4.0, 2.0]
        assert _main(["compare", "--baseline", str(tmp_path), "--quick",
                      "--repeat", "3", "--figures", "figt", "--update"]) == 0
        fake_figure["jitter"] = [0.0]
        fake_figure["factor"] = 0.90  # -10%: fails the floor but not 3*IQR
        assert _main(["compare", "--baseline", str(tmp_path), "--quick",
                      "--repeat", "1"]) == 0

    def test_missing_baseline_dir_fails(self, fake_figure, tmp_path, capsys):
        assert _main(["compare", "--baseline", str(tmp_path / "nope")]) == 1

    def test_compare_without_baseline_flag(self, capsys):
        assert _main(["compare"]) == 2

    def test_unknown_figure_key(self, fake_figure, tmp_path, capsys):
        assert _main(["compare", "--baseline", str(tmp_path),
                      "--figures", "fig99", "--update"]) == 2


class TestCompareUnits:
    def test_lower_is_better_heuristic(self):
        gflops = FigureResult("f", "t", "x", "Gflops", [1])
        seconds = FigureResult("f", "t", "x", "run time (s)", [1])
        assert not lower_is_better(gflops)
        assert lower_is_better(seconds)

    def test_time_figure_regresses_upward(self):
        base = FigureResult("f", "t", "x", "seconds", [1])
        base.add("runtime", [10.0])
        cur = FigureResult("f", "t", "x", "seconds", [1])
        cur.add("runtime", [12.0])
        cmp = compare_figures("f", base, cur)
        assert cmp.points[0].regressed
        faster = FigureResult("f", "t", "x", "seconds", [1])
        faster.add("runtime", [8.0])
        assert compare_figures("f", base, faster).points[0].improved

    def test_schema_drift_is_skipped_not_fatal(self):
        base = FigureResult("f", "t", "x", "Gflops", [1, 2])
        base.add("old series", [1.0, 2.0])
        cur = FigureResult("f", "t", "x", "Gflops", [1, 3])
        cur.add("new series", [1.0, 2.0])
        cmp = compare_figures("f", base, cur)
        assert not cmp.points
        assert any("old series" in s for s in cmp.skipped)
        assert any("new series" in s for s in cmp.skipped)


class TestCommittedBaselines:
    BASELINE_DIR = os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "baselines"
    )

    def test_baseline_files_are_committed_and_self_describing(self):
        for name in ("BENCH_fig11_cholesky_scaling.json",
                     "BENCH_fig12_matmul_scaling.json"):
            path = os.path.join(self.BASELINE_DIR, name)
            assert os.path.exists(path), f"missing committed baseline {name}"
            fig = FigureResult.load(path)
            assert fig.provenance.get("git_sha")
            assert fig.provenance.get("scale") == "quick"
            assert fig.provenance.get("repeats", 0) >= 3
            assert fig.spread  # IQR recorded (all-zero for simulated figures)

    def test_quick_fig11_matches_committed_baseline(self, capsys):
        """The acceptance check: an unchanged tree passes the gate."""

        assert _main(["compare", "--baseline", self.BASELINE_DIR, "--quick",
                      "--repeat", "1", "--figures", "fig11"]) == 0
        assert "0 regressed" in capsys.readouterr().out
