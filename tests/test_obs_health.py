"""Tests for repro.obs.health — watchdog, explainer, flight recorder,
and the Prometheus exposition endpoint.

The acceptance bar pinned here: a deliberately wedged program (a task
waiting on a datum whose producer never finishes) must trigger the
``suspected_deadlock`` finding with the correct wait chain on *both*
backends, and a flight-recorder dump containing that chain must land
within two watchdog periods; a healthy run must produce zero findings.
"""

import json
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro import RuntimeConfig, SmpssRuntime, css_task
from repro.obs import (
    ExpositionServer,
    Finding,
    FlightRecorder,
    HealthMonitor,
    MetricsRegistry,
    StallError,
    explain_blocked,
    render_registry,
    render_snapshot,
    scrape,
    wait_chain,
    wait_graph_dot,
)
from repro.obs.exposition import CONTENT_TYPE

pytestmark = pytest.mark.health

INTERVAL = 0.05


# ---------------------------------------------------------------------------
# task definitions (module level so the process backend resolves them)
# ---------------------------------------------------------------------------

@css_task("input(flag_path) output(a)")
def wedge_t(flag_path, a):
    # Busy-wait on an external flag file: to the tracker this task is
    # RUNNING forever, so its consumers are blocked on a dependency
    # that never completes — the wedge the watchdog must explain.
    while not os.path.exists(flag_path):
        time.sleep(0.005)
    a[:] = 1.0


@css_task("input(a) output(b)")
def follow_t(a, b):
    np.add(a, 1.0, out=b)


@css_task("inout(a)")
def incr_t(a):
    a += 1


@css_task("inout(a)")
def potrf_like_t(a):
    a += np.eye(a.shape[0])


@css_task("input(a) inout(c)")
def syrk_like_t(a, c):
    c -= 1e-3 * (a @ a.T)


def _wait_for_kinds(runtime, wanted, deadline=8.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        kinds = {f.kind for f in runtime.health.findings}
        if wanted <= kinds:
            return kinds
        time.sleep(INTERVAL / 2)
    return {f.kind for f in runtime.health.findings}


def _release(flag_path):
    with open(flag_path, "w", encoding="utf-8"):
        pass


class TestWedgeDetection:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_wedge_triggers_deadlock_finding_with_chain(
        self, backend, tmp_path
    ):
        flag = str(tmp_path / "release-flag")
        dump_dir = str(tmp_path / "dumps")
        os.makedirs(dump_dir)
        a, b = np.zeros(4), np.zeros(4)
        with SmpssRuntime(
            num_workers=2,
            backend=backend,
            health=True,
            health_interval=INTERVAL,
            health_dump_dir=dump_dir,
        ) as rt:
            wedge_t(flag, a)
            follow_t(a, b)
            kinds = _wait_for_kinds(
                rt, {"global_stall", "suspected_deadlock"}
            )
            try:
                assert "global_stall" in kinds
                assert "suspected_deadlock" in kinds
                deadlock = [
                    f for f in rt.health.findings
                    if f.kind == "suspected_deadlock"
                ][0]
                assert deadlock.severity == "critical"
                chains = deadlock.details["chains"]
                names = {
                    link["name"] for chain in chains for link in chain
                }
                # The chain must name both the blocked consumer and the
                # producer holding it up.
                assert "follow_t" in names
                assert "wedge_t" in names
                head = chains[0][0]
                assert head["name"] == "follow_t"
                assert head["waiting_on"][0]["param"] == "a"
                producer = head["waiting_on"][0]["producer"]
                assert producer["name"] == "wedge_t"
                assert producer["state"] == "running"
            finally:
                _release(flag)
            rt.barrier()
        assert np.array_equal(b, np.full(4, 2.0))
        # Every finding triggered a dump; the chain is in the newest one.
        metrics_dumps = sorted(
            p for p in os.listdir(dump_dir) if p.endswith(".metrics.json")
        )
        assert metrics_dumps
        found_chain = False
        for name in metrics_dumps:
            with open(os.path.join(dump_dir, name), encoding="utf-8") as fh:
                doc = json.load(fh)
            for finding in doc["findings"]:
                if finding["kind"] == "suspected_deadlock":
                    chain_names = {
                        link["name"]
                        for chain in finding["details"]["chains"]
                        for link in chain
                    }
                    found_chain = {"follow_t", "wedge_t"} <= chain_names
        assert found_chain
        assert any(
            p.endswith(".trace.json") for p in os.listdir(dump_dir)
        )
        assert any(
            p.endswith(".waitgraph.dot") for p in os.listdir(dump_dir)
        )

    def test_wedge_found_within_two_periods(self, tmp_path):
        flag = str(tmp_path / "flag")
        a, b = np.zeros(2), np.zeros(2)
        with SmpssRuntime(
            num_workers=2,
            health=True,
            health_interval=INTERVAL,
            health_dump_dir=str(tmp_path),
        ) as rt:
            wedge_t(flag, a)
            follow_t(a, b)
            # Give the watchdog a beat to observe the wedged shape,
            # then check the streak math directly: two stalled samples
            # must produce the finding.
            time.sleep(INTERVAL)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                rt.health.check_now()
                if rt.health._stall_streak >= 2:
                    break
                time.sleep(INTERVAL)
            kinds = {f.kind for f in rt.health.findings}
            assert "suspected_deadlock" in kinds
            _release(flag)
            rt.barrier()

    def test_healthy_run_has_zero_findings(self, tmp_path):
        # False-positive guard: a busy Cholesky-like blocked/ready mix
        # must never trip the watchdog.
        nb = 4
        tiles = [
            [np.eye(nb) * 4 + 0.1 for _ in range(2)] for _ in range(2)
        ]
        with SmpssRuntime(
            num_workers=2,
            health=True,
            health_interval=0.02,
            health_dump_dir=str(tmp_path),
        ) as rt:
            for _ in range(20):
                for i in range(2):
                    potrf_like_t(tiles[i][i])
                    syrk_like_t(tiles[i][1 - i], tiles[i][i])
            rt.barrier()
            time.sleep(0.1)  # a few more idle watchdog periods
            assert rt.health.findings == []
        assert not any(
            p.endswith(".metrics.json") for p in os.listdir(str(tmp_path))
        )


class TestExplainer:
    def test_explain_blocked_and_wait_chain(self, tmp_path):
        flag = str(tmp_path / "flag")
        a, b = np.zeros(2), np.zeros(2)
        with SmpssRuntime(
            num_workers=2, health=True, health_interval=5.0,
            health_dump_dir=str(tmp_path),
        ) as rt:
            wedge_t(flag, a)
            handle = follow_t(a, b)
            time.sleep(0.1)  # let the wedge start running
            explained = rt.health.explain(handle.task_id)
            try:
                exp = explained["explanation"]
                assert exp["state"] == "blocked"
                assert exp["pending_deps"] == 1
                dep = exp["waiting_on"][0]
                assert dep["param"] == "a"
                assert dep["renaming"] in (
                    "initial", "same", "fresh", "clone"
                )
                assert dep["producer"]["name"] == "wedge_t"
                chain = explained["chain"]
                assert [link["name"] for link in chain] == [
                    "follow_t", "wedge_t",
                ]
                # The running producer reports which worker holds it.
                assert "worker" in dep["producer"]
            finally:
                _release(flag)
            rt.barrier()

    def test_explain_unknown_id_raises(self, tmp_path):
        with SmpssRuntime(
            num_workers=1, health=True, health_interval=5.0,
            health_dump_dir=str(tmp_path),
        ) as rt:
            with pytest.raises(ValueError, match="no in-flight task"):
                rt.health.explain(123456)

    def test_wait_graph_dot_colours_states(self, tmp_path):
        flag = str(tmp_path / "flag")
        a, b = np.zeros(2), np.zeros(2)
        with SmpssRuntime(
            num_workers=2, health=True, health_interval=5.0,
            health_dump_dir=str(tmp_path),
        ) as rt:
            wedge_t(flag, a)
            follow_t(a, b)
            time.sleep(0.1)
            dot = wait_graph_dot(rt)
            try:
                assert dot is not None
                assert "digraph wait" in dot
                assert "salmon" in dot       # blocked consumer
                assert "lightgreen" in dot   # running producer
                assert '[label="a"]' in dot  # edge labelled with param
            finally:
                _release(flag)
            rt.barrier()
            assert wait_graph_dot(rt) is None  # drained graph → empty

    def test_stalled_error_carries_chains(self, tmp_path):
        # Corrupt the graph bookkeeping on purpose: pending_count never
        # reaching zero is exactly the historical "runtime stalled"
        # condition, now raised as a StallError with wait chains.
        with SmpssRuntime(
            num_workers=1, health=True, health_interval=5.0,
            health_dump_dir=str(tmp_path),
        ) as rt:
            a = np.zeros(2)
            incr_t(a)
            rt.barrier()
            rt.graph._pending += 1  # simulate corruption
            try:
                with pytest.raises(StallError, match="runtime stalled"):
                    rt.barrier()
            finally:
                rt.graph._pending -= 1
            assert any(
                f.kind == "hard_stall" for f in rt.health.findings
            )
        assert issubclass(StallError, RuntimeError)


class TestExpositionEndpoint:
    def test_scrape_metrics_and_health(self, tmp_path):
        a = np.zeros(4)
        with SmpssRuntime(
            num_workers=2,
            health=True,
            health_interval=INTERVAL,
            health_dump_dir=str(tmp_path),
            health_address="tcp:127.0.0.1:0",
        ) as rt:
            for _ in range(8):
                incr_t(a)
            rt.barrier()
            time.sleep(3 * INTERVAL)  # let a post-barrier sample land
            addr = rt.health.address
            assert addr is not None and addr.startswith("tcp:")
            page = scrape(addr)
            text = page["text"]
            assert page["content_type"] == CONTENT_TYPE
            assert "# TYPE repro_health_samples counter" in text
            assert "repro_health_last_completion_age" in text
            assert "repro_health_blocked_tasks 0" in text
            assert 'repro_task_duration_seconds{task="incr_t",' in text
            assert 'quantile="0.99"' in text
            assert "repro_task_duration_seconds_count" in text
            assert "repro_health_worker_utilization" in text
            health = scrape(addr, command="health")
            assert health["findings"] == []
            assert health["sample"]["pending"] == 0
            assert health["interval"] == INTERVAL

    def test_plain_http_get_works_on_same_port(self, tmp_path):
        a = np.zeros(4)
        with SmpssRuntime(
            num_workers=1,
            health=True,
            health_interval=INTERVAL,
            health_dump_dir=str(tmp_path),
            health_address="tcp:127.0.0.1:0",
        ) as rt:
            incr_t(a)
            rt.barrier()
            host, port = rt.health.address.split(":")[1:]

            def get(path):
                sock = socket.create_connection((host, int(port)), timeout=5)
                try:
                    sock.sendall(
                        f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
                    )
                    resp = b""
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            return resp
                        resp += chunk
                finally:
                    sock.close()

            resp = get("/metrics")
            head, _, body = resp.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200 OK")
            assert b"Content-Type: text/plain; version=0.0.4" in head
            assert b"repro_tasks_executed" in body
            resp = get("/health")
            head, _, body = resp.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200 OK")
            assert b"application/json" in head
            doc = json.loads(body)
            assert doc["findings"] == []

    def test_json_clients_still_work_after_http_sniff(self, tmp_path):
        # The sniffing transport must not break ordinary JSON-lines
        # clients: the deferred hello arrives, then acks flow.
        with SmpssRuntime(
            num_workers=1, health=True, health_interval=INTERVAL,
            health_dump_dir=str(tmp_path),
            health_address="tcp:127.0.0.1:0",
        ) as rt:
            data = scrape(rt.health.address, command="ping")
            assert data == {"service": "repro.obs.health"}

    def test_serve_snapshot_mode(self, tmp_path):
        snapshot = {
            "tasks_executed": 42,
            "task_duration_seconds": {
                "task=x": {"count": 3, "sum": 0.6, "mean": 0.2},
            },
        }
        server = ExpositionServer("tcp:127.0.0.1:0", snapshot=snapshot)
        try:
            page = scrape(server.address)
            assert "repro_tasks_executed 42" in page["text"]
            assert (
                'repro_task_duration_seconds_mean{task="x"} 0.2'
                in page["text"]
            )
        finally:
            server.close()


class TestSignalAndDump:
    def test_sigusr1_triggers_dump(self, tmp_path):
        a = np.zeros(2)
        with SmpssRuntime(
            num_workers=1,
            health=True,
            health_interval=INTERVAL,
            health_dump_dir=str(tmp_path),
        ) as rt:
            incr_t(a)
            rt.barrier()
            os.kill(os.getpid(), signal.SIGUSR1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if any(
                    p.endswith(".metrics.json")
                    for p in os.listdir(str(tmp_path))
                ):
                    break
                time.sleep(INTERVAL / 2)
            dumps = [
                p for p in os.listdir(str(tmp_path))
                if p.endswith(".metrics.json")
            ]
            assert dumps
            with open(
                os.path.join(str(tmp_path), dumps[0]), encoding="utf-8"
            ) as fh:
                doc = json.load(fh)
            assert doc["reason"] == "sigusr1"
            assert doc["findings"] == []
            # ring entries are [task_id, name, thread, end, duration]
            assert any(item[1] == "incr_t" for item in doc["ring"])
            installed = signal.getsignal(signal.SIGUSR1)
            assert installed == rt.health._on_sigusr1
        # The previous handler is restored on shutdown.
        assert signal.getsignal(signal.SIGUSR1) is not installed

    def test_manual_dump_writes_chrome_trace(self, tmp_path):
        a = np.zeros(2)
        with SmpssRuntime(
            num_workers=2, health=True, health_interval=5.0,
            health_dump_dir=str(tmp_path),
        ) as rt:
            for _ in range(5):
                incr_t(a)
            rt.barrier()
            paths = rt.health.dump(reason="manual")
            assert os.path.exists(paths["trace"])
            assert os.path.exists(paths["metrics"])
            with open(paths["trace"], encoding="utf-8") as fh:
                trace = json.load(fh)
            names = {
                ev.get("name") for ev in trace["traceEvents"]
                if ev.get("ph") == "X" or ev.get("ph") == "B"
            }
            assert "incr_t" in names


class TestFlightRecorder:
    def test_ring_is_bounded_and_reconstructs_events(self):
        rec = FlightRecorder(num_threads=2, capacity=8)
        for i in range(20):
            rec.note_task(i, "t", i % 2, float(i + 1), 0.5)
        assert rec.completions == 20
        events = rec.events()
        # 8 completions retained, two events (start+end) each.
        assert len(events) == 16
        assert events[0].kind == "task_start"
        assert events[0].time == pytest.approx(events[1].time - 0.5)
        assert rec.busy[0] + rec.busy[1] == pytest.approx(10.0)

    def test_snapshot_ring_bounded(self):
        rec = FlightRecorder(num_threads=1, snapshot_capacity=4)
        for i in range(10):
            rec.note_snapshot({"i": i})
        assert [s["i"] for s in rec.snapshots()] == [6, 7, 8, 9]


class TestConfigKnobs:
    def test_health_requires_metrics(self):
        with pytest.raises(TypeError, match="requires metrics=True"):
            SmpssRuntime(num_workers=1, health=True, metrics=False)

    def test_health_address_implies_health(self, tmp_path):
        with SmpssRuntime(
            num_workers=1,
            health_address="tcp:127.0.0.1:0",
            health_interval=INTERVAL,
            health_dump_dir=str(tmp_path),
        ) as rt:
            assert rt.config.health is True
            assert rt.health is not None
            assert rt.health.address is not None

    def test_health_off_means_no_monitor(self):
        with SmpssRuntime(num_workers=1) as rt:
            a = np.zeros(2)
            incr_t(a)
            rt.barrier()
            assert rt.health is None
        assert a[0] == 1.0

    def test_config_knobs_roundtrip(self):
        config = RuntimeConfig(
            health=True, health_interval=0.25,
            health_dump_dir="/tmp/x", health_address="tcp:0.0.0.0:0",
        )
        assert config.health_interval == 0.25
        assert config.health_dump_dir == "/tmp/x"


class TestRendering:
    def test_render_registry_text_format(self):
        registry = MetricsRegistry()
        registry.counter("tasks.total").inc(3)
        registry.gauge("depth", thread=0).set(2)
        h = registry.histogram("lat", task="f")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        text = render_registry(registry)
        assert "# TYPE repro_tasks_total counter" in text
        assert "repro_tasks_total 3" in text
        assert 'repro_depth{thread="0"} 2' in text
        assert "# TYPE repro_lat summary" in text
        assert 'repro_lat{task="f",quantile="0.5"} 2.0' in text
        assert 'repro_lat_sum{task="f"} 7.0' in text
        assert 'repro_lat_count{task="f"} 3' in text
        assert text.endswith("\n")

    def test_render_registry_does_not_fold(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        h.observe(1.0)
        before = list(h._raw)
        render_registry(registry)
        assert list(h._raw) == before  # scrape never mutates

    def test_render_snapshot_scalars_and_hists(self):
        text = render_snapshot({
            "tasks_executed": 5,
            "analysis_seconds": {"count": 2, "sum": 0.4, "mean": 0.2},
        })
        assert "repro_tasks_executed 5" in text
        assert "repro_analysis_seconds_count 2" in text
        assert "repro_analysis_seconds_mean 0.2" in text

    def test_invalid_chars_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("mp.worker-deaths").inc()
        text = render_registry(registry)
        assert "repro_mp_worker_deaths 1" in text


def test_report_shows_backend_health_and_quantiles(tmp_path):
    a = np.zeros(4)
    with SmpssRuntime(
        num_workers=2, health=True, health_interval=INTERVAL,
        health_dump_dir=str(tmp_path),
    ) as rt:
        for _ in range(10):
            incr_t(a)
        rt.barrier()
        report = rt.report()
    assert "task duration p50/p95/p99:" in report
    assert "incr_t:" in report
    assert "backend health:" in report
    assert "watchdog: findings=0" in report


def test_health_exports_reachable_from_package_root():
    import repro.obs as obs

    for name in (
        "HealthMonitor", "Finding", "StallError", "FlightRecorder",
        "ExpositionServer", "scrape", "render_registry",
        "render_snapshot", "explain_blocked", "wait_chain",
        "wait_graph_dot",
    ):
        assert hasattr(obs, name), name
    assert Finding is obs.Finding
    assert HealthMonitor is obs.HealthMonitor
    assert explain_blocked is obs.explain_blocked
    assert wait_chain is obs.wait_chain
