"""Tests for the extension batch: memory limit + GC, Paraver export,
steal-order ablation, strict dimension checks, CLIs."""

import numpy as np
import pytest

from repro import InvocationError, SmpssRuntime, css_task
from repro.core.dependencies import DependencyTracker
from repro.core.graph import TaskGraph
from repro.core.invocation import instantiate
from repro.core.renaming import RenamingError, StorageKind
from repro.core.scheduler import HotStealScheduler, SmpssScheduler
from repro.core.recorder import RecordingRuntime


@css_task("input(a) output(b)")
def snap(a, b):
    b[...] = a


@css_task("inout(a)")
def bump(a):
    a += 1


class TestRenamedBufferAccounting:
    def _hazard_tracker(self):
        """Build reader/writer hazards that force renaming."""

        data = np.zeros(1024, np.float64)  # 8 KiB
        outs = [np.zeros(1024, np.float64) for _ in range(3)]
        recorder = RecordingRuntime(execute="eager")
        with recorder:
            for out in outs:
                snap(data, out)
                bump(data)  # pending reader -> CLONE rename
        return recorder.tracker

    def test_bytes_counted_on_materialisation(self):
        tracker = self._hazard_tracker()
        # Two renames materialised 8 KiB clones each (the first bump
        # may be in place depending on reader state; at least one).
        assert tracker.renamed_bytes >= 8192
        assert tracker.renamed_bytes % 8192 == 0

    def test_release_after_frees_dead_versions(self):
        data = np.zeros(1024, np.float64)
        out = np.zeros(1024, np.float64)
        graph = TaskGraph(keep_finished=True)
        tracker = DependencyTracker(graph)

        out2 = np.zeros(1024, np.float64)
        # snap(v0) ; bump -> CLONE v1 ; snap(v1) ; bump -> CLONE v2.
        # Once everything finishes, v1 is superseded by v2 (a distinct
        # buffer) with no readers left: it must be garbage-collected.
        tasks = []
        for defn, args in (
            (snap.definition, (data, out)),
            (bump.definition, (data,)),
            (snap.definition, (data, out2)),
            (bump.definition, (data,)),
        ):
            task = instantiate(defn, args, {})
            tracker.analyze(task)
            tasks.append(task)

        from repro.core.invocation import resolve_call_values

        for task in tasks:
            resolve_call_values(task)  # materialise like the runtime
            graph.complete(task)
            tracker.release_after(task)

        (_n, v1), = tasks[1].writes
        (_n, v2), = tasks[3].writes
        assert v1.kind is StorageKind.CLONE
        assert v2.kind is StorageKind.CLONE
        assert v1.released, "superseded clone must be collected"
        assert not v2.released, "chain head must stay alive"

    def test_released_version_cannot_resolve(self):
        data = np.zeros(4)
        graph = TaskGraph()
        tracker = DependencyTracker(graph)
        t_read = instantiate(snap.definition, (data, np.zeros(4)), {})
        tracker.analyze(t_read)
        t_write = instantiate(bump.definition, (data,), {})
        tracker.analyze(t_write)
        (_n, version), = t_write.writes
        if version.kind is StorageKind.CLONE:
            version.resolve_storage()
            assert version.drop_storage() > 0
            with pytest.raises(RenamingError, match="released"):
                version.resolve_storage()

    def test_memory_limit_runtime_stays_correct(self):
        """A tiny memory limit throttles but never corrupts results."""

        data = np.zeros(256, np.float64)
        outs = [np.zeros(256, np.float64) for _ in range(30)]
        with SmpssRuntime(
            num_workers=2, memory_limit_bytes=3 * 256 * 8
        ) as rt:
            for i, out in enumerate(outs):
                snap(data, out)
                bump(data)
            rt.barrier()
        for i, out in enumerate(outs):
            assert (out == float(i)).all()
        assert (data == 30.0).all()

    def test_memory_limit_none_is_default(self):
        from repro.core.config import RuntimeConfig

        assert RuntimeConfig().memory_limit_bytes is None


class TestHotStealAblation:
    def test_hot_steal_takes_newest(self):
        from repro.core.task import TaskDefinition, TaskInstance

        defn = TaskDefinition(func=lambda: None, params=(), name="t")
        s = HotStealScheduler(num_threads=2)
        a = TaskInstance(definition=defn, accesses=[], arguments={})
        b = TaskInstance(definition=defn, accesses=[], arguments={})
        s.push_unlocked(a, thread=1)
        s.push_unlocked(b, thread=1)
        assert s.pop(0) is b  # hot end — the opposite of SmpssScheduler
        assert s.stats.steals == 1

    def test_cold_steal_is_not_worse_on_chains(self):
        """FIFO stealing should match or beat hot stealing on the
        cache-sensitive Cholesky workload (the paper's argument)."""

        from repro.apps.cholesky import cholesky_hyper
        from repro.blas.hypermatrix import HyperMatrix
        from repro.sim import ALTIX_32, CostModel, simulate_program

        def run(factory):
            hm = HyperMatrix(10, 1, np.float32)
            for i in range(10):
                for j in range(10):
                    hm[i, j] = np.zeros((1, 1), np.float32)
            machine = ALTIX_32.with_cores(8)
            return simulate_program(
                cholesky_hyper, hm,
                machine=machine,
                cost_model=CostModel(machine, block_size=128),
                scheduler_factory=factory,
            )

        cold = run(SmpssScheduler)
        hot = run(HotStealScheduler)
        assert cold.cache_hits >= hot.cache_hits * 0.95
        assert cold.makespan <= hot.makespan * 1.05

    def test_threaded_runtime_accepts_hot_steal(self):
        data = np.zeros(1)
        with SmpssRuntime(num_workers=2, scheduler_factory=HotStealScheduler) as rt:
            for _ in range(10):
                bump(data)
            rt.barrier()
        assert data[0] == 10


class TestStrictDims:
    def test_matching_dims_accepted(self):
        @css_task("input(a[N][N], N)")
        def f(a, N):  # noqa: ARG001
            pass

        instantiate(f.definition, (np.zeros((3, 3)), 3), {})

    def test_mismatched_dims_rejected(self):
        @css_task("input(a[N][N], N)")
        def f(a, N):  # noqa: ARG001
            pass

        with pytest.raises(InvocationError, match="shape"):
            instantiate(f.definition, (np.zeros((3, 4)), 3), {})

    def test_wrong_rank_rejected(self):
        @css_task("input(a[N], N)")
        def f(a, N):  # noqa: ARG001
            pass

        with pytest.raises(InvocationError, match="shape"):
            instantiate(f.definition, (np.zeros((2, 2)), 2), {})

    def test_unresolvable_dims_skipped(self):
        @css_task("input(a[UNKNOWN])")
        def f(a):  # noqa: ARG001
            pass

        instantiate(f.definition, (np.zeros(7),), {})  # must not raise


class TestParaverExport:
    def test_prv_structure(self):
        tracer_run = self._traced()
        prv = tracer_run.to_paraver()
        lines = prv.splitlines()
        assert lines[0].startswith("#Paraver")
        states = [l for l in lines if l.startswith("1:")]
        events = [l for l in lines if l.startswith("2:")]
        assert len(states) == 4  # one per executed task
        assert events  # ready/added/barrier events present
        for record in states:
            fields = record.split(":")
            assert len(fields) == 8
            assert int(fields[6]) >= int(fields[5])  # end >= begin

    @staticmethod
    def _traced():
        data = np.zeros(1)
        rt = SmpssRuntime(num_workers=1, trace=True)
        with rt:
            for _ in range(4):
                bump(data)
            rt.barrier()
        return rt.tracer


class TestBenchCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["list"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_fig05(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig05"]) == 0
        out = capsys.readouterr().out
        assert "56 tasks" in out

    def test_counts(self, capsys):
        from repro.bench.__main__ import main

        assert main(["counts"]) == 0
        assert "374272" in capsys.readouterr().out.replace(",", "")

    def test_quick_figure(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig12", "--quick"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_unknown(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig99"]) == 1
