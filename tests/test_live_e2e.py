"""repro.live end to end: attach, control, replay — on both backends.

The acceptance scenario from the ISSUE, as an automated test: start an
instrumented 6x6 blocked Cholesky paused, attach a client over the
socket, observe the full dependency graph as deltas, set a breakpoint
on the first ``spotrf_t``, single-step through it, resume, and verify
the run completes with the correct numerical result — on the threaded
*and* the process backend.  A replay of a recording of the same
program must land the dashboard in the same final state.
"""

import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import SmpssRuntime
from repro.apps.cholesky import cholesky_hyper
from repro.blas.hypermatrix import HyperMatrix
from repro.core.recorder import record_program
from repro.core.task import reset_task_ids
from repro.live import DashboardState, LiveClient, ReplayEngine

pytestmark = pytest.mark.live

BACKENDS = ["threads", "processes"]

#: 6x6 blocks of 8x8 -> 56 tasks, 105 edges, critical path 16.
N_BLOCKS, BLOCK = 6, 8
N_TASKS = 56
TASK_MIX = {"spotrf_t": 6, "strsm_t": 15, "ssyrk_t": 15, "sgemm_nt_t": 20}


def _spd():
    return HyperMatrix.random_spd(N_BLOCKS, BLOCK, seed=3)


def _reference():
    return np.linalg.cholesky(_spd().to_dense())


def _start_instrumented(backend, box, **live_kwargs):
    """Run the Cholesky program in a thread; publish address via *box*."""

    hm = _spd()
    box["matrix"] = hm
    rt = SmpssRuntime(num_workers=2, backend=backend, live=True,
                      live_address="tcp:127.0.0.1:0", **live_kwargs)

    def program():
        try:
            with rt:
                box["addr"] = rt.live.address
                cholesky_hyper(hm)
                rt.barrier()
            box["done"] = True
        except BaseException as exc:  # surfaced by the test body
            box["error"] = exc
            box["addr"] = box.get("addr", "")

    thread = threading.Thread(target=program, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30.0
    while "addr" not in box and time.monotonic() < deadline:
        time.sleep(0.01)
    assert box.get("addr"), f"runtime never came up: {box.get('error')}"
    return thread


class TestScriptedSession:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_attach_break_step_resume(self, backend):
        reset_task_ids()
        box = {}
        thread = _start_instrumented(backend, box, live_start_paused=True)
        state = DashboardState()
        with LiveClient(box["addr"], timeout=10.0) as client:
            state.apply(dict(client.hello))
            assert client.hello["backend"] == backend

            # 1. The paused runtime streams the *whole* hazard graph
            #    before anything has run.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                for record in client.drain(idle=0.2):
                    state.apply(record)
                if len(state.tasks) >= N_TASKS:
                    break
            sig = state.signature()
            assert sig["tasks"] == N_TASKS
            assert sig["by_name"] == TASK_MIX
            assert sig["edges"] == 105
            assert sig["critical_path"] == 16
            assert sig["done"] == 0

            control = client.state()
            assert control["paused"]
            assert control["executed"] == 0

            # 2. Breakpoint + step: the first ticket is eaten by the
            #    hold, later ones run the held task and successors.
            client.set_break(name="spotrf_t")
            client.step(5)

            def saw_hold(record):
                state.apply(record)
                held = any("breakpoint: held" in n for n in state.notes)
                return held and state.counts().get("done", 0) >= 1

            client.wait_for(saw_hold, timeout=30.0)
            time.sleep(0.3)
            for record in client.drain(idle=0.2):
                state.apply(record)
            done = state.counts().get("done", 0)
            assert 1 <= done <= 5  # never more than the granted tickets
            assert client.state()["paused"]

            if backend == "processes":
                # The master-side dispatch notification is the only
                # timely "left the queue" signal under mp.
                dispatched = [
                    t for t in state.tasks.values()
                    if t["state"] in ("dispatched", "running", "done")
                ]
                assert dispatched

            # 3. Release everything and watch it finish.
            client.clear_breaks()
            client.resume()

            def all_done(record):
                state.apply(record)
                return state.counts().get("done", 0) == N_TASKS

            client.wait_for(all_done, timeout=120.0)
            final = state.signature()
            assert final["done"] == N_TASKS
            assert final["by_name"] == TASK_MIX

        thread.join(timeout=30.0)
        assert box.get("done"), f"program thread failed: {box.get('error')}"
        result = np.tril(box["matrix"].to_dense())
        assert np.allclose(result, _reference(), atol=1e-8)


class TestStepDeterminism:
    def _free_run(self, backend):
        hm = _spd()
        with SmpssRuntime(num_workers=2, backend=backend) as rt:
            cholesky_hyper(hm)
            rt.barrier()
        return hm.lower_to_dense()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_step1_bitwise_identical_to_free_run(self, backend):
        free = self._free_run(backend)
        hm = _spd()
        with SmpssRuntime(num_workers=2, backend=backend, live=True,
                          live_start_paused=True) as rt:
            cholesky_hyper(hm)
            # Drive the whole factorisation one dispatch ticket at a
            # time.  Tickets wasted on empty selections are harmless —
            # we keep stepping until every task has executed.
            deadline = time.monotonic() + 120.0
            while rt.tasks_executed < N_TASKS:
                assert time.monotonic() < deadline, (
                    f"stalled at {rt.tasks_executed}/{N_TASKS}"
                )
                rt.live.step(1)
                time.sleep(0.002)
            rt.live.resume()
            rt.barrier()
        assert np.array_equal(hm.lower_to_dense(), free)


class TestReplayEquivalence:
    def test_replay_matches_live_final_state(self):
        # Live run, started paused so the dashboard sees the same
        # worst-case hazard graph the replay's eager flush produces
        # (free-running submission would race execution and elide
        # already-satisfied anti-dependencies).
        reset_task_ids()
        box = {}
        thread = _start_instrumented("threads", box,
                                     live_start_paused=True)
        live_state = DashboardState()
        with LiveClient(box["addr"], timeout=10.0) as client:
            live_state.apply(dict(client.hello))
            deadline = time.monotonic() + 30.0
            while (len(live_state.tasks) < N_TASKS
                   and time.monotonic() < deadline):
                for record in client.drain(idle=0.2):
                    live_state.apply(record)
            assert len(live_state.tasks) == N_TASKS
            client.resume()

            def all_done(record):
                live_state.apply(record)
                counts = live_state.counts()
                return (len(live_state.tasks) >= N_TASKS
                        and counts.get("done", 0) == len(live_state.tasks))

            client.wait_for(all_done, timeout=120.0)
        thread.join(timeout=30.0)
        assert box.get("done"), f"live run failed: {box.get('error')}"

        # Replay of a recording of the *same* program: one dashboard
        # code path, same final picture.
        program = record_program(lambda: cholesky_hyper(_spd()))
        engine = ReplayEngine(program.to_json_dict(), num_threads=3)
        engine.run()
        assert engine.dashboard.signature() == live_state.signature()
        # Task identity matches too, not just the counts.
        live_names = {i: t["name"] for i, t in live_state.tasks.items()}
        replay_names = {
            i: t["name"] for i, t in engine.dashboard.tasks.items()
        }
        assert replay_names == live_names


class TestCliSmoke:
    def test_attach_script_drives_a_real_run(self, tmp_path):
        """The documented CI smoke: runtime in one process, the
        ``python -m repro.live attach --script ...`` CLI in another."""

        driver = tmp_path / "instrumented.py"
        driver.write_text(
            "import sys\n"
            "import numpy as np\n"
            "from repro import SmpssRuntime\n"
            "from repro.apps.cholesky import cholesky_hyper\n"
            "from repro.blas.hypermatrix import HyperMatrix\n"
            "hm = HyperMatrix.random_spd(6, 8, seed=3)\n"
            "ref = np.linalg.cholesky(hm.to_dense())\n"
            "rt = SmpssRuntime(num_workers=2, live=True,\n"
            "                  live_address='tcp:127.0.0.1:0',\n"
            "                  live_start_paused=True)\n"
            "with rt:\n"
            "    print(rt.live.address, flush=True)\n"
            "    cholesky_hyper(hm)\n"
            "    rt.barrier()\n"
            "assert np.allclose(np.tril(hm.to_dense()), ref, atol=1e-8)\n"
            "print('RESULT-OK', flush=True)\n"
        )
        run = subprocess.Popen(
            [sys.executable, str(driver)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            address = run.stdout.readline().strip()
            assert address.startswith("tcp:")
            attach = subprocess.run(
                [sys.executable, "-m", "repro.live", "attach", address,
                 "--script",
                 "state; break spotrf_t; step 5; clear; resume; "
                 "wait-done; quit"],
                capture_output=True, text=True, timeout=120,
            )
            assert attach.returncode == 0, attach.stderr
            assert "PAUSED" in attach.stdout  # the `state` render
            out, err = run.communicate(timeout=60)
        finally:
            if run.poll() is None:
                run.kill()
                run.communicate()
        assert run.returncode == 0, err
        assert "RESULT-OK" in out

    def test_replay_script_cli(self, tmp_path):
        program = record_program(lambda: cholesky_hyper(_spd()))
        path = tmp_path / "chol.recording.json"
        program.save(str(path))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.live", "replay", str(path),
             "--threads", "3",
             "--script", "step 10; back 3; run; report; quit"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "56/56" in proc.stdout or "done=56" in proc.stdout
