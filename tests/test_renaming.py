"""Tests for storage adapters, versions, and representants."""

import numpy as np
import pytest

from repro.core.renaming import (
    BytearrayAdapter,
    GenericObjectAdapter,
    ListAdapter,
    NdarrayAdapter,
    RenamingError,
    StorageKind,
    Version,
    default_registry,
)
from repro.core.dependencies import DependencyTracker, TrackedDatum
from repro.core.graph import TaskGraph
from repro.core.representants import Representant, RepresentantTable


class TestNdarrayAdapter:
    adapter = NdarrayAdapter()

    def test_matches(self):
        assert self.adapter.matches(np.zeros(3))
        assert not self.adapter.matches([1, 2])

    def test_fresh_like_shape_dtype(self):
        src = np.zeros((2, 3), np.float32)
        fresh = self.adapter.fresh_like(src)
        assert fresh.shape == src.shape and fresh.dtype == src.dtype
        assert fresh is not src

    def test_clone_is_c_contiguous_copy(self):
        """The 'realigning data' effect: clones are fresh C-order."""

        src = np.asfortranarray(np.arange(6.0).reshape(2, 3))
        clone = self.adapter.clone(src)
        assert clone.flags["C_CONTIGUOUS"]
        assert np.array_equal(clone, src)
        clone[0, 0] = 99
        assert src[0, 0] == 0.0

    def test_write_back(self):
        base = np.zeros(4)
        self.adapter.write_back(base, np.ones(4))
        assert (base == 1.0).all()

    def test_write_back_shape_mismatch(self):
        with pytest.raises(RenamingError):
            self.adapter.write_back(np.zeros(4), np.zeros(5))


class TestOtherAdapters:
    def test_list_adapter(self):
        a = ListAdapter()
        src = [1, 2, 3]
        assert a.clone(src) == src and a.clone(src) is not src
        assert a.fresh_like(src) == [None, None, None]
        base = [0, 0, 0]
        a.write_back(base, [7, 8, 9])
        assert base == [7, 8, 9]

    def test_bytearray_adapter(self):
        a = BytearrayAdapter()
        src = bytearray(b"abc")
        assert a.clone(src) == src
        assert len(a.fresh_like(src)) == 3

    def test_generic_adapter_never_renames(self):
        a = GenericObjectAdapter()
        assert not a.renamable
        with pytest.raises(RenamingError):
            a.clone(object())

    def test_registry_dispatch(self):
        registry = default_registry()
        assert isinstance(registry.adapter_for(np.zeros(1)), NdarrayAdapter)
        assert isinstance(registry.adapter_for([1]), ListAdapter)
        assert isinstance(registry.adapter_for(bytearray(1)), BytearrayAdapter)
        assert isinstance(registry.adapter_for(object()), GenericObjectAdapter)


class TestVersionChains:
    def _datum(self, base):
        tracker = DependencyTracker(TaskGraph())
        return tracker.datum_for(base)

    def test_initial_storage_is_base(self):
        base = np.zeros(3)
        datum = self._datum(base)
        v = Version(datum, 0, StorageKind.INITIAL)
        assert v.resolve_storage() is base
        assert v.storage_is_base()

    def test_same_follows_prev(self):
        base = np.zeros(3)
        datum = self._datum(base)
        v0 = Version(datum, 0, StorageKind.INITIAL)
        v1 = Version(datum, 1, StorageKind.SAME, prev=v0)
        assert v1.resolve_storage() is base
        assert v1.storage_is_base()

    def test_fresh_materialises_once(self):
        base = np.zeros(3)
        datum = self._datum(base)
        v = Version(datum, 1, StorageKind.FRESH)
        first = v.resolve_storage()
        assert first is not base
        assert v.resolve_storage() is first
        assert not v.storage_is_base()
        assert datum.renamed_buffers == 1

    def test_clone_copies_prev_content(self):
        base = np.full(3, 5.0)
        datum = self._datum(base)
        v0 = Version(datum, 0, StorageKind.INITIAL)
        v1 = Version(datum, 1, StorageKind.CLONE, prev=v0)
        clone = v1.resolve_storage()
        assert (clone == 5.0).all()
        assert clone is not base

    def test_lazy_materialisation(self):
        base = np.zeros(3)
        datum = self._datum(base)
        v = Version(datum, 1, StorageKind.FRESH)
        assert not v.is_materialised
        v.resolve_storage()
        assert v.is_materialised


class TestRepresentants:
    def test_identity_tracking(self):
        rep = Representant("row0")
        assert "row0" in repr(rep)

    def test_table_one_per_key(self):
        table = RepresentantTable("blocks")
        a = table.for_key((0, 1))
        b = table.for_key((0, 1))
        c = table.for_key((1, 0))
        assert a is b
        assert a is not c
        assert len(table) == 2
        assert table.get((9, 9)) is None

    def test_representant_usable_as_task_parameter(self):
        from repro import css_task, SmpssRuntime

        sink = []

        @css_task("inout(rep) opaque(payload)")
        def touch(rep, payload):  # noqa: ARG001
            sink.append(len(sink))

        rep = Representant("region")
        payload = np.zeros(10)
        with SmpssRuntime(num_workers=2) as rt:
            for _ in range(5):
                touch(rep, payload)
            rt.barrier()
        # inout chain on the representant serialises the tasks.
        assert sink == [0, 1, 2, 3, 4]
