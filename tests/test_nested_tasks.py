"""Nested task calls run inline (sections VII.B and VII.D).

"OpenMP 3.0 supports nested tasks ... while SMPSs treats task calls
inside tasks as normal function calls."  A call to a ``@css_task``
function made from *within an executing task body* must execute the
plain function synchronously, on whichever thread is running the body —
never submit a nested task (which would also race the single-threaded
dependency analysis).
"""

import numpy as np
import pytest

from repro import SmpssRuntime, css_task
from repro.core.recorder import RecordingRuntime
from repro.sim import ALTIX_32, CostModel, SimulatedRuntime


@css_task("inout(a)")
def inner(a):
    a += 1


@css_task("inout(a)")
def outer(a):
    # A task calling another task: must behave as a normal call.
    inner(a)
    inner(a)
    a += 10


class TestThreadedNesting:
    def test_nested_calls_run_inline(self):
        data = np.zeros(1)
        with SmpssRuntime(num_workers=2, keep_graph=True) as rt:
            outer(data)
            rt.barrier()
            total_tasks = rt.graph.stats.total_tasks
        assert data[0] == 12.0
        assert total_tasks == 1  # only `outer` became a task

    def test_deep_recursion_inside_task(self):
        @css_task("inout(a) input(depth)")
        def recurse(a, depth):
            a += 1
            if depth > 0:
                recurse(a, depth - 1)  # inline, not nested submission

        data = np.zeros(1)
        with SmpssRuntime(num_workers=2, keep_graph=True) as rt:
            recurse(data, 9)
            rt.barrier()
            total_tasks = rt.graph.stats.total_tasks
        assert data[0] == 10.0
        assert total_tasks == 1

    def test_main_thread_helping_keeps_submitting_semantics(self):
        """Nested inlining applies to bodies the MAIN thread executes
        while helping, too (it is 'inside a task' there)."""

        data = np.zeros(1)
        with SmpssRuntime(num_workers=1, max_pending_tasks=2, keep_graph=True) as rt:
            for _ in range(20):
                outer(data)
            rt.barrier()
            total = rt.graph.stats.total_tasks
        assert data[0] == 240.0
        assert total == 20


class TestRecorderNesting:
    def test_eager_recorder_inlines_nested_calls(self):
        data = np.zeros(1)
        recorder = RecordingRuntime(execute="eager")
        with recorder:
            outer(data)
            recorder.barrier()
        prog = recorder.finish()
        assert prog.task_count == 1
        assert data[0] == 12.0


class TestSimulatedNesting:
    def test_execute_bodies_inlines_nested_calls(self):
        data = np.zeros(1)
        machine = ALTIX_32.with_cores(2)
        runtime = SimulatedRuntime(
            machine=machine,
            cost_model=CostModel(machine, block_size=4),
            execute_bodies=True,
        )
        with runtime:
            outer(data)
            runtime.barrier()
        assert data[0] == 12.0
        assert runtime.tasks_submitted == 1
