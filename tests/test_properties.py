"""Property-based tests: the runtime's core guarantee.

The central invariant of the whole paper: *an annotated program run in
parallel produces exactly the results of its sequential execution*, for
any program — any mix of input/output/inout accesses over any aliasing
pattern, with renaming firing or not depending on timing.

Hypothesis generates random straight-line task programs over a small
pool of arrays and checks threaded-parallel == sequential, with and
without renaming, plus region programs over random intervals.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import SmpssRuntime, css_task
from repro.core.recorder import RecordingRuntime

# ---------------------------------------------------------------------------
# A tiny task vocabulary with distinct directionality signatures.
# Every body is deterministic, so results are comparable bit-for-bit.
# ---------------------------------------------------------------------------


@css_task("input(a) output(b)")
def t_copy_scale(a, b):
    np.multiply(a, 2.0, out=b)


@css_task("input(a, b) output(c)")
def t_add(a, b, c):
    np.add(a, b, out=c)


@css_task("inout(a)")
def t_incr(a):
    a += 1.0


@css_task("input(a) inout(b)")
def t_acc(a, b):
    b += a


@css_task("inout(a) input(b)")
def t_mix(a, b):
    a *= 0.5
    a += b


OPS = [
    ("copy_scale", t_copy_scale, 2),
    ("add", t_add, 3),
    ("incr", t_incr, 1),
    ("acc", t_acc, 2),
    ("mix", t_mix, 2),
]


program_strategy = st.lists(
    st.tuples(
        st.integers(0, len(OPS) - 1),  # which op
        st.lists(st.integers(0, 5), min_size=3, max_size=3),  # array picks
    ),
    min_size=1,
    max_size=25,
)


def fresh_pool():
    return [np.full(4, float(i), dtype=np.float64) for i in range(6)]


def run_program(program, pool):
    for op_idx, picks in program:
        _name, task, arity = OPS[op_idx]
        args = [pool[p] for p in picks[:arity]]
        task(*args)


def pool_snapshot(pool):
    return [np.array(a) for a in pool]


def run_sequential(program):
    pool = fresh_pool()
    run_program(program, pool)
    return pool_snapshot(pool)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=program_strategy)
def test_threaded_equals_sequential(program):
    expected = run_sequential(program)
    pool = fresh_pool()
    with SmpssRuntime(num_workers=3) as rt:
        run_program(program, pool)
        rt.barrier()
    for got, want in zip(pool, expected):
        assert np.array_equal(got, want)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(program=program_strategy)
def test_threaded_without_renaming_equals_sequential(program):
    expected = run_sequential(program)
    pool = fresh_pool()
    with SmpssRuntime(num_workers=2, enable_renaming=False) as rt:
        run_program(program, pool)
        rt.barrier()
    for got, want in zip(pool, expected):
        assert np.array_equal(got, want)


@settings(max_examples=30, deadline=None)
@given(program=program_strategy)
def test_eager_recording_equals_sequential(program):
    expected = run_sequential(program)
    pool = fresh_pool()
    recorder = RecordingRuntime(execute="eager")
    with recorder:
        run_program(program, pool)
        recorder.barrier()
    for got, want in zip(pool, expected):
        assert np.array_equal(got, want)


@settings(max_examples=25, deadline=None)
@given(program=program_strategy, window=st.integers(1, 6))
def test_graph_window_does_not_change_results(program, window):
    expected = run_sequential(program)
    pool = fresh_pool()
    with SmpssRuntime(num_workers=2, max_pending_tasks=window) as rt:
        run_program(program, pool)
        rt.barrier()
    for got, want in zip(pool, expected):
        assert np.array_equal(got, want)


# ---------------------------------------------------------------------------
# Region programs: random interval reads/writes over one array.
# ---------------------------------------------------------------------------


@css_task("inout(data{i..j}) input(i, j)")
def r_negate(data, i, j):
    data[i : j + 1] *= -1.0

@css_task("inout(data{i..j}) input(i, j, v)")
def r_fill(data, i, j, v):
    data[i : j + 1] = float(v)


@css_task("input(data{i..j}, i, j) inout(acc)")
def r_sum(data, i, j, acc):
    acc += data[i : j + 1].sum()


region_program = st.lists(
    st.tuples(
        st.integers(0, 2),  # op: negate / fill / sum
        st.integers(0, 31),
        st.integers(0, 31),
        st.integers(-5, 5),
    ),
    min_size=1,
    max_size=20,
)


def run_region_program(program, data, acc):
    for op, x, y, v in program:
        i, j = min(x, y), max(x, y)
        if op == 0:
            r_negate(data, i, j)
        elif op == 1:
            r_fill(data, i, j, v)
        else:
            r_sum(data, i, j, acc)


@settings(max_examples=40, deadline=None)
@given(program=region_program)
def test_region_program_threaded_equals_sequential(program):
    data_seq = np.arange(32, dtype=np.float64)
    acc_seq = np.zeros(1)
    run_region_program(program, data_seq, acc_seq)

    data_par = np.arange(32, dtype=np.float64)
    acc_par = np.zeros(1)
    with SmpssRuntime(num_workers=3) as rt:
        run_region_program(program, data_par, acc_par)
        rt.barrier()
    assert np.array_equal(data_par, data_seq)
    assert np.array_equal(acc_par, acc_seq)


# ---------------------------------------------------------------------------
# Graph invariants under random programs
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(program=program_strategy)
def test_recorded_graph_is_acyclic_and_respects_program_order(program):
    import networkx as nx

    pool = fresh_pool()
    recorder = RecordingRuntime(execute="skip")
    with recorder:
        run_program(program, pool)
    prog = recorder.finish()
    g = prog.graph.to_networkx()
    assert nx.is_directed_acyclic_graph(g)
    # Dependencies always point forward in invocation order.
    for pred, succ in g.edges():
        assert pred < succ


@settings(max_examples=25, deadline=None)
@given(program=program_strategy)
def test_renaming_never_adds_edges(program):
    """With renaming, the edge set is a subset of the no-renaming one."""

    def edges(renaming):
        pool = fresh_pool()
        recorder = RecordingRuntime(execute="skip", enable_renaming=renaming)
        with recorder:
            run_program(program, pool)
        rec = recorder.finish()
        # Normalise ids: same program yields same numbering.
        return set((p, s) for p, s, _k in rec.graph.edges())

    assert edges(True) <= edges(False)
