"""End-to-end tests of the threaded runtime (sections II-III)."""

import threading

import numpy as np
import pytest
import scipy.linalg as sla

from repro import (
    SmpssRuntime,
    TaskExecutionError,
    css_task,
    current_runtime,
)
from repro.core.scheduler import CentralQueueScheduler


@css_task("input(a, b) output(c)")
def add_t(a, b, c):
    np.add(a, b, out=c)


@css_task("inout(a)")
def incr_t(a):
    a += 1


@css_task("input(a) inout(acc)")
def accum_t(a, acc):
    acc += a


class TestBasics:
    def test_single_task(self):
        a = np.ones(8)
        b = np.full(8, 2.0)
        c = np.zeros(8)
        with SmpssRuntime(num_workers=2) as rt:
            add_t(a, b, c)
            rt.barrier()
        assert (c == 3.0).all()

    def test_sequential_fallback_without_runtime(self):
        a = np.ones(4)
        incr_t(a)  # no runtime active: plain call
        assert (a == 2.0).all()

    def test_chain_order_preserved(self):
        a = np.zeros(1)
        with SmpssRuntime(num_workers=3) as rt:
            for _ in range(50):
                incr_t(a)
            rt.barrier()
        assert a[0] == 50

    def test_runtime_visible_inside_context(self):
        with SmpssRuntime(num_workers=1) as rt:
            assert current_runtime() is rt
        assert current_runtime() is None

    def test_barrier_then_more_work(self):
        a = np.zeros(1)
        with SmpssRuntime(num_workers=2) as rt:
            incr_t(a)
            rt.barrier()
            assert a[0] == 1
            incr_t(a)
            rt.barrier()
            assert a[0] == 2

    def test_stats_exposed(self):
        a = np.zeros(1)
        with SmpssRuntime(num_workers=1) as rt:
            incr_t(a)
            rt.barrier()
            stats = rt.stats()
        assert stats["tasks_executed"] == 1


class TestRenamingSemantics:
    def test_war_renaming_preserves_reader_value(self):
        """A reader pending when the datum is overwritten must still see
        the old value — the core renaming guarantee."""

        src = np.zeros(64)
        sink = [np.zeros(64) for _ in range(20)]
        zero = np.zeros(64)
        with SmpssRuntime(num_workers=3) as rt:
            for i in range(20):
                # read src into sink[i], then immediately clobber src.
                add_t(src, zero, sink[i])
                incr_t(src)
            rt.barrier()
        # sink[i] must have captured src after exactly i increments.
        for i, out in enumerate(sink):
            assert (out == float(i)).all(), f"reader {i} saw {out[0]}"
        assert (src == 20.0).all()  # write-back restored the final value

    def test_inout_accumulation_correct_under_parallelism(self):
        acc = np.zeros(4)
        ones = np.ones(4)
        with SmpssRuntime(num_workers=3) as rt:
            for _ in range(30):
                accum_t(ones, acc)
            rt.barrier()
        assert (acc == 30.0).all()


class TestNumericalApps:
    def test_threaded_cholesky_matches_scipy(self):
        from repro.apps.cholesky import cholesky_flat

        size, m = 128, 32
        rng = np.random.default_rng(3)
        x = rng.standard_normal((size, size))
        spd = (x @ x.T + size * np.eye(size)).astype(np.float64)
        work = np.array(spd)
        with SmpssRuntime(num_workers=3) as rt:
            cholesky_flat(work, m)
            rt.barrier()
        expected = sla.cholesky(spd, lower=True)
        assert np.allclose(np.tril(work), expected, atol=1e-8)

    def test_threaded_strassen_matches_numpy(self):
        from repro.apps.strassen import strassen_multiply
        from repro.blas.hypermatrix import HyperMatrix

        a = HyperMatrix.random(4, 8, np.float64, seed=1)
        b = HyperMatrix.random(4, 8, np.float64, seed=2)
        c = HyperMatrix.zeros(4, 8, np.float64)
        with SmpssRuntime(num_workers=2) as rt:
            strassen_multiply(a, b, c)
            rt.barrier()
        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense(), atol=1e-9)

    def test_threaded_multisort(self):
        from repro.apps.multisort import multisort

        rng = np.random.default_rng(7)
        data = rng.standard_normal(4096).astype(np.float32)
        expected = np.sort(data)
        with SmpssRuntime(num_workers=3):
            multisort(data, quicksize=128)
        assert (data == expected).all()

    def test_threaded_nqueens(self):
        from repro.apps.nqueens import KNOWN_SOLUTIONS, nqueens_smpss_count

        with SmpssRuntime(num_workers=3):
            count = nqueens_smpss_count(8)
        assert count == KNOWN_SOLUTIONS[8]

    def test_threaded_lu_regions(self):
        from repro.apps.lu import lu_blocked, lu_reconstruct

        rng = np.random.default_rng(11)
        original = rng.standard_normal((48, 48))
        work = np.array(original)
        with SmpssRuntime(num_workers=2):
            ipiv = lu_blocked(work, 12)
        assert np.allclose(lu_reconstruct(work, ipiv), original, atol=1e-9)


class TestErrorHandling:
    def test_task_exception_raised_at_barrier(self):
        @css_task("inout(a)")
        def boom(a):  # noqa: ARG001
            raise ValueError("kaput")

        a = np.zeros(1)
        rt = SmpssRuntime(num_workers=2)
        rt.start()
        try:
            boom(a)
            with pytest.raises(TaskExecutionError, match="boom"):
                rt.barrier()
        finally:
            with pytest.raises(TaskExecutionError):
                rt.shutdown()

    def test_submit_after_failure_raises(self):
        @css_task("inout(a)")
        def boom(a):  # noqa: ARG001
            raise RuntimeError("no")

        a = np.zeros(1)
        rt = SmpssRuntime(num_workers=1)
        rt.start()
        try:
            boom(a)
            with pytest.raises(TaskExecutionError):
                rt.barrier()
        finally:
            try:
                rt.shutdown()
            except TaskExecutionError:
                pass

    def test_workers_joined_after_shutdown(self):
        before = threading.active_count()
        rt = SmpssRuntime(num_workers=3)
        rt.start()
        rt.shutdown()
        assert threading.active_count() == before


class TestBlockingConditions:
    def test_graph_size_window(self):
        """The main thread helps when the graph exceeds the limit."""

        a = np.zeros(1)
        with SmpssRuntime(num_workers=1, max_pending_tasks=5) as rt:
            for _ in range(100):
                incr_t(a)
            assert rt.graph.pending_count <= 6
            rt.barrier()
        assert a[0] == 100

    def test_wait_for_single_task(self):
        a = np.zeros(1)
        with SmpssRuntime(num_workers=2) as rt:
            t = incr_t(a)
            rt.wait_for(t)
            assert t.state.value == "finished"
            rt.barrier()

    def test_acquire_returns_latest_storage(self):
        a = np.zeros(4)
        with SmpssRuntime(num_workers=2) as rt:
            incr_t(a)
            latest = rt.acquire(a)
            assert (latest == 1.0).all()
            rt.barrier()

    def test_acquire_untracked_object(self):
        with SmpssRuntime(num_workers=1) as rt:
            obj = np.zeros(2)
            assert rt.acquire(obj) is obj


class TestSchedulerSwap:
    def test_central_queue_ablation_still_correct(self):
        a = np.zeros(1)
        with SmpssRuntime(
            num_workers=2, scheduler_factory=CentralQueueScheduler
        ) as rt:
            for _ in range(20):
                incr_t(a)
            rt.barrier()
        assert a[0] == 20

    def test_renaming_disabled_still_correct(self):
        src = np.zeros(8)
        sinks = [np.zeros(8) for _ in range(10)]
        zero = np.zeros(8)
        with SmpssRuntime(num_workers=2, enable_renaming=False) as rt:
            for i in range(10):
                add_t(src, zero, sinks[i])
                incr_t(src)
            rt.barrier()
        for i, out in enumerate(sinks):
            assert (out == float(i)).all()


class TestTracing:
    def test_trace_events_recorded(self):
        a = np.zeros(1)
        rt = SmpssRuntime(num_workers=1, trace=True)
        with rt:
            incr_t(a)
            incr_t(a)
            rt.barrier()
        counts = rt.tracer.counts()
        assert counts["task_added"] == 2
        assert counts["task_start"] == 2
        assert counts["task_end"] == 2
        assert counts["barrier_enter"] >= 1
        intervals = rt.tracer.task_intervals()
        assert len(intervals) == 2
        assert rt.tracer.makespan() > 0
