"""repro.live unit layer: wire format, dashboard state, replay engine."""

import json
import threading

import pytest

from repro.core.recorder import load_recording, record_program
from repro.core.tracing import EventKind, TraceEvent
from repro.live import DashboardState, ReplayEngine, render
from repro.live.protocol import (
    decode,
    encode,
    event_to_delta,
    format_address,
    parse_address,
)

pytestmark = pytest.mark.live


class TestWireFormat:
    def test_encode_decode_roundtrip(self):
        record = {"ev": "task", "id": 3, "name": "sgemm_t", "state": "done"}
        line = encode(record)
        assert line.endswith(b"\n")
        assert decode(line[:-1]) == record

    def test_decode_rejects_garbage(self):
        assert decode(b"") is None
        assert decode(b"not json") is None
        assert decode(b"[1,2]") is None  # non-object JSON

    def test_parse_address_tcp(self):
        assert parse_address("tcp:127.0.0.1:4242") == ("tcp", "127.0.0.1", 4242)
        assert parse_address("tcp:localhost:0") == ("tcp", "localhost", 0)
        with pytest.raises(ValueError):
            parse_address("tcp:9999")

    def test_parse_address_unix(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")

    def test_format_address_roundtrip(self):
        for spec in ("tcp:127.0.0.1:4242", "/tmp/x.sock"):
            assert format_address(parse_address(spec)) == spec


class TestEventToDelta:
    def _task(self):
        class T:
            task_id = 7
            name = "spotrf_t"
        return T()

    def test_task_lifecycle_kinds(self):
        expected = {
            EventKind.TASK_ADDED: "submitted",
            EventKind.TASK_READY: "ready",
            EventKind.TASK_START: "running",
            EventKind.TASK_END: "done",
        }
        for kind, state in expected.items():
            event = TraceEvent(time=1.5, kind=kind, task_id=7,
                               task_name="spotrf_t", thread=2)
            delta = event_to_delta(event)
            assert delta == {"ev": "task", "id": 7, "name": "spotrf_t",
                             "state": state, "t": 1.5, "thread": 2}

    def test_edge_event(self):
        event = TraceEvent(time=0.0, kind=EventKind.EDGE_ADDED,
                           task_id=9, extra=(4, "true"))
        assert event_to_delta(event) == {
            "ev": "edge", "src": 4, "dst": 9, "kind": "true",
        }

    def test_steal_and_marks(self):
        steal = TraceEvent(time=0.0, kind=EventKind.STEAL, task_id=3,
                           thread=1, extra=("victim", 2))
        assert event_to_delta(steal) == {
            "ev": "steal", "id": 3, "thief": 1, "victim": 2,
        }
        mark = TraceEvent(time=2.0, kind=EventKind.BARRIER_ENTER, thread=0)
        assert event_to_delta(mark) == {
            "ev": "mark", "what": "barrier_enter", "t": 2.0, "thread": 0,
        }

    def test_deltas_are_json_serialisable(self):
        event = TraceEvent(time=0.25, kind=EventKind.RENAME, task_id=1,
                           extra=("ndarray", "output"))
        json.dumps(event_to_delta(event))


class TestDashboardState:
    def _feed(self, state, records):
        for record in records:
            state.apply(record)

    def test_task_lifecycle_and_counts(self):
        state = DashboardState()
        self._feed(state, [
            {"ev": "task", "id": 1, "name": "a", "state": "submitted",
             "t": 0.0, "thread": -1},
            {"ev": "task", "id": 1, "name": "a", "state": "ready",
             "t": 0.1, "thread": -1},
            {"ev": "task", "id": 1, "name": "a", "state": "running",
             "t": 0.2, "thread": 1},
            {"ev": "task", "id": 1, "name": "a", "state": "done",
             "t": 0.7, "thread": 1},
        ])
        assert state.counts() == {"done": 1}
        info = state.tasks[1]
        assert info["start"] == 0.2 and info["end"] == 0.7
        assert info["thread"] == 1

    def test_out_of_order_state_never_regresses(self):
        state = DashboardState()
        self._feed(state, [
            {"ev": "task", "id": 1, "name": "a", "state": "done",
             "t": 1.0, "thread": 0},
            # mp master can see `done` before the worker's `running`
            # ships back with the reply.
            {"ev": "task", "id": 1, "name": "a", "state": "running",
             "t": 0.5, "thread": 0},
        ])
        assert state.tasks[1]["state"] == "done"

    def test_edge_before_submission_materialises_placeholders(self):
        state = DashboardState()
        state.apply({"ev": "edge", "src": 1, "dst": 2, "kind": "true"})
        assert set(state.tasks) == {1, 2}
        assert len(state.edges) == 1
        # A later submitted delta fills in the name.
        state.apply({"ev": "task", "id": 2, "name": "b",
                     "state": "submitted", "t": 0.0, "thread": -1})
        assert state.tasks[2]["name"] == "b"

    def test_duplicate_edges_collapse(self):
        state = DashboardState()
        state.apply({"ev": "edge", "src": 1, "dst": 2, "kind": "true"})
        state.apply({"ev": "edge", "src": 1, "dst": 2, "kind": "true"})
        assert len(state.edges) == 1

    def test_critical_path_depth_chain(self):
        state = DashboardState()
        for i in (1, 2, 3):
            state.apply({"ev": "task", "id": i, "name": "t",
                         "state": "submitted", "t": 0.0, "thread": -1})
        state.apply({"ev": "edge", "src": 1, "dst": 2, "kind": "true"})
        state.apply({"ev": "edge", "src": 2, "dst": 3, "kind": "true"})
        assert state.critical_path_depth() == 3
        # An independent task does not deepen the chain.
        state.apply({"ev": "task", "id": 4, "name": "t",
                     "state": "submitted", "t": 0.0, "thread": -1})
        assert state.critical_path_depth() == 3

    def test_report_over_completed_work(self):
        state = DashboardState()
        for i, (start, end, thread) in enumerate(
            [(0.0, 1.0, 0), (1.0, 2.0, 1)], start=1
        ):
            state.apply({"ev": "task", "id": i, "name": "w",
                         "state": "running", "t": start, "thread": thread})
            state.apply({"ev": "task", "id": i, "name": "w",
                         "state": "done", "t": end, "thread": thread})
        report = state.report(num_threads=2)
        assert report.total_tasks == 2
        assert report.makespan == pytest.approx(2.0)

    def test_render_smoke(self):
        state = DashboardState()
        state.apply({"ev": "hello", "backend": "threads", "threads": 4})
        state.apply({"ev": "task", "id": 1, "name": "a",
                     "state": "running", "t": 0.0, "thread": 0})
        state.apply({"ev": "note", "text": "paused"})
        state.apply({"ev": "snapshot", "paused": True, "ready": 0,
                     "running": 1, "parked": 3, "pending": 1,
                     "break_names": ["a"], "break_ids": [],
                     "workers": [{"id": 1, "name": "a"}, None],
                     "depths": {"high": 0, "main": 0, "locals": [0, 0]}})
        text = render(state)
        assert "PAUSED" in text
        assert "breaks=a" in text
        assert "(idle)" in text


def _diamond_program():
    import numpy as np

    from repro import css_task

    @css_task("inout(x)")
    def root(x):
        x += 1

    @css_task("input(x) output(y)")
    def branch(x, y):
        y[...] = x + 1

    @css_task("input(a, b) output(c)")
    def join(a, b, c):
        c[...] = a + b

    x = np.zeros(4)
    a, b, c = np.zeros(4), np.zeros(4), np.zeros(4)
    root(x)
    branch(x, a)
    branch(x, b)
    join(a, b, c)


class TestServerFraming:
    def test_concurrent_acks_and_deltas_keep_line_framing(self):
        """Publisher deltas and reader-thread acks write to the same
        socket; without the per-client write lock two ``sendall`` calls
        can interleave partial writes and corrupt the framing (lost
        acks hang commands, lost deltas leave gaps)."""

        from repro.live.client import LiveClient
        from repro.live.server import LiveServer

        server = LiveServer(
            "tcp:127.0.0.1:0",
            lambda command: {"cmd": command.get("cmd")},
            hello={"version": 1},
        )
        total = 3000
        try:
            with LiveClient(server.address, timeout=10.0) as client:
                assert client.hello["version"] == 1

                def flood():
                    for i in range(total):
                        server.publish(
                            {"ev": "note", "i": i}, retain=False
                        )

                publisher = threading.Thread(target=flood)
                publisher.start()
                # Commands race the flood: each one writes an ack from
                # the server's reader thread mid-stream.
                acks = [client.ping() for _ in range(150)]
                publisher.join(timeout=30.0)
                assert not publisher.is_alive()
                assert len(acks) == 150

                notes = [
                    r["i"]
                    for r in client.drain(idle=0.2, limit=2 * total)
                    if r.get("ev") == "note"
                ]
                # Every published line must arrive exactly once, in
                # order — any framing corruption shows up as a gap.
                assert notes == list(range(total))
        finally:
            server.close()


class TestRecordingPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        program = record_program(_diamond_program)
        path = tmp_path / "diamond.recording.json"
        program.save(str(path))
        loaded = load_recording(str(path))
        assert loaded.task_count == program.task_count == 4
        assert len(loaded.edges) == program.graph.stats.total_edges
        kinds = {tuple(e[:2]): e[2] for e in loaded.edges}
        for pred, succ, kind in program.graph.edges():
            assert kinds[(pred, succ)] == kind
        # The stream's shape survives too (4 tasks, one barrier absent —
        # record_program has no explicit barrier here).
        assert [e[0] for e in loaded.stream].count("task") == 4

    def test_load_accepts_dict_and_program(self):
        program = record_program(_diamond_program)
        from_dict = load_recording(program.to_json_dict())
        from_prog = load_recording(program)
        assert from_dict.tasks == from_prog.tasks
        assert from_dict.edges == from_prog.edges

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="not a repro recording"):
            load_recording(str(path))


class TestReplayEngine:
    def _engine(self, **kwargs):
        program = record_program(_diamond_program)
        return ReplayEngine(program.to_json_dict(), **kwargs)

    def test_reset_submits_everything(self):
        engine = self._engine()
        sig = engine.dashboard.signature()
        assert sig["tasks"] == 4
        assert sig["done"] == 0
        assert engine.ready_count == 1  # only the root has no deps

    def test_step_respects_dependencies(self):
        engine = self._engine()
        assert engine.step(1) == 1
        # Root done; both branches released, join still blocked.
        assert engine.dashboard.counts()["done"] == 1
        assert engine.ready_count == 2
        assert engine.step(10) == 3  # only 3 tasks remain
        assert engine.remaining == 0

    def test_time_travel_back_is_deterministic(self):
        engine = self._engine()
        engine.step(3)
        forward = {
            tid: dict(info) for tid, info in engine.dashboard.tasks.items()
        }
        engine.back(2)
        assert engine.units == 1
        engine.step(2)
        again = {
            tid: dict(info) for tid, info in engine.dashboard.tasks.items()
        }
        assert forward == again

    def test_back_to_zero(self):
        engine = self._engine()
        engine.run()
        assert engine.remaining == 0
        engine.back(10_000)
        assert engine.units == 0
        assert engine.dashboard.counts().get("done", 0) == 0

    def test_run_completes_and_snapshot_reflects_it(self):
        engine = self._engine(num_threads=2)
        engine.run()
        snap = engine.dashboard.snapshot
        assert snap["pending"] == 0
        assert snap["executed"] == 4
        assert engine.dashboard.signature()["done"] == 4
