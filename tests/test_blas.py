"""Tests for the BLAS substrate: kernels vs naive references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blas import kernels, reference
from repro.blas.flat import alloc_block, from_blocked, get_block, put_block, to_blocked
from repro.blas.hypermatrix import HyperMatrix
from repro.blas.kernels import KernelError


def rand(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape)


class TestGemm:
    def test_matches_reference(self):
        a, b, c = rand((4, 3), 0), rand((3, 5), 1), rand((4, 5), 2)
        expected = reference.ref_gemm(a, b, c)
        kernels.gemm(a, b, c)
        assert np.allclose(c, expected)

    def test_shape_check(self):
        with pytest.raises(KernelError):
            kernels.gemm(np.ones((2, 3)), np.ones((2, 3)), np.ones((2, 2)))

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_property_random_shapes(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        c = rng.standard_normal((m, n))
        expected = reference.ref_gemm(a, b, c)
        kernels.gemm(a, b, c)
        assert np.allclose(c, expected)


class TestGemmNt:
    def test_matches_reference(self):
        a, b, c = rand((4, 3), 0), rand((5, 3), 1), rand((4, 5), 2)
        expected = reference.ref_gemm_nt(a, b, c)
        kernels.gemm_nt(a, b, c)
        assert np.allclose(c, expected)


class TestSyrk:
    def test_matches_reference(self):
        a, b = rand((4, 3), 0), rand((4, 4), 1)
        expected = reference.ref_syrk(a, b)
        kernels.syrk(a, b)
        assert np.allclose(b, expected)


class TestTrsm:
    def test_matches_reference(self):
        l = np.tril(rand((4, 4), 0)) + 4 * np.eye(4)
        b = rand((6, 4), 1)
        expected = reference.ref_trsm(l, b)
        work = np.array(b)
        kernels.trsm(l, work)
        assert np.allclose(work, expected, atol=1e-9)

    def test_solves_the_system(self):
        l = np.tril(rand((5, 5), 2)) + 5 * np.eye(5)
        b = rand((3, 5), 3)
        x = np.array(b)
        kernels.trsm(l, x)
        assert np.allclose(x @ l.T, b, atol=1e-9)


class TestPotrf:
    def test_matches_reference(self):
        x = rand((5, 5), 4)
        spd = x @ x.T + 5 * np.eye(5)
        expected = reference.ref_potrf(spd)
        work = np.array(spd)
        kernels.potrf(work)
        assert np.allclose(np.tril(work), expected, atol=1e-9)

    def test_factor_reconstructs(self):
        x = rand((6, 6), 5)
        spd = x @ x.T + 6 * np.eye(6)
        work = np.array(spd)
        kernels.potrf(work)
        l = np.tril(work)
        assert np.allclose(l @ l.T, spd, atol=1e-8)

    @given(st.integers(2, 8), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_property_reconstruction(self, size, seed):
        x = np.random.default_rng(seed).standard_normal((size, size))
        spd = x @ x.T + size * np.eye(size)
        work = np.array(spd)
        kernels.potrf(work)
        l = np.tril(work)
        assert np.allclose(l @ l.T, spd, atol=1e-7)


class TestElementwise:
    def test_add_sub_copy(self):
        a, b = rand((3, 3), 0), rand((3, 3), 1)
        c = np.empty((3, 3))
        kernels.geadd(a, b, c)
        assert np.allclose(c, a + b)
        kernels.gesub(a, b, c)
        assert np.allclose(c, a - b)
        kernels.gecopy(a, c)
        assert np.allclose(c, a)


class TestFlops:
    def test_known_counts(self):
        assert kernels.flops_of("gemm", 4) == 128
        assert kernels.flops_of("geadd", 3) == 9
        assert kernels.flops_of("gecopy", 100) == 0

    def test_unknown_kernel(self):
        with pytest.raises(KernelError):
            kernels.flops_of("nope", 4)


class TestLuReference:
    def test_lu_reconstructs(self):
        a = rand((7, 7), 9)
        l, u, perm = reference.ref_lu_partial_pivot(a)
        assert np.allclose(l @ u, a[perm], atol=1e-9)


class TestHyperMatrix:
    def test_from_to_dense_roundtrip(self):
        dense = rand((12, 12), 0).astype(np.float32)
        hm = HyperMatrix.from_dense(dense, 4)
        assert hm.n == 3 and hm.m == 4
        assert np.array_equal(hm.to_dense(), dense)

    def test_indexing_styles(self):
        hm = HyperMatrix.zeros(2, 3)
        assert hm[0][1] is hm[0, 1]

    def test_alloc_block_idempotent(self):
        hm = HyperMatrix(2, 3)
        first = hm.alloc_block(0, 0)
        assert hm.alloc_block(0, 0) is first

    def test_sparse_density(self):
        hm = HyperMatrix.random_sparse(10, 2, density=0.0, seed=0)
        assert hm.block_count() == 0
        hm = HyperMatrix.random_sparse(10, 2, density=1.0, seed=0)
        assert hm.block_count() == 100

    def test_spd_is_positive_definite(self):
        hm = HyperMatrix.random_spd(3, 4, seed=1)
        eigenvalues = np.linalg.eigvalsh(hm.to_dense())
        assert (eigenvalues > 0).all()

    def test_block_shape_validation(self):
        hm = HyperMatrix(2, 3)
        with pytest.raises(ValueError):
            hm[0, 0] = np.zeros((4, 4))

    def test_divisibility_check(self):
        with pytest.raises(ValueError, match="divisible"):
            HyperMatrix.from_dense(np.zeros((10, 10)), 3)

    def test_copy_is_deep(self):
        hm = HyperMatrix.zeros(2, 2)
        dup = hm.copy()
        dup[0][0][0, 0] = 5.0
        assert hm[0][0][0, 0] == 0.0

    def test_lower_to_dense(self):
        hm = HyperMatrix.from_dense(np.ones((4, 4), np.float32), 2)
        lower = hm.lower_to_dense()
        assert np.array_equal(lower, np.tril(np.ones((4, 4), np.float32)))


class TestFlatHelpers:
    def test_get_put_roundtrip(self):
        flat = rand((8, 8), 0).astype(np.float32)
        block = alloc_block(4, np.float32)
        get_block(1, 0, flat, block)
        assert np.array_equal(block, flat[4:8, 0:4])
        block[...] = 7.0
        put_block(1, 0, block, flat)
        assert (flat[4:8, 0:4] == 7.0).all()

    def test_to_from_blocked(self):
        flat = rand((6, 6), 1).astype(np.float32)
        grid = to_blocked(flat, 2)
        out = np.zeros_like(flat)
        from_blocked(grid, out)
        assert np.array_equal(out, flat)

    def test_to_blocked_divisibility(self):
        with pytest.raises(ValueError):
            to_blocked(np.zeros((5, 5)), 2)
