"""Stress the split-lock submit/complete hot path.

PR 4 replaced the runtime's single condition variable with a tracker
lock (dependency analysis, readiness capture) and a scheduler lock
(ready lists, wakeups).  The races these iterations hunt:

* submit-vs-complete double push — a task analysed as blocked whose
  last predecessor completes concurrently must be pushed ready exactly
  once, never twice and never zero times;
* lost wakeups — the main thread parking at a barrier (or the
  max-pending gate) while the last completion's notify slips by;
* readiness miscount — ``num_pending_deps`` reads outside the tracker
  lock observing a torn update.

Each scenario runs 100 iterations with the access sanitizer on, so a
double-executed task (two concurrent writers of one buffer) is caught
even when the final values happen to come out right.
"""

import numpy as np
import pytest

from repro import SmpssRuntime, css_task

ITERATIONS = 100


@css_task("input(src) output(dst)")
def _produce(src, dst):
    dst[...] = src + 1.0


@css_task("input(src) inout(acc)")
def _consume(src, acc):
    acc += src


@css_task("inout(a)")
def _bump(a):
    a += 1.0


class TestSplitLockStress:
    def test_fanout_submit_vs_complete(self):
        """Independent tasks completing while later ones are analysed.

        ``enable_renaming=False`` keeps every round-robin output datum
        on one version chain, so submission keeps taking the tracker
        lock while workers complete earlier tasks against the same
        chains — the widest submit/complete overlap the engine sees.
        """

        for _ in range(ITERATIONS):
            src = np.ones(16)
            dsts = [np.zeros(16) for _ in range(8)]
            with SmpssRuntime(
                num_workers=3, enable_renaming=False, sanitize=True
            ) as rt:
                for i in range(48):
                    _produce(src, dsts[i % 8])
                rt.barrier()
            for dst in dsts:
                assert (dst == 2.0).all()

    def test_two_level_ready_race(self):
        """Consumers become ready exactly when their producer finishes.

        Submitting consumer(i) races worker completion of producer(i):
        the readiness decision (push now vs push on complete) must be
        atomic with the analysis, or a task is pushed twice (sanitizer
        sees two writers) or never (barrier hangs).
        """

        for _ in range(ITERATIONS):
            src = np.zeros(8)
            mids = [np.zeros(8) for _ in range(6)]
            acc = np.zeros(8)
            with SmpssRuntime(num_workers=3, sanitize=True) as rt:
                for i in range(24):
                    mid = mids[i % 6]
                    _produce(src, mid)
                    _consume(mid, acc)
                rt.barrier()
            assert (acc == 24.0).all()

    def test_serial_chain_with_interleaved_barriers(self):
        """Barrier wakeups under a pure serial chain (worst wakeup rate).

        Every completion readies exactly one successor and the main
        thread keeps re-parking; a single lost notify deadlocks the
        barrier (the bug class the dedicated main-thread CV guards).
        """

        for _ in range(ITERATIONS):
            a = np.zeros(4)
            with SmpssRuntime(num_workers=2, sanitize=True) as rt:
                for _ in range(10):
                    _bump(a)
                rt.barrier()
                for _ in range(10):
                    _bump(a)
                rt.barrier()
            assert (a == 20.0).all()

    def test_max_pending_gate_under_load(self):
        """The graph-window gate: main helps instead of sleeping forever.

        With ``max_pending_tasks`` far below the submission count, the
        main thread repeatedly blocks on the window and must be woken
        (or help) as workers drain it; a missed wakeup here stalls
        submission, not the barrier.
        """

        for _ in range(ITERATIONS // 4):
            a = np.zeros(4)
            with SmpssRuntime(
                num_workers=2, max_pending_tasks=4, sanitize=True
            ) as rt:
                for _ in range(40):
                    _bump(a)
                rt.barrier()
            assert (a == 40.0).all()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_sweep(self, workers):
        """The same mixed workload is correct at every worker count."""

        for _ in range(ITERATIONS // 10):
            src = np.ones(8)
            dst = np.zeros(8)
            acc = np.zeros(8)
            with SmpssRuntime(num_workers=workers, sanitize=True) as rt:
                for _ in range(12):
                    _produce(src, dst)
                    _consume(dst, acc)
                rt.barrier()
            assert (acc == 24.0).all()
