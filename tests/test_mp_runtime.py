"""End-to-end tests of the process backend (repro.mp).

Everything the threaded runtime guarantees must hold bit-for-bit under
``backend="processes"``: dependency order, renaming, regions, error
propagation, tracing.  On top of that the backend adds its own
contracts — transparent arena shipping, pickle+write-back for non-arena
storage, one automatic re-dispatch after a worker death, and clean
shared-memory teardown — which are what this module pins down.
"""

import os
import signal

import numpy as np
import pytest

from repro import (
    RuntimeConfig,
    SharedArena,
    SmpssRuntime,
    TaskExecutionError,
    arena_array,
    css_task,
)
from repro.core.config import resolve_config
from repro.mp import (
    MpSerializationError,
    RemoteTaskError,
    WorkerLostError,
    leaked_segment_files,
)

pytestmark = pytest.mark.mp


# ---------------------------------------------------------------------------
# task definitions (module level so workers resolve them by name)
# ---------------------------------------------------------------------------

@css_task("input(a, b) inout(c)")
def gemm_t(a, b, c):
    c += a @ b


@css_task("inout(a)")
def incr_t(a):
    a += 1


@css_task("input(a, b) output(c)")
def add_t(a, b, c):
    np.add(a, b, out=c)


@css_task("input(c) inout(acc)")
def accum_t(c, acc):
    acc += c


@css_task("inout(a)")
def potrf_t(a):
    n = a.shape[0]
    for j in range(n):
        a[j, j] = np.sqrt(a[j, j] - a[j, :j] @ a[j, :j])
        for i in range(j + 1, n):
            a[i, j] = (a[i, j] - a[i, :j] @ a[j, :j]) / a[j, j]
    a[np.triu_indices(n, 1)] = 0.0


@css_task("inout(data{i..j}) input(i, j, v)")
def fill_region_t(data, i, j, v):
    data[i:j + 1] = v


@css_task("inout(xs)")
def double_list_t(xs):
    for k in range(len(xs)):
        xs[k] *= 2


@css_task("input(x)")
def boom_t(x):
    raise ValueError(f"kaboom {x}")


@css_task("opaque(p) input(n)")
def opaque_write_t(p, n):
    p[:n] = 1.0


@css_task("inout(flag{k..k}, out{k..k}) input(k)")
def die_once_t(flag, out, k):
    if flag[k] == 0:
        flag[k] = 1
        os.kill(os.getpid(), signal.SIGKILL)
    out[k] = 2 * k


@css_task("input(x)")
def always_die_t(x):
    os.kill(os.getpid(), signal.SIGKILL)


def _sequential_gemm_chain(a, b, c, rounds):
    for _ in range(rounds):
        c += a @ b


# ---------------------------------------------------------------------------
# configuration surface
# ---------------------------------------------------------------------------

class TestConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(TypeError, match="backend"):
            resolve_config(None, {"backend": "fibers"})

    def test_sanitize_plus_processes_rejected_with_hint(self):
        with pytest.raises(
            TypeError, match="sanitizer guards thread-backend views only"
        ):
            resolve_config(None, {"backend": "processes", "sanitize": True})

    def test_sanitize_plus_processes_rejected_via_runtime(self):
        with pytest.raises(TypeError, match="thread-backend"):
            SmpssRuntime(num_workers=2, backend="processes", sanitize=True)

    def test_config_object_path_also_validated(self):
        cfg = RuntimeConfig(backend="processes", sanitize=True)
        with pytest.raises(TypeError, match="sanitize"):
            resolve_config(cfg, {})


# ---------------------------------------------------------------------------
# backend parity: bitwise-identical results
# ---------------------------------------------------------------------------

def _run_gemm(backend, a_src, b_src, rounds=4):
    with SharedArena() as arena:
        a = arena.array(a_src)
        b = arena.array(b_src)
        c = arena.zeros(a_src.shape)
        with SmpssRuntime(num_workers=2, backend=backend) as rt:
            for _ in range(rounds):
                gemm_t(a, b, c)
            rt.barrier()
        return np.array(c)


def _run_cholesky(backend, spd):
    with SharedArena() as arena:
        w = arena.array(spd)
        with SmpssRuntime(num_workers=2, backend=backend) as rt:
            potrf_t(w)
            rt.barrier()
        return np.array(w)


class TestBackendParity:
    def test_matmul_bitwise_identical(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((24, 24))
        b = rng.standard_normal((24, 24))
        threads = _run_gemm("threads", a, b)
        processes = _run_gemm("processes", a, b)
        assert np.array_equal(threads, processes)
        expect = np.zeros_like(a)
        _sequential_gemm_chain(a, b, expect, 4)
        assert np.allclose(processes, expect)

    def test_cholesky_bitwise_identical(self):
        rng = np.random.default_rng(11)
        g = rng.standard_normal((16, 16))
        spd = g @ g.T + 16 * np.eye(16)
        threads = _run_cholesky("threads", spd)
        processes = _run_cholesky("processes", spd)
        assert np.array_equal(threads, processes)
        assert np.allclose(processes @ processes.T, spd)

    def test_dependency_chain_order(self):
        with SharedArena() as arena:
            a = arena.zeros((1,))
            with SmpssRuntime(num_workers=3, backend="processes") as rt:
                for _ in range(25):
                    incr_t(a)
                rt.barrier()
            assert a[0] == 25

    def test_wait_for_under_processes(self):
        with SharedArena() as arena:
            a = arena.zeros((4,))
            with SmpssRuntime(num_workers=2, backend="processes") as rt:
                t = incr_t(a)
                rt.wait_for(t)
                assert (np.array(a) == 1.0).all()
                rt.barrier()


# ---------------------------------------------------------------------------
# the pickle + write-back path (non-arena storage)
# ---------------------------------------------------------------------------

class TestWriteBack:
    def test_plain_ndarrays_round_trip(self):
        # No arena anywhere: inputs pickle out, outputs copy back.
        a = np.ones((8, 8))
        b = np.full((8, 8), 2.0)
        c = np.zeros((8, 8))
        with SmpssRuntime(num_workers=2, backend="processes") as rt:
            add_t(a, b, c)
            rt.barrier()
        assert (c == 3.0).all()

    def test_war_renaming_with_pickled_buffers(self):
        # The core renaming guarantee under the process backend: a
        # reader pending when the datum is overwritten must still see
        # the old value.  Renamed buffers are master-allocated plain
        # arrays, so every generation ships out by pickle and the final
        # value returns through write-back.
        src = np.zeros(16)
        sink = [np.zeros(16) for _ in range(12)]
        zero = np.zeros(16)
        with SmpssRuntime(num_workers=2, backend="processes") as rt:
            for i in range(12):
                add_t(src, zero, sink[i])
                incr_t(src)
            rt.barrier()
        for i, out in enumerate(sink):
            assert (out == float(i)).all(), f"reader {i} saw {out[0]}"
        assert (src == 12.0).all()

    def test_region_writeback_merges_disjoint_writes(self):
        data = np.zeros(32)
        with SmpssRuntime(num_workers=2, backend="processes") as rt:
            fill_region_t(data, 0, 15, 3.0)
            fill_region_t(data, 16, 31, 5.0)
            rt.barrier()
        assert (data[:16] == 3.0).all()
        assert (data[16:] == 5.0).all()

    def test_list_writeback(self):
        xs = [1, 2, 3, 4]
        with SmpssRuntime(num_workers=1, backend="processes") as rt:
            double_list_t(xs)
            rt.barrier()
        assert xs == [2, 4, 6, 8]

    def test_scalars_ship_by_pickle(self):
        data = np.zeros(8)
        with SmpssRuntime(num_workers=1, backend="processes") as rt:
            fill_region_t(data, 2, 5, 9.0)
            rt.barrier()
        assert (data[2:6] == 9.0).all()
        assert data[0] == 0.0 and data[6] == 0.0


# ---------------------------------------------------------------------------
# failure propagation
# ---------------------------------------------------------------------------

class TestErrors:
    def test_remote_exception_becomes_task_execution_error(self):
        with pytest.raises(TaskExecutionError) as excinfo:
            with SmpssRuntime(num_workers=1, backend="processes") as rt:
                boom_t(3)
                rt.barrier()
        cause = excinfo.value.__cause__
        assert isinstance(cause, RemoteTaskError)
        assert cause.exc_type == "ValueError"
        assert "kaboom 3" in str(cause)
        assert "remote traceback" in str(cause)

    def test_opaque_ndarray_must_be_arena_backed(self):
        with pytest.raises(TaskExecutionError) as excinfo:
            with SmpssRuntime(num_workers=1, backend="processes") as rt:
                opaque_write_t(np.zeros(8), 4)
                rt.barrier()
        assert isinstance(excinfo.value.__cause__, MpSerializationError)
        assert "arena" in str(excinfo.value.__cause__)

    def test_opaque_arena_ndarray_writes_through(self):
        with SharedArena() as arena:
            p = arena.zeros((8,))
            with SmpssRuntime(num_workers=1, backend="processes") as rt:
                opaque_write_t(p, 4)
                rt.barrier()
            assert (np.array(p[:4]) == 1.0).all()
            assert (np.array(p[4:]) == 0.0).all()


# ---------------------------------------------------------------------------
# dead-worker recovery
# ---------------------------------------------------------------------------

class TestWorkerLoss:
    def test_killed_worker_task_redispatched_once(self):
        with SharedArena() as arena:
            flag = arena.zeros((1,), np.int64)
            out = arena.zeros((1,), np.int64)
            with SmpssRuntime(num_workers=1, backend="processes") as rt:
                die_once_t(flag, out, 0)
                rt.barrier()
                deaths = rt.metrics.counter("mp.worker_deaths").value
                redispatched = rt.metrics.counter(
                    "mp.redispatched_tasks"
                ).value
            assert out[0] == 0
            assert flag[0] == 1
            assert deaths == 1
            assert redispatched == 1

    def test_second_loss_raises_naming_task_and_worker(self):
        with pytest.raises(TaskExecutionError) as excinfo:
            with SmpssRuntime(num_workers=1, backend="processes") as rt:
                always_die_t(1)
                rt.barrier()
        cause = excinfo.value.__cause__
        assert isinstance(cause, WorkerLostError)
        assert "always_die_t" in str(cause)
        assert "worker" in str(cause)

    def test_runtime_survives_a_loss_and_keeps_working(self):
        with SharedArena() as arena:
            flag = arena.zeros((1,), np.int64)
            out = arena.zeros((1,), np.int64)
            a = arena.zeros((1,))
            with SmpssRuntime(num_workers=2, backend="processes") as rt:
                die_once_t(flag, out, 0)
                rt.barrier()
                for _ in range(10):
                    incr_t(a)
                rt.barrier()
            assert a[0] == 10

    def test_stress_loop_with_sporadic_kills(self):
        # One runtime, 100 tasks, every 10th killed once mid-task.
        # Deterministic: the kill decision lives in arena memory, so the
        # re-dispatched attempt sees flag==1 and completes.
        n = 100
        with SharedArena() as arena:
            flag = arena.zeros((n,), np.int64)
            out = arena.zeros((n,), np.int64)
            flag[:] = 1
            flag[::10] = 0
            names = list(arena.segment_names)
            with SmpssRuntime(num_workers=2, backend="processes") as rt:
                for k in range(n):
                    die_once_t(flag, out, k)
                rt.barrier()
                deaths = rt.metrics.counter("mp.worker_deaths").value
            # Killed tasks re-ran with the flag already set in shared
            # memory, so every slot holds its final value.
            assert np.array_equal(np.array(out), 2 * np.arange(n))
            assert deaths == 10
        leaked = leaked_segment_files()
        assert not any(name in leaked for name in names)


# ---------------------------------------------------------------------------
# observability across the process boundary
# ---------------------------------------------------------------------------

class TestTraceMerge:
    def test_worker_events_merge_into_master_timeline(self):
        with SharedArena() as arena:
            a = arena.zeros((1,))
            with SmpssRuntime(
                num_workers=2, backend="processes", trace=True
            ) as rt:
                for _ in range(8):
                    incr_t(a)
                rt.barrier()
                intervals = rt.tracer.task_intervals()
        assert len(intervals) == 8
        threads = {thread for _s, _e, thread, _n in intervals.values()}
        # Worker processes appear as worker-thread indices (>= 1); the
        # main thread never runs bodies under the process backend.
        assert threads <= {1, 2}
        assert threads
        for start, end, _thread, name in intervals.values():
            assert end >= start
            assert name == "incr_t"

    def test_report_renders_with_remote_events(self):
        with SharedArena() as arena:
            a = arena.zeros((1,))
            with SmpssRuntime(
                num_workers=2, backend="processes", trace=True
            ) as rt:
                incr_t(a)
                rt.barrier()
                report = rt.report()
        assert "report" in report


# ---------------------------------------------------------------------------
# teardown hygiene
# ---------------------------------------------------------------------------

class TestShutdown:
    def test_no_worker_processes_leak(self):
        with SmpssRuntime(num_workers=2, backend="processes") as rt:
            pids = list(rt._mp.worker_pids)
            assert len(pids) == 2
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_exit_on_exception_still_stops_workers(self):
        pids = []
        with pytest.raises(RuntimeError, match="boom"):
            with SmpssRuntime(num_workers=2, backend="processes") as rt:
                pids = list(rt._mp.worker_pids)
                raise RuntimeError("boom")
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)
