"""Tests for the tracing-enabled runtime (section VII.A)."""

import threading

import numpy as np
import pytest

from repro import SmpssRuntime, css_task
from repro.core.tracing import (
    EventKind,
    NullTracer,
    ThreadLocalTracer,
    Tracer,
)

pytestmark = pytest.mark.obs


@css_task("inout(a)")
def bump(a):
    a += 1


class TestTracer:
    def _run_traced(self, tasks=3, workers=2):
        a = np.zeros(1)
        rt = SmpssRuntime(num_workers=workers, trace=True)
        with rt:
            for _ in range(tasks):
                bump(a)
            rt.barrier()
        return rt.tracer

    def test_event_stream_structure(self):
        tracer = self._run_traced(tasks=4)
        counts = tracer.counts()
        assert counts[EventKind.TASK_ADDED] == 4
        assert counts[EventKind.TASK_START] == 4
        assert counts[EventKind.TASK_END] == 4
        assert counts[EventKind.BARRIER_ENTER] == counts[EventKind.BARRIER_EXIT]

    def test_intervals_and_makespan(self):
        tracer = self._run_traced(tasks=5)
        intervals = tracer.task_intervals()
        assert len(intervals) == 5
        for start, end, thread, name in intervals.values():
            assert end >= start
            assert thread >= 0
            assert name == "bump"
        assert tracer.makespan() >= 0

    def test_busy_time_by_thread(self):
        tracer = self._run_traced(tasks=6)
        busy = tracer.busy_time_by_thread()
        assert sum(busy.values()) > 0
        assert sum(tracer.tasks_by_thread().values()) == 6

    def test_records_export(self):
        tracer = self._run_traced()
        records = list(tracer.to_records())
        assert len(records) == len(tracer.events)
        assert all(":" in r for r in records)

    def test_ascii_timeline(self):
        tracer = self._run_traced(tasks=4)
        art = tracer.ascii_timeline(width=40)
        assert "thr" in art
        assert "b" in art  # glyph = first letter of task name

    def test_ascii_timeline_empty(self):
        assert "no task intervals" in Tracer().ascii_timeline()

    def test_virtual_clock_injection(self):
        times = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(times)))
        tracer.barrier_enter()
        tracer.barrier_exit()
        assert [e.time for e in tracer.events] == [0.0, 1.0]


class TestNullTracer:
    def test_is_falsy_and_swallows_everything(self):
        tracer = NullTracer()
        assert not tracer
        tracer.task_start(None, 3)
        tracer.anything_at_all(1, 2, 3)
        assert tracer.events == []

    def test_events_not_shared_between_instances(self):
        """Regression: ``events`` was a class-level mutable list, so one
        instance's pollution showed up on every other NullTracer."""

        first, second = NullTracer(), NullTracer()
        assert first.events is not second.events
        first.events.append("polluted")
        assert second.events == []
        assert NullTracer().events == []


class TestTaskReadyThread:
    def test_task_ready_records_releasing_thread(self):
        class _Task:
            task_id, name = 7, "t"

        tracer = Tracer(clock=lambda: 0.0)
        tracer.task_ready(_Task())
        tracer.task_ready(_Task(), 2)
        ready = tracer.of_kind(EventKind.TASK_READY)
        assert [e.thread for e in ready] == [-1, 2]


class TestThreadLocalTracer:
    def test_same_interface_and_queries(self):
        """Drop-in for Tracer: same emit API, same post-mortem queries."""

        a = np.zeros(1)
        rt = SmpssRuntime(num_workers=2, trace=True)
        with rt:
            for _ in range(5):
                bump(a)
            rt.barrier()
        tracer = rt.tracer
        assert isinstance(tracer, ThreadLocalTracer)
        counts = tracer.counts()
        assert counts[EventKind.TASK_START] == 5
        assert counts[EventKind.TASK_END] == 5
        assert len(tracer.task_intervals()) == 5
        assert sum(tracer.busy_time_by_thread().values()) > 0
        assert tracer.makespan() >= 0
        assert tracer.to_paraver().startswith("#Paraver")

    def test_merge_is_time_ordered(self):
        tracer = ThreadLocalTracer()
        barrier = threading.Barrier(3)

        class _Task:
            task_id, name = 1, "t"

        def emit(thread_id):
            barrier.wait()
            for _ in range(200):
                tracer.task_start(_Task(), thread_id)
        threads = [
            threading.Thread(target=emit, args=(i,)) for i in (1, 2, 3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = tracer.events
        assert len(events) == 600
        times = [e.time for e in events]
        assert times == sorted(times)
        # All three buffers contributed.
        assert {e.thread for e in events} == {1, 2, 3}

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = ThreadLocalTracer(clock=lambda: 0.0, capacity=4)

        class _Task:
            name = "t"

            def __init__(self, i):
                self.task_id = i

        for i in range(10):
            tracer.task_start(_Task(i), 0)
        assert len(tracer.events) == 4
        assert tracer.dropped_events == 6
        # The survivors are the *newest* events.
        assert [e.task_id for e in tracer.events] == [6, 7, 8, 9]

    def test_virtual_clock_injection(self):
        times = iter(range(100))
        tracer = ThreadLocalTracer(clock=lambda: float(next(times)))
        tracer.barrier_enter()
        tracer.barrier_exit()
        assert [e.time for e in tracer.events] == [0.0, 1.0]
        # Swapping the clock afterwards (VirtualMachine.wire_tracer
        # style) affects subsequent events only.
        tracer.clock = lambda: 50.0
        tracer.write_back(1)
        assert tracer.events[-1].time == 50.0

    def test_per_thread_buffers_registered_lazily(self):
        tracer = ThreadLocalTracer()
        assert len(tracer._buffers) == 0
        tracer.barrier_enter()
        assert len(tracer._buffers) == 1

        def other():
            tracer.barrier_enter()

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert len(tracer._buffers) == 2


class TestIngestOutOfOrder:
    """Worker-ring batches land *after* the fact (mp replies ship them
    with the result), so their timestamps may predate events already in
    the stream.  Every time-ordered consumer must sort, not trust list
    order — a regression here silently drops Chrome-trace slices."""

    @staticmethod
    def _interval_events(task_id, name, start, end, thread):
        from repro.core.tracing import TraceEvent

        return [
            TraceEvent(time=start, kind=EventKind.TASK_START,
                       task_id=task_id, task_name=name, thread=thread),
            TraceEvent(time=end, kind=EventKind.TASK_END,
                       task_id=task_id, task_name=name, thread=thread),
        ]

    def _tracer_with_interleaved_rings(self, tracer):
        """Two worker rings ingested late, timestamps interleaved with
        (and preceding) an event the master already recorded."""

        tracer.clock = lambda: 10.0

        class _Task:
            task_id, name = 99, "master"

        tracer.task_start(_Task(), 0)
        tracer.clock = lambda: 11.0
        tracer.task_end(_Task(), 0)
        # Ring batches arrive afterwards but happened *earlier*; ring
        # two's interval nests inside ring one's wall-clock span.
        tracer.ingest(self._interval_events(1, "w1", 2.0, 6.0, 1))
        tracer.ingest(self._interval_events(2, "w2", 3.0, 5.0, 2))
        return tracer

    @pytest.mark.parametrize("factory", [Tracer, ThreadLocalTracer])
    def test_task_intervals_survive_late_batches(self, factory):
        tracer = self._tracer_with_interleaved_rings(factory())
        intervals = tracer.task_intervals()
        assert intervals[1] == (2.0, 6.0, 1, "w1")
        assert intervals[2] == (3.0, 5.0, 2, "w2")
        assert intervals[99] == (10.0, 11.0, 0, "master")

    @pytest.mark.parametrize("factory", [Tracer, ThreadLocalTracer])
    def test_chrome_export_is_time_ordered(self, factory):
        from repro.obs.export import to_chrome_trace

        tracer = self._tracer_with_interleaved_rings(factory())
        doc = to_chrome_trace(tracer)
        slices = [r for r in doc["traceEvents"] if r["ph"] in ("B", "E")]
        # Globally time-sorted, so each tid's sub-sequence is too and
        # Chrome's B/E matching never sees an E before its B.
        assert [r["ts"] for r in slices] == sorted(r["ts"] for r in slices)
        opened = {}
        for record in slices:
            key = record["args"]["task_id"]
            if record["ph"] == "B":
                opened[key] = record["ts"]
            else:
                assert key in opened, "E before B would drop the slice"
                assert record["ts"] >= opened.pop(key)
        assert not opened
        # All three intervals survived as slices (2 records each).
        assert len(slices) == 6
