"""Tests for the tracing-enabled runtime (section VII.A)."""

import numpy as np

from repro import SmpssRuntime, css_task
from repro.core.tracing import EventKind, NullTracer, Tracer


@css_task("inout(a)")
def bump(a):
    a += 1


class TestTracer:
    def _run_traced(self, tasks=3, workers=2):
        a = np.zeros(1)
        rt = SmpssRuntime(num_workers=workers, trace=True)
        with rt:
            for _ in range(tasks):
                bump(a)
            rt.barrier()
        return rt.tracer

    def test_event_stream_structure(self):
        tracer = self._run_traced(tasks=4)
        counts = tracer.counts()
        assert counts[EventKind.TASK_ADDED] == 4
        assert counts[EventKind.TASK_START] == 4
        assert counts[EventKind.TASK_END] == 4
        assert counts[EventKind.BARRIER_ENTER] == counts[EventKind.BARRIER_EXIT]

    def test_intervals_and_makespan(self):
        tracer = self._run_traced(tasks=5)
        intervals = tracer.task_intervals()
        assert len(intervals) == 5
        for start, end, thread, name in intervals.values():
            assert end >= start
            assert thread >= 0
            assert name == "bump"
        assert tracer.makespan() >= 0

    def test_busy_time_by_thread(self):
        tracer = self._run_traced(tasks=6)
        busy = tracer.busy_time_by_thread()
        assert sum(busy.values()) > 0
        assert sum(tracer.tasks_by_thread().values()) == 6

    def test_records_export(self):
        tracer = self._run_traced()
        records = list(tracer.to_records())
        assert len(records) == len(tracer.events)
        assert all(":" in r for r in records)

    def test_ascii_timeline(self):
        tracer = self._run_traced(tasks=4)
        art = tracer.ascii_timeline(width=40)
        assert "thr" in art
        assert "b" in art  # glyph = first letter of task name

    def test_ascii_timeline_empty(self):
        assert "no task intervals" in Tracer().ascii_timeline()

    def test_virtual_clock_injection(self):
        times = iter(range(100))
        tracer = Tracer(clock=lambda: float(next(times)))
        tracer.barrier_enter()
        tracer.barrier_exit()
        assert [e.time for e in tracer.events] == [0.0, 1.0]


class TestNullTracer:
    def test_is_falsy_and_swallows_everything(self):
        tracer = NullTracer()
        assert not tracer
        tracer.task_start(None, 3)
        tracer.anything_at_all(1, 2, 3)
        assert tracer.events == []
