"""repro.live control plane: DispatchGate, scheduler gating, session."""

import threading
import time

import numpy as np
import pytest

from repro import css_task
from repro.core.config import RuntimeConfig, resolve_config
from repro.core.runtime import SmpssRuntime
from repro.core.scheduler import (
    CentralQueueScheduler,
    DispatchGate,
    SmpssScheduler,
)
from repro.core.task import TaskDefinition, TaskInstance

pytestmark = pytest.mark.live


def task(name="t", hp=False):
    defn = TaskDefinition(func=lambda: None, params=(), name=name)
    return TaskInstance(definition=defn, accesses=[], arguments={},
                        high_priority=hp)


class TestDispatchGate:
    def test_open_gate_admits(self):
        gate = DispatchGate()
        assert gate.admit()
        assert gate.state()["paused"] is False

    def test_pause_blocks_admission(self):
        gate = DispatchGate()
        gate.pause()
        assert not gate.admit()
        assert not gate.admit()

    def test_step_grants_exact_ticket_count(self):
        gate = DispatchGate()
        gate.step(2)
        assert gate.paused  # step implies pause
        assert gate.admit()
        assert gate.admit()
        assert not gate.admit()

    def test_resume_clears_pause_and_budget(self):
        gate = DispatchGate()
        gate.step(5)
        gate.resume()
        assert not gate.paused
        assert gate.step_budget == 0
        assert gate.admit()

    def test_step_rejects_nonpositive(self):
        gate = DispatchGate()
        with pytest.raises(ValueError):
            gate.step(0)

    def test_break_requires_name_or_id(self):
        gate = DispatchGate()
        with pytest.raises(ValueError):
            gate.add_break()

    def test_breakpoint_by_name_holds_once(self):
        gate = DispatchGate()
        gate.add_break(name="spotrf_t")
        t = task("spotrf_t")
        assert gate.should_hold(t)
        assert gate.paused
        assert gate.holds == 1
        # The very same instance passes on its next dispatch, so
        # step/resume run *through* the breakpoint.
        assert not gate.should_hold(t)
        # ...but only once: the skip is consumed.
        assert gate.should_hold(t)

    def test_breakpoint_by_id(self):
        gate = DispatchGate()
        t = task("anything")
        gate.add_break(task_id=t.task_id)
        assert gate.should_hold(t)
        gate.remove_break(task_id=t.task_id)
        other = task("anything")
        assert not gate.should_hold(other)

    def test_non_matching_task_passes(self):
        gate = DispatchGate()
        gate.add_break(name="spotrf_t")
        assert not gate.should_hold(task("sgemm_t"))
        assert not gate.paused

    def test_clear_breaks_also_drops_skip_set(self):
        gate = DispatchGate()
        gate.add_break(name="w")
        t = task("w")
        assert gate.should_hold(t)  # t now in the skip set
        gate.clear_breaks()
        gate.add_break(name="w")
        # A fresh breakpoint re-holds the instance: no stale skip.
        assert gate.should_hold(t)

    def test_on_hold_callback_sees_the_task(self):
        gate = DispatchGate()
        seen = []
        gate.on_hold = seen.append
        gate.add_break(name="w")
        t = task("w")
        gate.should_hold(t)
        assert seen == [t]

    def test_state_is_plain_data(self):
        gate = DispatchGate()
        gate.step(3)
        gate.add_break(name="b", task_id=9)
        state = gate.state()
        assert state == {
            "paused": True,
            "step_budget": 3,
            "break_names": ["b"],
            "break_ids": [9],
            "holds": 0,
        }


class TestSchedulerGating:
    @pytest.mark.parametrize("factory", [
        lambda: SmpssScheduler(num_threads=2),
        lambda: CentralQueueScheduler(num_threads=2),
    ])
    def test_paused_pop_returns_none(self, factory):
        s = factory()
        s.gate = DispatchGate()
        s.push_new(task())
        s.gate.pause()
        assert s.pop(0) is None
        assert s.pop(1) is None
        assert s.ready_count == 1  # nothing consumed

    @pytest.mark.parametrize("factory", [
        lambda: SmpssScheduler(num_threads=2),
        lambda: CentralQueueScheduler(num_threads=2),
    ])
    def test_step_releases_one_task(self, factory):
        s = factory()
        s.gate = DispatchGate()
        a, b = task("a"), task("b")
        s.push_new(a)
        s.push_new(b)
        s.gate.pause()
        s.gate.step(1)
        assert s.pop(0) is a
        assert s.pop(0) is None  # budget spent
        s.gate.resume()
        assert s.pop(0) is b

    @pytest.mark.parametrize("factory", [
        lambda: SmpssScheduler(num_threads=2),
        lambda: CentralQueueScheduler(num_threads=2),
    ])
    def test_held_task_requeued_at_head(self, factory):
        s = factory()
        s.gate = DispatchGate()
        s.gate.add_break(name="hot")
        hot, cold = task("hot"), task("cold")
        s.push_new(hot)
        s.push_new(cold)
        assert s.pop(0) is None  # hot held at the boundary
        assert s.gate.paused
        assert s.ready_count == 2
        s.gate.step(1)
        # The held instance comes back first (head of the high list)
        # and its skip entry lets it through this time.
        assert s.pop(0) is hot

    @pytest.mark.parametrize("factory", [
        lambda: SmpssScheduler(num_threads=2),
        lambda: CentralQueueScheduler(num_threads=2),
    ])
    def test_install_occupies_slot_only_while_engaged(self, factory):
        s = factory()
        gate = DispatchGate()
        gate.install(s)
        assert s.gate is None  # wide open: dispatch pays nothing
        gate.pause()
        assert s.gate is gate
        s.push_new(task())
        assert s.pop(0) is None
        gate.resume()
        assert s.gate is None
        assert s.pop(0) is not None
        gate.add_break(name="t")
        assert s.gate is gate
        gate.clear_breaks()
        assert s.gate is None

    def test_queue_depths_shape(self):
        s = SmpssScheduler(num_threads=2)
        s.push_new(task(hp=True))
        s.push_new(task())
        depths = s.queue_depths()
        assert depths == {"high": 1, "main": 1, "locals": [0, 0]}
        c = CentralQueueScheduler(num_threads=2)
        assert c.queue_depths()["locals"] == []


class TestConfigKnobs:
    def test_live_address_implies_live(self):
        resolved = resolve_config(RuntimeConfig(live_address="tcp:127.0.0.1:0"))
        assert resolved.live

    def test_start_paused_implies_live(self):
        resolved = resolve_config(RuntimeConfig(live_start_paused=True))
        assert resolved.live

    def test_live_implies_trace(self):
        resolved = resolve_config(RuntimeConfig(live=True))
        assert resolved.trace

    def test_defaults_stay_dark(self):
        resolved = resolve_config(RuntimeConfig())
        assert not resolved.live
        assert resolved.live_address is None
        assert not resolved.live_start_paused


@css_task("inout(x)")
def _bump(x):
    x += 1


class TestRuntimeIntegration:
    def test_gauges_published_without_live(self):
        arr = np.zeros(1)
        with SmpssRuntime(num_workers=2) as rt:
            for _ in range(4):
                _bump(arr)
            rt.barrier()
        snap = rt.metrics.snapshot()
        assert "scheduler.high_depth" in snap
        assert "scheduler.main_depth" in snap
        assert "scheduler.parked_workers" in snap
        assert snap["scheduler.paused"] == 0
        assert snap["scheduler.step_budget"] == 0
        # One ready-depth gauge per thread (main + 2 workers).
        assert "thread=0" in snap["scheduler.ready_depth"]

    def test_live_session_handle_exposed(self):
        arr = np.zeros(1)
        with SmpssRuntime(num_workers=1, live=True) as rt:
            assert rt.live is not None
            # A disengaged gate vacates the scheduler slot (zero-cost
            # dispatch); engaging any control installs it.
            assert rt.scheduler.gate is None
            rt.live.pause()
            assert rt.scheduler.gate is rt.live.gate
            rt.live.resume()
            assert rt.scheduler.gate is None
            address = rt.live.address
            assert address  # bound somewhere usable
            _bump(arr)
            rt.barrier()
        assert rt.live is None  # torn down on shutdown
        assert arr[0] == 1

    def test_pause_blocks_and_resume_completes(self):
        arr = np.zeros(8)

        @css_task("inout(x)")
        def slow_bump(x):
            x += 1

        with SmpssRuntime(num_workers=2, live=True,
                          live_start_paused=True) as rt:
            for _ in range(6):
                slow_bump(arr)
            # The gate is down: give would-be dispatchers a beat and
            # check nothing ran.
            time.sleep(0.15)
            assert rt.tasks_executed == 0
            state = rt.live.state()
            assert state["paused"]
            rt.live.resume()
            rt.barrier()
            assert rt.tasks_executed == 6
        assert arr[0] == 6

    def test_step_runs_exactly_n_tasks(self):
        arr = np.zeros(1)
        with SmpssRuntime(num_workers=1, live=True,
                          live_start_paused=True) as rt:
            for _ in range(5):
                _bump(arr)
            rt.live.step(2)
            deadline = time.monotonic() + 5.0
            while rt.tasks_executed < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.1)  # would expose a runaway third dispatch
            assert rt.tasks_executed == 2
            rt.live.resume()
            rt.barrier()
        assert arr[0] == 5

    def test_shutdown_releases_a_paused_gate(self):
        # A paused runtime with queued work must not hang shutdown —
        # the exit barrier auto-releases the gate.
        arr = np.zeros(1)
        done = threading.Event()

        def drive():
            with SmpssRuntime(num_workers=1, live=True) as rt:
                _bump(arr)
                rt.live.pause()
                rt.live.add_break(name="_bump")
            done.set()

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        assert done.wait(timeout=20.0), "shutdown hung on a paused gate"
        thread.join(timeout=5.0)
        assert arr[0] == 1

    def test_breakpoint_holds_then_steps_through(self):
        arr = np.zeros(1)
        with SmpssRuntime(num_workers=1, live=True) as rt:
            rt.live.add_break(name="_bump")
            _bump(arr)
            deadline = time.monotonic() + 5.0
            while rt.live.gate.holds == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert rt.live.gate.holds == 1
            assert rt.tasks_executed == 0
            rt.live.clear_breaks()
            rt.live.resume()
            rt.barrier()
        assert arr[0] == 1
