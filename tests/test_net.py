"""repro.net: the shared transport every networked surface rides on.

The live/health suites already exercise the transport end to end
through their wrappers; this file pins the extraction contract itself —
the wrapper classes ARE the shared ones, the historical import paths
still resolve, and the generic Server/Client pair works standalone
(including deferred-hello servers, which no wrapper exercises
directly).
"""

import threading

import pytest

import repro.net as net
from repro.net import Client, NetClosed, NetTimeout, Server

pytestmark = pytest.mark.live


class TestExtractionContract:
    def test_live_server_is_a_net_server(self):
        from repro.live.server import LiveServer

        assert issubclass(LiveServer, Server)

    def test_live_client_is_a_net_client(self):
        from repro.live.client import LiveClient

        assert issubclass(LiveClient, Client)

    def test_live_exceptions_are_net_exceptions(self):
        from repro.live.client import LiveClosed, LiveTimeout

        assert LiveTimeout is NetTimeout
        assert LiveClosed is NetClosed

    def test_wire_helpers_are_shared(self):
        import repro.live.protocol as live_protocol
        import repro.net.protocol as net_protocol

        for name in ("encode", "decode", "parse_address",
                     "format_address", "connect"):
            assert getattr(live_protocol, name) is getattr(
                net_protocol, name
            ), name

    def test_exposition_rides_the_shared_server(self):
        from repro.obs.exposition import ExpositionServer

        server = ExpositionServer("tcp:127.0.0.1:0")
        try:
            assert isinstance(server._server, Server)
        finally:
            server.close()


class TestStandaloneServer:
    def _serve(self, **kwargs):
        def handler(command):
            if command.get("cmd") == "echo":
                return {"echo": command.get("value")}
            raise ValueError(f"unknown command {command.get('cmd')!r}")

        return Server(
            "tcp:127.0.0.1:0", handler, hello={"service": "test"}, **kwargs
        )

    def test_hello_then_command_roundtrip(self):
        server = self._serve()
        try:
            with Client(server.address, timeout=5.0) as client:
                assert client.hello.get("service") == "test"
                assert client.command("echo", value=7) == {"echo": 7}
                with pytest.raises(RuntimeError, match="unknown command"):
                    client.command("nope")
        finally:
            server.close()

    def test_publish_reaches_connected_clients(self):
        server = self._serve()
        try:
            with Client(server.address, timeout=5.0) as client:
                server.publish({"ev": "tick", "n": 1})
                record = client.recv(timeout=5.0)
                assert record == {"ev": "tick", "n": 1}
        finally:
            server.close()

    def test_history_replayed_to_late_attacher(self):
        server = self._serve()
        try:
            server.publish({"ev": "tick", "n": 1})
            server.publish({"ev": "tick", "n": 2}, retain=False)
            server.publish({"ev": "tick", "n": 3})
            with Client(server.address, timeout=5.0) as client:
                assert client.recv(timeout=5.0)["n"] == 1
                # n=2 was not retained; next retained line is n=3.
                assert client.recv(timeout=5.0)["n"] == 3
        finally:
            server.close()

    def test_deferred_hello_with_http_responder(self):
        # With an http_responder the hello only lands after the first
        # client bytes identify the protocol — expect_hello=False plus
        # a first command is the JSON-lines handshake.
        def responder(handler, path):
            body = b"hi"
            return (b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n"
                    b"Connection: close\r\n\r\n" + body)

        server = self._serve(http_responder=responder)
        try:
            client = Client(server.address, timeout=5.0, expect_hello=False)
            try:
                assert client.command("echo", value="x") == {"echo": "x"}
                # The deferred hello arrived before the ack and was
                # parked on the pending buffer.
                hellos = [r for r in client.drain(idle=0.05)
                          if r.get("ev") == "hello"]
                assert len(hellos) == 1
            finally:
                client.detach()
        finally:
            server.close()

    def test_http_get_served_on_same_port(self):
        import socket as socketmod

        def responder(handler, path):
            body = path.encode()
            head = (f"HTTP/1.1 200 OK\r\nContent-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n").encode()
            return head + body

        server = self._serve(http_responder=responder)
        try:
            host, port = server.address[4:].rsplit(":", 1)
            sock = socketmod.create_connection((host, int(port)), timeout=5.0)
            try:
                sock.sendall(b"GET /metrics HTTP/1.1\r\n\r\n")
                page = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    page += chunk
            finally:
                sock.close()
            assert page.startswith(b"HTTP/1.1 200 OK")
            assert page.endswith(b"/metrics")
        finally:
            server.close()

    def test_close_says_bye(self):
        server = self._serve()
        client = Client(server.address, timeout=5.0)
        barrier = threading.Event()
        try:
            server.close()
            barrier.wait(0.05)
            with pytest.raises(NetClosed):
                # bye (or the dropped socket) surfaces as NetClosed.
                while True:
                    client.recv(timeout=5.0)
        finally:
            client.close()


# ---------------------------------------------------------------------------
# client hardening: bounded connect retries with exponential backoff
# ---------------------------------------------------------------------------

class TestConnectRetry:
    def test_gives_up_after_bounded_attempts(self):
        from repro.net import connect_retry

        sleeps = []
        with pytest.raises(ConnectionError) as exc:
            connect_retry(
                "tcp:127.0.0.1:1",  # reserved port: nothing listens
                timeout=0.2, attempts=4,
                backoff_base=0.05, backoff_max=0.2,
                sleep=sleeps.append,
            )
        # 3 sleeps between 4 attempts, doubling and capped.
        assert sleeps == [0.05, 0.1, 0.2]
        assert "4 attempt(s)" in str(exc.value)

    def test_backoff_is_capped(self):
        from repro.net import connect_retry

        sleeps = []
        with pytest.raises(ConnectionError):
            connect_retry(
                "tcp:127.0.0.1:1", timeout=0.2, attempts=6,
                backoff_base=0.1, backoff_max=0.25,
                sleep=sleeps.append,
            )
        assert sleeps == [0.1, 0.2, 0.25, 0.25, 0.25]

    def test_attempts_must_be_positive(self):
        from repro.net import connect_retry

        with pytest.raises(ValueError):
            connect_retry("tcp:127.0.0.1:1", attempts=0)

    def test_succeeds_once_server_appears(self):
        import socket as socketmod

        from repro.net import connect_retry

        listener = socketmod.socket()
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        spec = f"tcp:127.0.0.1:{port}"

        calls = []

        def late_listen(delay):
            calls.append(delay)
            listener.listen(1)  # only now do connects succeed

        sock = connect_retry(
            spec, timeout=2.0, attempts=5, backoff_base=0.01,
            sleep=late_listen,
        )
        try:
            assert calls  # first attempt failed, retry happened
        finally:
            sock.close()
            listener.close()

    def test_client_exposes_connect_knobs(self):
        server = Server(
            "tcp:127.0.0.1:0", lambda cmd: {"ok": True},
            hello={"service": "test"},
        )
        try:
            client = Client(
                server.address, timeout=5.0,
                connect_timeout=2.0, connect_attempts=3,
                backoff_base=0.01, backoff_max=0.05,
            )
            assert client.hello.get("service") == "test"
            client.close()
        finally:
            server.close()
