"""Tests for the simulated SMPSs runtime and baselines."""

import numpy as np
import pytest

from repro.apps import cholesky, matmul
from repro.apps.nqueens import nqueens_smpss_count
from repro.blas.hypermatrix import HyperMatrix
from repro.core.scheduler import CentralQueueScheduler
from repro.sim import (
    ALTIX_32,
    CostModel,
    MachineConfig,
    SimulatedRuntime,
    forkjoin_cholesky_time,
    forkjoin_matmul_time,
    run_static,
    simulate_program,
)
from repro.sim.baselines import (
    build_multisort_dag,
    build_nqueens_dag,
    nqueens_prefix_stats,
    queens_node_cost_for_granularity,
    scheduler_for_model,
    sequential_nqueens_time,
)


def sym_hyper(n):
    hm = HyperMatrix(n, 1, np.float32)
    for i in range(n):
        for j in range(n):
            hm[i, j] = np.zeros((1, 1), np.float32)
    return hm


def simulate_cholesky(n_blocks, block_size, cores, **kwargs):
    machine = ALTIX_32.with_cores(cores)
    cost = CostModel(machine, block_size=block_size)
    return simulate_program(
        cholesky.cholesky_hyper,
        sym_hyper(n_blocks),
        machine=machine,
        cost_model=cost,
        **kwargs,
    )


class TestSimulatedRuntime:
    def test_all_tasks_execute(self):
        res = simulate_cholesky(6, 128, cores=4)
        assert res.tasks_executed == 56

    def test_monotone_speedup(self):
        times = [simulate_cholesky(12, 128, cores=c).makespan for c in (1, 2, 4, 8)]
        assert times[0] > times[1] > times[2] > times[3]

    def test_speedup_bounded_by_cores(self):
        t1 = simulate_cholesky(12, 128, cores=1).makespan
        t8 = simulate_cholesky(12, 128, cores=8).makespan
        assert 1.0 < t1 / t8 <= 8.0

    def test_single_core_executes_serially(self):
        res = simulate_cholesky(6, 128, cores=1)
        assert res.tasks_executed == 56
        assert res.busy_time[0] == pytest.approx(res.makespan, rel=0.05)

    def test_determinism(self):
        a = simulate_cholesky(8, 128, cores=4)
        b = simulate_cholesky(8, 128, cores=4)
        assert a.makespan == b.makespan
        assert a.steals == b.steals

    def test_graph_window_blocks_main(self):
        machine = MachineConfig(cores=2, max_pending_tasks=10)
        cost = CostModel(machine, block_size=64)
        res = simulate_program(
            cholesky.cholesky_hyper, sym_hyper(8),
            machine=machine, cost_model=cost,
        )
        assert res.tasks_executed == cholesky.hyper_task_count(8)["total"]

    def test_execute_bodies_produces_values(self):
        machine = ALTIX_32.with_cores(4)
        runtime = SimulatedRuntime(
            machine=machine,
            cost_model=CostModel(machine, block_size=1, queens_node_cost=1e-6),
            execute_bodies=True,
        )
        with runtime:
            count = nqueens_smpss_count(6)
            runtime.barrier()
        assert count == 4  # known n=6 solution count

    def test_locality_scheduler_beats_central_queue(self):
        """Section III's locality lists should not lose to the central
        queue ablation on a cache-sensitive chain workload."""

        def run(factory):
            machine = ALTIX_32.with_cores(4)
            cost = CostModel(machine, block_size=256)
            a, b, c = sym_hyper(6), sym_hyper(6), sym_hyper(6)
            return simulate_program(
                matmul.matmul_dense, a, b, c,
                machine=machine, cost_model=cost,
                scheduler_factory=factory,
            ).makespan

        from repro.core.scheduler import SmpssScheduler

        assert run(SmpssScheduler) <= run(CentralQueueScheduler) * 1.02

    def test_renaming_off_not_faster(self):
        """Renaming removes WAR/WAW constraints; disabling it can only
        serialise more (Strassen's reused scratch grids)."""

        from repro.apps.strassen import strassen_multiply

        def run(renaming):
            machine = ALTIX_32.with_cores(8)
            cost = CostModel(machine, block_size=256)
            a, b, c = sym_hyper(4), sym_hyper(4), sym_hyper(4)
            return simulate_program(
                strassen_multiply, a, b, c,
                machine=machine, cost_model=cost,
                enable_renaming=renaming,
            ).makespan

        assert run(True) < run(False)


class TestForkJoinModels:
    def test_mkl_plateaus_before_goto(self):
        def speedup(lib, t):
            one = forkjoin_cholesky_time(4096, 1, lib, ALTIX_32.with_cores(1))
            return one / forkjoin_cholesky_time(4096, t, lib, ALTIX_32.with_cores(t))

        # MKL gains little beyond 4 threads...
        assert speedup("mkl", 32) < speedup("mkl", 4) * 1.25
        # ...Goto keeps gaining until ~10...
        assert speedup("goto", 12) > speedup("goto", 4) * 1.5
        # ...then flattens.
        assert speedup("goto", 32) < speedup("goto", 12) * 1.1

    def test_matmul_scales_smoothly(self):
        def gflops(lib, t):
            flops = 2.0 * 8192 ** 3
            return flops / forkjoin_matmul_time(8192, t, lib, ALTIX_32.with_cores(t))

        assert gflops("goto", 32) > 0.8 * 32 * gflops("goto", 1)

    def test_single_thread_sanity(self):
        t = forkjoin_cholesky_time(2048, 1, "goto", ALTIX_32.with_cores(1))
        flops = 2048 ** 3 / 3
        rate = flops / t
        # Within the core's peak and above half of it.
        assert 0.5 * ALTIX_32.core_peak_flops < rate < ALTIX_32.core_peak_flops


class TestBaselineDags:
    def test_multisort_work_close_to_sequential_plus_merges(self):
        n, qs = 1 << 16, 1 << 12
        seq = build_multisort_dag(n, qs, "seq")
        cilk = build_multisort_dag(n, qs, "cilk")
        assert cilk.total_work > seq.total_work  # spawn overheads
        assert cilk.total_work < seq.total_work * 1.2

    def test_multisort_span_much_smaller_than_work(self):
        dag = build_multisort_dag(1 << 18, 1 << 12, "cilk")
        assert dag.critical_path() < dag.total_work / 8

    def test_template_rebuilds_fresh_graphs(self):
        dag = build_multisort_dag(1 << 14, 1 << 12, "omp")
        g1, g2 = dag.build(), dag.build()
        machine = ALTIX_32.with_cores(4)
        r1 = run_static(g1, machine, CostModel(machine, block_size=1),
                        scheduler_for_model("omp"))
        r2 = run_static(g2, machine, CostModel(machine, block_size=1),
                        scheduler_for_model("omp"))
        assert r1.makespan == pytest.approx(r2.makespan)

    def test_nqueens_dag_counts_match_stats(self):
        stats = nqueens_prefix_stats(8, 4)
        dag = build_nqueens_dag(8, 4, "cilk")
        leaf_nodes = [n for n, _d in dag.nodes if n == "nqueens_leaf"]
        assert len(leaf_nodes) == stats["leaf_tasks"]

    def test_queens_granularity_derivation(self):
        node_cost = queens_node_cost_for_granularity(8, 4, granularity=100e-6)
        stats = nqueens_prefix_stats(8, 4)
        mean = stats["leaf_nodes"] / stats["leaf_tasks"]
        assert node_cost * mean == pytest.approx(100e-6)

    def test_sequential_time_includes_penalty(self):
        base = sequential_nqueens_time(6, node_cost=1e-6)
        from repro.sim.calibration import QUEENS_SEQUENTIAL_PENALTY
        from repro.apps.tasks import count_completions_cached

        _s, nodes = count_completions_cached(6, 0, ())
        assert base == pytest.approx(nodes * 1e-6 * QUEENS_SEQUENTIAL_PENALTY)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            scheduler_for_model("tbb")
        with pytest.raises(ValueError):
            build_multisort_dag(1024, 128, "tbb")
