"""Integration tests: multi-phase programs, pipeline mixes, full stack."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import SmpssRuntime, css_task
from repro.apps.cholesky import cholesky_hyper
from repro.apps.matmul import matmul_dense
from repro.apps.multisort import multisort
from repro.blas.hypermatrix import HyperMatrix


class TestMultiPhase:
    def test_factor_then_solve_pipeline(self):
        """The paper's section VII.D motivation: 'a real program may
        perform a Cholesky factorization and use the result in another
        operation' — tasks of the second phase start as the factor
        blocks become available, with no barrier in between."""

        n_blocks, m = 4, 16
        size = n_blocks * m
        hm = HyperMatrix.random_spd(n_blocks, m, seed=3)
        spd = hm.to_dense()
        rhs = np.random.default_rng(0).standard_normal(size)

        # Forward substitution on blocks: y = L^-1 b, consuming L tiles.
        y_parts = [np.array(rhs[i * m:(i + 1) * m]) for i in range(n_blocks)]

        @css_task("input(l, y_prev) inout(y)")
        def eliminate(l, y_prev, y):
            y -= l @ y_prev

        @css_task("input(l) inout(y)")
        def solve_diag(l, y):
            y[...] = sla.solve_triangular(l, y, lower=True, check_finite=False)

        with SmpssRuntime(num_workers=3, keep_graph=True) as rt:
            cholesky_hyper(hm)  # phase 1: no barrier before phase 2
            for i in range(n_blocks):
                for j in range(i):
                    eliminate(hm[i][j], y_parts[j], y_parts[i])
                solve_diag(hm[i][i], y_parts[i])
            rt.barrier()
            graph_stats = rt.graph.stats

        y = np.concatenate(y_parts)
        expected = sla.solve_triangular(
            sla.cholesky(spd, lower=True), rhs, lower=True
        )
        assert np.allclose(y, expected, atol=1e-6)
        # Cross-phase edges exist: solve tasks depend on factor tasks.
        assert graph_stats.total_tasks > 20

    def test_barrier_separated_phases_reuse_data(self):
        """Write-back at a barrier restores user-visible data, and the
        next phase re-tracks it from scratch."""

        data = np.zeros(64)

        @css_task("inout(a)")
        def inc(a):
            a += 1

        @css_task("input(a) output(b)")
        def double(a, b):
            np.multiply(a, 2.0, out=b)

        out = np.zeros(64)
        with SmpssRuntime(num_workers=2) as rt:
            for _ in range(5):
                inc(data)
            rt.barrier()
            assert (data == 5.0).all()  # visible between phases
            double(data, out)
            inc(data)
            rt.barrier()
        assert (out == 10.0).all()
        assert (data == 6.0).all()

    def test_many_phases_stress(self):
        data = np.zeros(16)

        @css_task("inout(a)")
        def inc(a):
            a += 1

        with SmpssRuntime(num_workers=3) as rt:
            for phase in range(20):
                for _ in range(10):
                    inc(data)
                rt.barrier()
                assert (data == (phase + 1) * 10).all()


class TestMixedWorkloads:
    def test_interleaved_apps_in_one_runtime(self):
        """Independent applications interleave in one task graph."""

        n_blocks, m = 3, 8
        a = HyperMatrix.random(n_blocks, m, np.float64, seed=1)
        b = HyperMatrix.random(n_blocks, m, np.float64, seed=2)
        c = HyperMatrix.zeros(n_blocks, m, np.float64)
        spd = HyperMatrix.random_spd(3, 8, seed=4)
        spd_dense = spd.to_dense()
        rng = np.random.default_rng(5)
        array = rng.standard_normal(2048).astype(np.float32)
        sorted_expected = np.sort(array)

        with SmpssRuntime(num_workers=3) as rt:
            matmul_dense(a, b, c)
            cholesky_hyper(spd)
            multisort(array, quicksize=256)
            rt.barrier()

        assert np.allclose(c.to_dense(), a.to_dense() @ b.to_dense())
        assert np.allclose(
            spd.lower_to_dense(), sla.cholesky(spd_dense, lower=True), atol=1e-8
        )
        assert (array == sorted_expected).all()


class TestFullStackPipeline:
    def test_compile_record_simulate_and_run(self):
        """One annotated source -> translator -> all three backends."""

        import textwrap

        from repro.compiler import compile_annotated
        from repro.core.recorder import RecordingRuntime
        from repro.sim import ALTIX_32, CostModel, SimulatedRuntime

        src = textwrap.dedent(
            """\
            import numpy as np

            #pragma css task input(a, b) output(c)
            def add(a, b, c):
                np.add(a, b, out=c)

            #pragma css task inout(c)
            def halve(c):
                c *= 0.5

            def program(parts):
                total = [np.zeros(4) for _ in range(len(parts) - 1)]
                acc = parts[0]
                for i, part in enumerate(parts[1:]):
                    add(acc, part, total[i])
                    acc = total[i]
                halve(acc)
                #pragma css barrier
                return acc
            """
        )
        module = compile_annotated(src, "pipeline_prog")
        parts = [np.full(4, float(i)) for i in range(5)]
        expected = sum(parts).copy() * 0.5

        # 1. sequential
        seq = module.program([np.array(p) for p in parts])
        assert np.allclose(seq, expected)

        # 2. threaded
        with SmpssRuntime(num_workers=2):
            thr = module.program([np.array(p) for p in parts])
        assert np.allclose(thr, expected)

        # 3. recorded (eager)
        rec = RecordingRuntime(execute="eager")
        with rec:
            eag = module.program([np.array(p) for p in parts])
        assert np.allclose(eag, expected)

        # 4. simulated (bodies on, virtual time measured)
        machine = ALTIX_32.with_cores(4)
        simrt = SimulatedRuntime(
            machine=machine,
            cost_model=CostModel(machine, block_size=8),
            execute_bodies=True,
        )
        with simrt:
            sim = module.program([np.array(p) for p in parts])
            simrt.barrier()
        assert np.allclose(sim, expected)
        assert simrt.result().makespan > 0


class TestScaleStress:
    def test_ten_thousand_tiny_tasks(self):
        data = np.zeros(1)

        @css_task("inout(a)")
        def inc(a):
            a += 1

        with SmpssRuntime(num_workers=3, max_pending_tasks=500) as rt:
            for _ in range(10_000):
                inc(data)
            rt.barrier()
        assert data[0] == 10_000

    def test_wide_fan_out_and_reduce(self):
        source = np.ones(8)
        leaves = [np.zeros(8) for _ in range(200)]
        total = np.zeros(8)

        @css_task("input(a) output(b)")
        def fan(a, b):
            b[...] = a * 2

        @css_task("input(a) inout(acc)")
        def reduce_t(a, acc):
            acc += a

        with SmpssRuntime(num_workers=3) as rt:
            for leaf in leaves:
                fan(source, leaf)
            for leaf in leaves:
                reduce_t(leaf, total)
            rt.barrier()
        assert (total == 400.0).all()
