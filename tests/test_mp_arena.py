"""SharedArena: allocation, handles, attach round-trips, lifecycle.

The arena is the shared-address half of the process backend: blocks it
hands out must be recognisable from any view (``handle_of``), must
reconstruct bit-identically in another attachment (``attach_handle``),
and must never outlive their arena as ``/dev/shm`` files — including
when the owning scope unwinds on an exception.
"""

import numpy as np
import pytest

from repro.mp.arena import (
    ArenaHandle,
    SharedArena,
    arena_array,
    attach_handle,
    default_arena,
    handle_of,
    leaked_segment_files,
)

pytestmark = pytest.mark.mp


@pytest.fixture
def arena():
    with SharedArena(segment_bytes=1 << 20) as a:
        yield a
        names = a.segment_names
    leaked = leaked_segment_files()
    assert not any(name in leaked for name in names)


class TestAllocation:
    def test_zeros_shape_dtype(self, arena):
        block = arena.zeros((8, 16), np.float32)
        assert block.shape == (8, 16)
        assert block.dtype == np.float32
        assert (block == 0).all()

    def test_blocks_are_disjoint_and_writable(self, arena):
        x = arena.zeros((64,))
        y = arena.zeros((64,))
        x[...] = 1.0
        y[...] = 2.0
        assert (x == 1.0).all() and (y == 2.0).all()

    def test_array_copies_source(self, arena):
        src = np.arange(12, dtype=np.float64).reshape(3, 4)
        block = arena.array(src)
        assert np.array_equal(block, src)
        src[0, 0] = 99.0
        assert block[0, 0] == 0.0  # a copy, not a view

    def test_grows_new_segments_on_demand(self):
        with SharedArena(segment_bytes=4096) as a:
            for _ in range(4):
                a.zeros((1024,))  # 8 KiB each > segment size
            assert a.allocated_segments >= 4

    def test_oversized_block_gets_dedicated_segment(self):
        with SharedArena(segment_bytes=4096) as a:
            big = a.zeros((100_000,))
            big[...] = 3.0
            assert (big == 3.0).all()

    def test_closed_arena_refuses_allocation(self):
        a = SharedArena()
        a.close()
        with pytest.raises(RuntimeError, match="closed"):
            a.zeros((4,))

    def test_scalar_shape_and_int_shape(self, arena):
        assert arena.zeros(7).shape == (7,)
        assert arena.zeros((2, 3, 4)).shape == (2, 3, 4)


class TestHandles:
    def test_whole_block_round_trip(self, arena):
        block = arena.zeros((16, 16))
        block[...] = np.arange(256).reshape(16, 16)
        handle = handle_of(block)
        assert isinstance(handle, ArenaHandle)
        twin = attach_handle(handle)
        assert np.array_equal(twin, block)
        twin[0, 0] = -5.0
        assert block[0, 0] == -5.0  # same memory

    def test_view_round_trip(self, arena):
        block = arena.zeros((32, 32))
        block[...] = np.arange(1024).reshape(32, 32)
        tile = block[8:16, 16:24]
        handle = handle_of(tile)
        assert handle is not None
        assert handle.shape == (8, 8)
        twin = attach_handle(handle)
        assert np.array_equal(twin, tile)
        twin += 1000.0
        assert np.array_equal(block[8:16, 16:24], twin)

    def test_non_arena_array_has_no_handle(self):
        assert handle_of(np.zeros((4, 4))) is None

    def test_non_ndarray_has_no_handle(self, arena):
        assert handle_of([1, 2, 3]) is None
        assert handle_of(42) is None

    def test_negative_stride_view_falls_back(self, arena):
        block = arena.zeros((16,))
        assert handle_of(block[::-1]) is None  # pickled instead: correct, slower

    def test_transposed_view_has_handle(self, arena):
        block = arena.zeros((8, 4))
        handle = handle_of(block.T)
        assert handle is not None
        assert handle.shape == (4, 8)
        assert np.array_equal(attach_handle(handle), block.T)

    def test_handle_pickles(self, arena):
        import pickle

        handle = handle_of(arena.zeros((4,)))
        assert pickle.loads(pickle.dumps(handle)) == handle


class TestLifecycle:
    def test_close_unlinks_all_segments(self):
        a = SharedArena(segment_bytes=4096)
        a.zeros((1024,))
        a.zeros((1024,))
        names = a.segment_names
        assert names
        a.close()
        leaked = leaked_segment_files()
        assert not any(name in leaked for name in names)

    def test_close_is_idempotent(self):
        a = SharedArena()
        a.zeros((4,))
        a.close()
        a.close()

    def test_exit_with_pending_exception_still_unlinks(self):
        names = []
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArena() as a:
                a.zeros((64,))
                names.extend(a.segment_names)
                raise RuntimeError("boom")
        leaked = leaked_segment_files()
        assert not any(name in leaked for name in names)

    def test_handle_dies_with_arena(self):
        a = SharedArena()
        handle = handle_of(a.zeros((4,)))
        a.close()
        assert handle_of(np.zeros(4)) is None
        with pytest.raises(FileNotFoundError):
            attach_handle(handle)

    def test_default_arena_is_reused_then_replaced_after_close(self):
        first = default_arena()
        assert default_arena() is first
        first.close()
        second = default_arena()
        assert second is not first
        second.close()

    def test_arena_array_shapes_and_adoption(self):
        block = arena_array((4, 4))
        assert handle_of(block) is not None
        assert (block == 0).all()
        ints = arena_array((8,), np.int32)
        assert ints.dtype == np.int32
        adopted = arena_array(np.full((3, 3), 7.0))
        assert handle_of(adopted) is not None
        assert (adopted == 7.0).all()
        default_arena().close()
