"""Differential observability: trace/metrics/figure diffs and the CLI.

The acceptance scenario: record a trace, inflate one task type 2x, and
the diff must attribute the slowdown to that type and report how the
critical path changed.  The synthetic runs here are built so the
inflation also *flips* the critical chain (from the potrf chain on
thread 0 to the gemm chain on thread 1), exercising the entered/left
reporting.
"""

import json

import pytest

from repro.bench.harness import FigureResult
from repro.core.tracing import EventKind, TraceEvent
from repro.obs.diff import (
    bootstrap_mean_delta,
    collect_task_durations,
    critical_chain,
    diff_figures,
    diff_metrics,
    diff_task_graphs,
    diff_to_dot,
    diff_traces,
    render_figure_diff,
    render_graph_diff,
    render_metrics_diff,
    render_trace_diff,
    write_diff_chrome_trace,
)

pytestmark = pytest.mark.obs


def _chain_events(events, name, task_ids, thread, start, duration, released_by):
    """Append a dependency chain of equal-duration tasks on one thread."""

    t = start
    releaser = released_by
    for task_id in task_ids:
        task = type("T", (), {"task_id": task_id, "name": name})()
        events.append(TraceEvent(t, EventKind.TASK_READY, task_id, name, releaser))
        events.append(TraceEvent(t, EventKind.TASK_START, task_id, name, thread))
        t += duration
        events.append(TraceEvent(t, EventKind.TASK_END, task_id, name, thread))
        releaser = thread
        del task
    return t


def make_run(gemm_scale: float = 1.0) -> list[TraceEvent]:
    """Two parallel chains plus a final task released by the slower one.

    * thread 0: four ``potrf`` tasks, 1.0s each (ends at 4.0);
    * thread 1: four ``gemm`` tasks, 0.5s * gemm_scale each;
    * ``trsm`` runs last, released by whichever chain finished later —
      so inflating gemm 2x moves the critical chain from potrf to gemm.
    """

    events: list[TraceEvent] = []
    potrf_end = _chain_events(events, "potrf", [1, 2, 3, 4], 0, 0.0, 1.0, -1)
    gemm_end = _chain_events(
        events, "gemm", [11, 12, 13, 14], 1, 0.0, 0.5 * gemm_scale, -1
    )
    last_thread = 0 if potrf_end >= gemm_end else 1
    t = max(potrf_end, gemm_end)
    events.append(TraceEvent(t, EventKind.TASK_READY, 99, "trsm", last_thread))
    events.append(TraceEvent(t, EventKind.TASK_START, 99, "trsm", last_thread))
    events.append(TraceEvent(t + 1.0, EventKind.TASK_END, 99, "trsm", last_thread))
    events.sort(key=lambda e: e.time)
    return events


class TestBuildingBlocks:
    def test_collect_task_durations(self):
        samples = collect_task_durations(make_run())
        assert sorted(samples) == ["gemm", "potrf", "trsm"]
        assert samples["potrf"] == pytest.approx([1.0] * 4)
        assert samples["gemm"] == pytest.approx([0.5] * 4)

    def test_critical_chain_follows_releasers(self):
        chain = critical_chain(make_run())
        # trsm was released by thread 0 -> the potrf chain is critical.
        assert [link.name for link in chain] == ["potrf"] * 4 + ["trsm"]
        assert chain[-1].end == pytest.approx(5.0)

    def test_critical_chain_flips_when_gemm_inflates(self):
        chain = critical_chain(make_run(gemm_scale=3.0))
        assert [link.name for link in chain] == ["gemm"] * 4 + ["trsm"]

    def test_critical_chain_empty(self):
        assert critical_chain([]) == []

    def test_bootstrap_ci_excludes_zero_for_real_shift(self):
        lo, hi = bootstrap_mean_delta([0.5] * 4, [1.0] * 4, n_boot=200)
        assert lo == pytest.approx(0.5)
        assert hi == pytest.approx(0.5)

    def test_bootstrap_ci_covers_zero_for_noise(self):
        lo, hi = bootstrap_mean_delta(
            [1.0, 1.2, 0.8, 1.1, 0.9], [1.05, 0.95, 1.1, 0.9, 1.0],
            n_boot=500,
        )
        assert lo < 0.0 < hi

    def test_bootstrap_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_mean_delta([], [1.0])


class TestTraceDiff:
    def test_attributes_synthetic_slowdown_to_inflated_type(self):
        diff = diff_traces(make_run(), make_run(gemm_scale=2.0), n_boot=300)
        top = diff.top_regressors(1)[0]
        assert top.name == "gemm"
        assert top.delta_total == pytest.approx(2.0)  # 4 tasks x +0.5s
        assert top.significant
        assert top.ci_low is not None and top.ci_low > 0
        # potrf and trsm are unchanged.
        by_name = {t.name: t for t in diff.types}
        assert by_name["potrf"].delta_total == pytest.approx(0.0)
        assert not by_name["potrf"].significant
        assert diff.makespan_delta == pytest.approx(0.0)  # 4.0 vs 4.0 chains tie at x2

    def test_chain_composition_change_reported(self):
        diff = diff_traces(make_run(), make_run(gemm_scale=3.0), n_boot=0)
        assert diff.chain.entered == {"gemm": 4}
        assert diff.chain.left == {"potrf": 4}
        assert diff.makespan_delta == pytest.approx(2.0)  # 7.0 - 5.0
        assert diff.chain.length_b > diff.chain.length_a

    def test_render_mentions_culprit_and_path_change(self):
        diff = diff_traces(make_run(), make_run(gemm_scale=3.0), n_boot=100)
        text = render_trace_diff(diff, "base", "slow")
        assert "base -> slow" in text
        assert "gemm" in text
        assert "entered the path: gemm x4" in text
        assert "left the path:    potrf x4" in text
        assert "makespan" in text

    def test_behavior_deltas_present(self):
        diff = diff_traces(make_run(), make_run(), n_boot=0)
        names = [b.name for b in diff.behavior]
        assert "utilisation" in names and "steals" in names
        assert all(b.delta == pytest.approx(0.0) for b in diff.behavior)


class TestExports:
    def test_side_by_side_chrome_trace(self, tmp_path):
        path = tmp_path / "sbs.json"
        write_diff_chrome_trace(
            make_run(), make_run(gemm_scale=2.0), str(path),
            label_a="before", label_b="after",
        )
        doc = json.loads(path.read_text())
        pids = {r["pid"] for r in doc["traceEvents"]}
        assert pids == {1, 2}
        names = {
            r["args"]["name"]
            for r in doc["traceEvents"]
            if r.get("ph") == "M" and r["name"] == "process_name"
        }
        assert names == {"before", "after"}

    def test_diff_dot_highlights_entered_and_left(self):
        diff = diff_traces(make_run(), make_run(gemm_scale=3.0), n_boot=0)
        dot = diff_to_dot(diff, "A", "B")
        assert "digraph" in dot
        assert "salmon" in dot       # gemm entered
        assert "lightblue" in dot    # potrf left
        assert "cluster_a" in dot and "cluster_b" in dot


class TestMetricsAndFigureDiff:
    def test_metrics_diff_scalars_and_histograms(self):
        a = {"steals": 4, "analysis_seconds": {"count": 10, "mean": 0.1, "max": 0.2}}
        b = {"steals": 9, "analysis_seconds": {"count": 10, "mean": 0.3, "max": 0.6},
             "renames": 2}
        deltas = {d.name: d for d in diff_metrics(a, b)}
        assert deltas["steals"].delta == pytest.approx(5)
        assert deltas["analysis_seconds.mean"].delta == pytest.approx(0.2)
        assert deltas["renames"].a is None and deltas["renames"].b == 2
        text = render_metrics_diff(list(deltas.values()))
        assert "steals" in text

    def test_figure_diff_per_point(self):
        fig_a = FigureResult("f", "t", "threads", "Gflops", [1, 2])
        fig_a.add("SMPSs", [10.0, 20.0])
        fig_b = FigureResult("f", "t", "threads", "Gflops", [1, 2])
        fig_b.add("SMPSs", [10.0, 15.0])
        deltas = diff_figures(fig_a, fig_b)
        assert len(deltas) == 2
        worst = max(deltas, key=lambda d: abs(d.delta))
        assert worst.x == 2 and worst.delta == pytest.approx(-5.0)
        assert "SMPSs" in render_figure_diff(deltas)


def _static_doc(**overrides):
    doc = {
        "format": "repro.staticgraph",
        "version": 1,
        "source": "driver.py",
        "entry": None,
        "truncated": False,
        "renames": 1,
        "tasks": [[1, "produce", 0], [2, "consume", 0], [3, "produce", 0]],
        "edges": [[1, 2, "true"]],
        "stream": [["task", 1], ["task", 2], ["task", 3], ["barrier"]],
        "details": [],
    }
    doc.update(overrides)
    return doc


def _recording_doc(**overrides):
    doc = {
        "format": "repro.recording",
        "version": 1,
        "tasks": [[1, "produce", 0], [2, "consume", 0], [3, "produce", 0]],
        "edges": [[1, 2, "true"]],
        "stream": [["task", 1], ["task", 2], ["task", 3], ["barrier"]],
    }
    doc.update(overrides)
    return doc


class TestGraphDiff:
    def test_identical_static_vs_recording(self):
        diff = diff_task_graphs(_static_doc(), _recording_doc())
        assert diff.identical
        assert diff.tasks_a == diff.tasks_b == 3
        assert diff.renames_a == 1 and diff.renames_b is None
        text = render_graph_diff(diff, "static", "recorded")
        assert "structurally identical" in text

    def test_divergences_attributed(self):
        recorded = _recording_doc(
            tasks=[[1, "produce", 0], [2, "consume", 0], [3, "gemm", 0],
                   [4, "consume", 0]],
            edges=[[1, 2, "true"], [2, 3, "anti"]],
        )
        diff = diff_task_graphs(_static_doc(), recorded)
        assert not diff.identical
        assert diff.name_mismatches == [(3, "produce", "gemm")]
        assert diff.extra_b == [(4, "consume")]
        assert diff.edges_only_b == [(2, 3, "anti")]
        text = render_graph_diff(diff)
        assert "#3: produce -> gemm" in text
        assert "2 -> 3 [anti]" in text

    def test_edge_kind_change(self):
        diff = diff_task_graphs(
            _static_doc(), _recording_doc(edges=[[1, 2, "anti"]])
        )
        assert diff.kind_changes == [(1, 2, "true", "anti")]

    def test_flow_cli_wrapper_unwrapped(self):
        # `python -m repro.check flow --format json` wraps the skeleton.
        wrapped = {"findings": [], "graph": _static_doc()}
        diff = diff_task_graphs(wrapped, _recording_doc())
        assert diff.identical

    def test_stream_sync_counts(self):
        diff = diff_task_graphs(
            _static_doc(),
            _recording_doc(stream=[["task", 1], ["task", 2], ["task", 3],
                                   ["barrier"], ["wait", 3]]),
        )
        assert not diff.identical
        assert (diff.barriers_a, diff.barriers_b) == (1, 1)
        assert (diff.waits_a, diff.waits_b) == (0, 1)


class TestDiffCli:
    def _write_traces(self, tmp_path):
        from repro.obs.export import write_chrome_trace

        class Holder:
            def __init__(self, events):
                self.events = events

        a = tmp_path / "a.trace.json"
        b = tmp_path / "b.trace.json"
        write_chrome_trace(Holder(make_run()), str(a))
        write_chrome_trace(Holder(make_run(gemm_scale=3.0)), str(b))
        return str(a), str(b)

    def test_trace_diff_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        a, b = self._write_traces(tmp_path)
        assert main(["diff", a, b, "--boot", "100"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out
        assert "entered the path" in out

    def test_trace_diff_cli_exports(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        a, b = self._write_traces(tmp_path)
        dot = tmp_path / "diff.dot"
        chrome = tmp_path / "sbs.json"
        assert main(["diff", a, b, "--boot", "0",
                     "--dot", str(dot), "--chrome", str(chrome)]) == 0
        assert "digraph" in dot.read_text()
        assert json.loads(chrome.read_text())["otherData"]["runs"]

    def test_metrics_diff_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        a = tmp_path / "a.metrics.json"
        b = tmp_path / "b.metrics.json"
        a.write_text(json.dumps({"figure": "x", "metrics": {"steals": 1}}))
        b.write_text(json.dumps({"figure": "x", "metrics": {"steals": 5}}))
        assert main(["diff", str(a), str(b)]) == 0
        assert "steals" in capsys.readouterr().out

    def test_figure_diff_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        fig = FigureResult("figX", "t", "threads", "Gflops", [1, 2])
        fig.add("SMPSs", [1.0, 2.0])
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(fig.to_json())
        fig.series[0].values = [1.0, 1.5]
        b.write_text(fig.to_json())
        assert main(["diff", str(a), str(b)]) == 0
        assert "figure diff" in capsys.readouterr().out

    def test_mismatched_kinds_rejected(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        a, _ = self._write_traces(tmp_path)
        fig = tmp_path / "fig.json"
        fig.write_text(json.dumps({"figure_id": "f", "series": {}, "x": []}))
        assert main(["diff", a, str(fig)]) == 1

    def test_missing_file(self, tmp_path):
        from repro.obs.__main__ import main

        assert main(["diff", str(tmp_path / "nope.json"),
                     str(tmp_path / "nope2.json")]) == 1

    def test_graph_diff_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        a = tmp_path / "static.json"
        b = tmp_path / "recorded.json"
        a.write_text(json.dumps(_static_doc()))
        b.write_text(json.dumps(_recording_doc()))
        assert main(["diff", str(a), str(b)]) == 0
        assert "structurally identical" in capsys.readouterr().out

        # Divergence is the diff's failure mode: exit 1.
        b.write_text(json.dumps(_recording_doc(edges=[])))
        assert main(["diff", str(a), str(b)]) == 1
        assert "edges only in" in capsys.readouterr().out
