"""Tests for the dynamic task graph."""

import pytest

from repro.core.graph import EdgeKind, TaskGraph
from repro.core.task import TaskDefinition, TaskInstance, TaskState, reset_task_ids


def new_task(name="t", defn_cache={}):
    defn = defn_cache.get(name)
    if defn is None:
        defn = TaskDefinition(func=lambda: None, params=(), name=name)
        defn_cache[name] = defn
    return TaskInstance(definition=defn, accesses=[], arguments={})


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_task_ids()


class TestConstruction:
    def test_add_and_count(self):
        g = TaskGraph()
        a, b = new_task("a"), new_task("b")
        g.add_task(a)
        g.add_task(b)
        assert len(g) == 2
        assert g.stats.tasks_by_name["a"] == 1

    def test_duplicate_id_rejected(self):
        g = TaskGraph()
        a = new_task()
        g.add_task(a)
        with pytest.raises(ValueError):
            g.add_task(a)

    def test_edge_bookkeeping(self):
        g = TaskGraph()
        a, b = new_task(), new_task()
        g.add_task(a)
        g.add_task(b)
        assert g.add_dependency(a, b, EdgeKind.TRUE)
        assert b.num_pending_deps == 1
        assert not g.add_dependency(a, b)  # duplicate edge collapsed
        assert b.num_pending_deps == 1

    def test_self_edge_ignored(self):
        g = TaskGraph()
        a = new_task()
        g.add_task(a)
        assert not g.add_dependency(a, a)

    def test_edge_to_finished_pred_skipped(self):
        g = TaskGraph()
        a, b = new_task(), new_task()
        g.add_task(a)
        g.complete(a)
        g.add_task(b)
        assert not g.add_dependency(a, b)
        assert b.num_pending_deps == 0


class TestCompletion:
    def test_complete_releases_successors(self):
        g = TaskGraph()
        a, b, c = new_task(), new_task(), new_task()
        for t in (a, b, c):
            g.add_task(t)
        g.add_dependency(a, c)
        g.add_dependency(b, c)
        assert g.complete(a) == []
        assert g.complete(b) == [c]

    def test_double_complete_rejected(self):
        g = TaskGraph()
        a = new_task()
        g.add_task(a)
        g.complete(a)
        with pytest.raises(ValueError):
            g.complete(a)

    def test_pending_count(self):
        g = TaskGraph()
        a, b = new_task(), new_task()
        g.add_task(a)
        g.add_task(b)
        assert g.pending_count == 2
        g.complete(a)
        assert g.pending_count == 1

    def test_retire_frees_memory_when_not_keeping(self):
        g = TaskGraph(keep_finished=False)
        a, b = new_task(), new_task()
        g.add_task(a)
        g.add_task(b)
        g.add_dependency(a, b)
        g.complete(a)
        assert len(g) == 1
        assert not b.predecessors

    def test_newly_ready_in_id_order(self):
        g = TaskGraph()
        root = new_task("root")
        g.add_task(root)
        followers = [new_task(f"f{i}") for i in range(5)]
        for f in reversed(followers):
            g.add_task(f)
            g.add_dependency(root, f)
        ready = g.complete(root)
        assert [t.task_id for t in ready] == sorted(t.task_id for t in followers)


class TestAnalysis:
    def _diamond(self):
        g = TaskGraph()
        a, b, c, d = (new_task(x) for x in "abcd")
        for t in (a, b, c, d):
            g.add_task(t)
        g.add_dependency(a, b)
        g.add_dependency(a, c)
        g.add_dependency(b, d)
        g.add_dependency(c, d)
        return g, (a, b, c, d)

    def test_roots(self):
        g, (a, *_rest) = self._diamond()
        assert g.roots() == [a]

    def test_critical_path(self):
        g, _ = self._diamond()
        assert g.critical_path_length() == 3

    def test_weighted_critical_path(self):
        g, (a, b, c, d) = self._diamond()
        weights = {a.task_id: 1.0, b.task_id: 5.0, c.task_id: 1.0, d.task_id: 1.0}
        assert g.weighted_critical_path(lambda t: weights[t.task_id]) == 7.0

    def test_networkx_export(self):
        g, _ = self._diamond()
        nx_graph = g.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        import networkx as nx

        assert nx.is_directed_acyclic_graph(nx_graph)

    def test_dot_export(self):
        g, _ = self._diamond()
        dot = g.to_dot()
        assert dot.startswith("digraph")
        assert "t1 -> t2" in dot

    def test_ascii_levels(self):
        g, (a, b, c, d) = self._diamond()
        art = g.to_ascii_levels()
        lines = art.splitlines()
        assert lines[0].endswith(str(a.task_id))
        assert "(  2)" in lines[1]  # b and c share level 1
        assert lines[2].endswith(str(d.task_id))

    def test_ascii_levels_truncates_wide_rows(self):
        g = TaskGraph()
        for _ in range(200):
            g.add_task(new_task())
        art = g.to_ascii_levels(width=40)
        assert all(len(line) <= 45 for line in art.splitlines())
        assert "..." in art

    def test_edges_carry_kind(self):
        g = TaskGraph()
        a, b = new_task(), new_task()
        g.add_task(a)
        g.add_task(b)
        g.add_dependency(a, b, EdgeKind.ANTI)
        assert list(g.edges()) == [(a.task_id, b.task_id, EdgeKind.ANTI)]
        assert g.stats.edges_by_kind[EdgeKind.ANTI] == 1
