"""Tests for the recording runtime and Figure 5 reproduction."""

import numpy as np
import pytest

from repro import RecordingRuntime, record_program
from repro.apps import cholesky, matmul
from repro.apps.tasks import sgemm_t
from repro.blas.hypermatrix import HyperMatrix


def sym_hyper(n):
    hm = HyperMatrix(n, 1, np.float32)
    for i in range(n):
        for j in range(n):
            hm[i, j] = np.zeros((1, 1), np.float32)
    return hm


class TestFigure5:
    """The 6x6-block Cholesky graph of Figure 5."""

    @pytest.fixture(scope="class")
    def prog(self):
        return record_program(cholesky.cholesky_hyper, sym_hyper(6), execute="skip")

    def test_exactly_56_tasks(self, prog):
        assert prog.task_count == 56

    def test_task_type_counts(self, prog):
        counts = prog.graph.stats.tasks_by_name
        assert counts["sgemm_nt_t"] == 20
        assert counts["ssyrk_t"] == 15
        assert counts["strsm_t"] == 15
        assert counts["spotrf_t"] == 6

    def test_task_ids_follow_invocation_order(self, prog):
        assert [t.task_id for t in prog.graph] == list(range(1, 57))
        assert prog.graph.get(1).name == "spotrf_t"

    def test_task_51_unlocked_by_1_and_6(self, prog):
        """'After running tasks 1 and 6, the runtime is able to start
        executing task 51, yet the algorithm generates only 56 tasks.'"""

        t51 = prog.graph.get(51)
        direct = {p.task_id for p in t51.predecessors}
        assert direct == {6}
        t6 = prog.graph.get(6)
        assert {p.task_id for p in t6.predecessors} == {1}

    def test_only_true_dependencies(self, prog):
        """'Due to renaming, the graph only contains true dependencies.'"""

        kinds = {kind for _p, _s, kind in prog.graph.edges()}
        assert kinds == {"true"}

    def test_graph_is_a_dag(self, prog):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(prog.graph.to_networkx())

    def test_dot_contains_all_nodes(self, prog):
        dot = prog.graph.to_dot()
        assert all(f'label="{i}"' in dot for i in range(1, 57))


class TestTaskCountFormulas:
    @pytest.mark.parametrize("n_blocks", [2, 4, 6, 8])
    def test_hyper_formula_matches_recording(self, n_blocks):
        prog = record_program(
            cholesky.cholesky_hyper, sym_hyper(n_blocks), execute="skip"
        )
        assert prog.task_count == cholesky.hyper_task_count(n_blocks)["total"]

    @pytest.mark.parametrize("n_blocks", [2, 4, 8])
    def test_flat_formula_matches_recording(self, n_blocks):
        m = 4
        flat = np.empty((n_blocks * m, n_blocks * m), np.float32)
        prog = record_program(cholesky.cholesky_flat, flat, m, execute="skip")
        assert prog.task_count == cholesky.flat_task_count(n_blocks)["total"]

    def test_paper_quoted_counts(self):
        """'374,272 tasks for Cholesky with 32x32 element blocks,
        49,920 with 64x64 blocks' — both match T(N) at N=128 / N=64."""

        assert cholesky.flat_task_count(128)["total"] == 374_272
        assert cholesky.flat_task_count(64)["total"] == 49_920

    def test_matmul_n_cubed(self):
        """'The code generates N^3 tasks arranged as N^2 chains of N
        tasks.'"""

        n = 4
        a, b, c = sym_hyper(n), sym_hyper(n), sym_hyper(n)
        prog = record_program(matmul.matmul_dense, a, b, c, execute="skip")
        assert prog.task_count == n ** 3 == matmul.dense_task_count(n)
        # N^2 chains: each C block's tasks form a chain of length N.
        graph = prog.graph
        roots = graph.roots()
        assert len(roots) == n * n
        assert graph.critical_path_length() == n

    def test_matmul_loop_order_same_graph_size(self):
        n = 3
        counts = []
        for order in ("ijk", "kji", "jik"):
            a, b, c = sym_hyper(n), sym_hyper(n), sym_hyper(n)
            prog = record_program(
                matmul.matmul_dense, a, b, c, order, execute="skip"
            )
            counts.append(
                (prog.task_count, prog.graph.stats.total_edges)
            )
        assert len(set(counts)) == 1


class TestEagerMode:
    def test_eager_computes_results(self):
        a = np.full((2, 2), 2.0)
        b = np.full((2, 2), 3.0)
        c = np.zeros((2, 2))

        def main():
            sgemm_t(a, b, c)

        recorder = RecordingRuntime(execute="eager")
        with recorder:
            main()
            recorder.barrier()
        assert (c == 12.0).all()

    def test_eager_write_back_after_renaming(self):
        from repro.apps.tasks import place_t

        a = np.zeros(4, np.int32)

        recorder = RecordingRuntime(execute="eager")
        with recorder:
            place_t(a, 0, 3)
            place_t(a, 1, 1)
            recorder.barrier()
        assert list(a[:2]) == [3, 1]

    def test_skip_mode_does_not_execute(self):
        c = np.zeros((2, 2))
        prog = record_program(
            lambda: sgemm_t(np.ones((2, 2)), np.ones((2, 2)), c),
            execute="skip",
        )
        assert (c == 0.0).all()
        assert prog.task_count == 1

    def test_events_stream(self):
        recorder = RecordingRuntime(execute="skip")
        with recorder:
            t = sgemm_t(np.ones((2, 2)), np.ones((2, 2)), np.zeros((2, 2)))
            recorder.wait_for(t)
            recorder.barrier()
        prog = recorder.finish()
        kinds = [e[0] for e in prog.events]
        assert kinds == ["task", "wait", "barrier"]
