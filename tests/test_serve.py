"""The task-graph service: sharding, wire codecs, sessions, admission.

PR 9's tentpole is ``repro.serve`` — a daemon owning one worker fleet
that serves whole-graph submissions from many concurrent tenants.
These tests pin, bottom-up:

* the lock-striping primitives (``repro.core.sharding``);
* the wire codecs (bitwise datum round trips, definition refs);
* the session↔daemon loop: ``connect()`` mirroring the local runtime
  with bitwise-identical results on the bundled apps;
* the api-stack redesign that makes concurrent sessions legal while
  keeping in-process runtimes exclusive;
* admission-control edges: graph-size cap mid-submission, per-tenant
  memory cap, queue-full backpressure, and client disconnect with
  tasks in flight (shard state released, fleet not stalled);
* the per-tenant ``/metrics`` and ``/health`` HTTP surface.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import SmpssRuntime, css_task, wait_on
from repro.apps.cholesky import cholesky_hyper
from repro.apps.multisort import multisort, sequential_sort
from repro.blas.hypermatrix import HyperMatrix
from repro.core.sharding import (
    GraphDomain,
    ShardSet,
    address_hash,
    shard_index,
)
from repro.net.protocol import connect as raw_connect
from repro.net.protocol import decode as wire_decode
from repro.net.protocol import encode as wire_encode
from repro.serve import (
    GraphRejected,
    RemoteGraphError,
    ServeDaemon,
    ServeEngine,
    ServiceLimits,
    connect,
)
from repro.serve import protocol as sp

pytestmark = pytest.mark.serve


# ---------------------------------------------------------------------------
# tasks used over the wire (must be module-level: resolved by qualname)
# ---------------------------------------------------------------------------

@css_task("input(a, b) inout(c)")
def gemm_t(a, b, c):
    c += a @ b


@css_task("inout(a)")
def bump_t(a):
    a += 1.0


@css_task("input(src) output(dst)")
def copy_t(src, dst):
    dst[...] = src


@css_task("inout(a)")
def boom_t(a):
    raise ValueError("deliberate task failure")


#: Gate for in-flight tests: tasks park here until the test opens it.
_GATE = threading.Event()


@css_task("inout(a)")
def gated_bump_t(a):
    _GATE.wait(10.0)
    a += 1.0


@pytest.fixture
def daemon():
    d = ServeDaemon("tcp:127.0.0.1:0", workers=2, shards=4)
    yield d
    d.close()


def _drain_tenant(engine, name, timeout=10.0):
    """Wait until *name* has nothing in flight and no bytes held."""

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        t = engine.state()["tenants"].get(name)
        if t is not None and t["inflight"] == 0 and t["bytes_held"] == 0:
            return t
        time.sleep(0.01)
    raise AssertionError(f"tenant {name!r} never drained")


# ---------------------------------------------------------------------------
# lock striping
# ---------------------------------------------------------------------------

class TestSharding:
    def test_address_hash_is_deterministic_64bit(self):
        assert address_hash(12345) == address_hash(12345)
        assert 0 <= address_hash(12345) < (1 << 64)
        # Allocator-aligned addresses (low bits equal) must still
        # spread: 64 consecutive 16-byte-aligned ids over 16 stripes.
        stripes = {shard_index([0x7F0000 + 16 * i], 16) for i in range(64)}
        assert len(stripes) > 8

    def test_shard_index_is_order_independent(self):
        keys = [id(object()) for _ in range(5)]
        assert shard_index(keys, 16) == shard_index(reversed(keys), 16)
        assert 0 <= shard_index(keys, 7) < 7

    def test_shardset_accounting(self):
        shards = ShardSet(4)
        a = shards.shard_for([1, 2, 3])
        b = shards.shard_for([1, 2, 3])
        assert a is b  # same data -> same stripe, deterministically
        assert a.domains == 2 and a.acquisitions == 2
        shards.release(a)
        assert a.domains == 1
        stats = shards.stats()
        assert stats["num_shards"] == 4
        assert sum(stats["live_domains"]) == 1

    def test_graph_domain_is_private(self):
        shards = ShardSet(2)
        arr = np.zeros(4)
        plan_args = (gemm_t.definition, bump_t.definition)
        del plan_args  # domains only need tasks; build two independent
        from repro.core.invocation import plan_for

        d1 = GraphDomain(shards.shard_for([id(arr)]))
        d2 = GraphDomain(shards.shard_for([id(arr)]))
        t1 = plan_for(bump_t.definition).instantiate((arr,), {}, {})
        t2 = plan_for(bump_t.definition).instantiate((arr,), {}, {})
        ready1 = d1.analyze_batch([t1])
        ready2 = d2.analyze_batch([t2])
        # Same datum, same stripe — but version chains never leak
        # between domains: both see their task immediately ready.
        assert ready1 == [t1] and ready2 == [t2]
        assert d1.shard is d2.shard


# ---------------------------------------------------------------------------
# wire codecs
# ---------------------------------------------------------------------------

class TestWireCodecs:
    def test_ndarray_roundtrip_is_bitwise(self):
        rng = np.random.default_rng(7)
        for arr in (
            rng.standard_normal((5, 3)),
            np.arange(6, dtype=np.int16).reshape(2, 3),
            np.array([np.nan, np.inf, -0.0]),
            np.zeros(0, dtype=np.float32),
        ):
            back = sp.decode_datum(sp.encode_datum(arr))
            assert back.dtype == arr.dtype and back.shape == arr.shape
            assert back.tobytes() == arr.tobytes()
            assert back.flags.writeable

    def test_container_roundtrip_and_in_place_write_back(self):
        target = [1, 2, 3]
        payload = sp.encode_datum([9, 8])
        sp.write_back_into(target, payload)
        assert target == [9, 8]
        d = {"a": 1}
        sp.write_back_into(d, sp.encode_datum({"b": 2}))
        assert d == {"b": 2}
        buf = bytearray(b"xxxx")
        sp.write_back_into(buf, sp.encode_datum(bytearray(b"yo")))
        assert buf == bytearray(b"yo")

    def test_value_specs(self):
        for value in (1, 2.5, float("inf"), "s", None, True):
            assert sp.decode_value(sp.encode_value(value)) == value
        spec = sp.encode_value((1, 2))  # tuple: by-value but not JSON
        assert "p" in spec and sp.decode_value(spec) == (1, 2)

    def test_is_datum_mirrors_tracker_rule(self):
        assert sp.is_datum(np.zeros(2)) and sp.is_datum([1])
        assert not sp.is_datum(3) and not sp.is_datum("s")
        assert not sp.is_datum((1, 2))

    def test_definition_ref_rejects_closures(self):
        @css_task("inout(a)")
        def local_task(a):
            a += 1

        with pytest.raises(Exception, match="module-level"):
            sp.definition_ref(local_task.definition)
        ref = sp.definition_ref(gemm_t.definition)
        assert ref[1] == "gemm_t"
        assert sp.resolve_definition(ref) is gemm_t.definition


# ---------------------------------------------------------------------------
# the served session: one-line switch, bitwise parity
# ---------------------------------------------------------------------------

class TestServedParity:
    def test_gemm_parity_and_wait_on(self, daemon):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        c_local, c_served = np.zeros((16, 16)), np.zeros((16, 16))
        gemm_t(a, b, c_local)  # sequential reference
        gemm_t(a, b, c_local)
        with connect(daemon.address) as rt:
            gemm_t(a, b, c_served)
            gemm_t(a, b, c_served)
            latest = wait_on(c_served)
            assert latest is c_served  # post-flush the base IS current
            assert rt.graphs_submitted == 1
        assert c_served.tobytes() == c_local.tobytes()

    def test_cholesky_parity(self, daemon):
        hm_local = HyperMatrix.random_spd(4, 8, seed=1)
        hm_served = hm_local.copy()
        cholesky_hyper(hm_local)  # no runtime: the sequential oracle
        with connect(daemon.address, tenant="chol") as rt:
            cholesky_hyper(hm_served)
            rt.barrier()
        for i in range(4):
            for j in range(i + 1):
                assert (
                    hm_local[i][j].tobytes() == hm_served[i][j].tobytes()
                ), (i, j)

    def test_multisort_parity(self, daemon):
        rng = np.random.default_rng(2)
        data = rng.standard_normal(2048)
        ref = sequential_sort(data.copy())
        served = data.copy()
        with connect(daemon.address, tenant="sort"):
            multisort(served, np.empty_like(served), quicksize=256)
        assert served.tobytes() == ref.tobytes()

    def test_output_only_write_crosses_back(self, daemon):
        src = np.arange(8, dtype=np.float64)
        dst = np.zeros(8)
        with connect(daemon.address) as rt:
            copy_t(src, dst)
            rt.barrier()
        assert (dst == src).all()

    def test_exit_flushes_pending_batch(self, daemon):
        a = np.zeros(4)
        with connect(daemon.address):
            bump_t(a)
            # no explicit barrier: __exit__ owes the final flush
        assert (a == 1.0).all()

    def test_multiple_graphs_per_session(self, daemon):
        a = np.zeros(2)
        with connect(daemon.address) as rt:
            for _ in range(3):
                bump_t(a)
                rt.barrier()
            assert rt.graphs_submitted == 3
        assert (a == 3.0).all()


class TestConcurrentSessions:
    def test_two_tenants_in_parallel_threads(self, daemon):
        results = {}
        errors = []

        def run_chol():
            try:
                hm = HyperMatrix.random_spd(4, 8, seed=3)
                ref = hm.copy()
                cholesky_hyper(ref)
                with connect(daemon.address, tenant="t-chol") as rt:
                    cholesky_hyper(hm)
                    rt.barrier()
                results["chol"] = all(
                    hm[i][j].tobytes() == ref[i][j].tobytes()
                    for i in range(4) for j in range(i + 1)
                )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def run_sort():
            try:
                rng = np.random.default_rng(4)
                data = rng.standard_normal(2048)
                ref = sequential_sort(data.copy())
                with connect(daemon.address, tenant="t-sort"):
                    multisort(data, np.empty_like(data), quicksize=256)
                results["sort"] = data.tobytes() == ref.tobytes()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=f) for f in (run_chol, run_sort)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert results == {"chol": True, "sort": True}
        state = daemon.engine.state()
        assert {"t-chol", "t-sort"} <= set(state["tenants"])

    def test_smpss_runtime_stays_exclusive_across_threads(self):
        """The api redesign keeps the historical guard for in-process
        runtimes: one exclusive runtime, one main thread."""

        raised = []
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with SmpssRuntime(num_workers=1):
                entered.set()
                release.wait(10.0)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert entered.wait(10.0)
            with pytest.raises(RuntimeError, match="another thread"):
                with SmpssRuntime(num_workers=1):
                    pass  # pragma: no cover
            raised.append(True)
        finally:
            release.set()
            holder.join(timeout=10)
        assert raised


# ---------------------------------------------------------------------------
# admission control (satellite: the §III limits as backpressure)
# ---------------------------------------------------------------------------

class TestAdmissionControl:
    def test_graph_size_cap_hit_mid_submission(self):
        with ServeDaemon(
            "tcp:127.0.0.1:0", workers=1, shards=2,
            limits=ServiceLimits(max_graph_tasks=3),
        ) as daemon:
            a = np.zeros(4)
            with connect(daemon.address, tenant="big") as rt:
                for _ in range(5):
                    bump_t(a)  # accumulates past the cap client-side
                with pytest.raises(GraphRejected) as exc_info:
                    rt.barrier()
                assert exc_info.value.code == "graph_too_large"
                assert exc_info.value.status == 429
                assert exc_info.value.detail["limit"] == 3
                # The shed batch is gone; the session stays usable and
                # a conforming graph goes through on the same socket.
                bump_t(a)
                rt.barrier()
            assert (a == 1.0).all()
            tenants = daemon.engine.state()["tenants"]
            assert tenants["big"]["rejections"] == 1
            assert tenants["big"]["bytes_held"] == 0

    def test_per_tenant_memory_cap(self):
        with ServeDaemon(
            "tcp:127.0.0.1:0", workers=1, shards=2,
            limits=ServiceLimits(max_tenant_bytes=1024),
        ) as daemon:
            big = np.zeros(4096)
            with connect(daemon.address, tenant="hog") as rt:
                bump_t(big)
                with pytest.raises(GraphRejected) as exc_info:
                    rt.barrier()
            assert exc_info.value.code == "memory_limit"
            assert exc_info.value.detail["limit"] == 1024
            assert exc_info.value.detail["bytes"] >= big.nbytes

    def test_queue_full_backpressure_and_other_tenant_unaffected(self):
        engine = ServeEngine(
            workers=1, shards=2, limits=ServiceLimits(max_inflight=1)
        )
        _GATE.clear()
        arr = np.zeros(2)
        spec = {
            "tasks": [{
                "def": sp.definition_ref(gated_bump_t.definition),
                "args": [{"d": "d0"}],
            }],
            "data": {"d0": sp.encode_datum(arr)},
        }
        try:
            job = engine.submit_graph("full", spec)
            with pytest.raises(GraphRejected) as exc_info:
                engine.submit_graph("full", dict(spec))
            assert exc_info.value.code == "queue_full"
            # Backpressure is PER TENANT: a different tenant's
            # submission is admitted while "full" is saturated.
            other = np.zeros(2)
            other_spec = {
                "tasks": [{
                    "def": sp.definition_ref(bump_t.definition),
                    "args": [{"d": "d0"}],
                }],
                "data": {"d0": sp.encode_datum(other)},
            }
            other_job = engine.submit_graph("light", other_spec)
            _GATE.set()
            assert job.done.wait(10.0)
            assert other_job.done.wait(10.0)
            assert other_job.error is None
            # After draining, the saturated tenant is admitted again.
            job2 = engine.submit_graph("full", dict(spec))
            assert job2.done.wait(10.0) and job2.error is None
        finally:
            _GATE.set()
            engine.shutdown()

    def test_abandon_with_tasks_in_flight_releases_state(self):
        engine = ServeEngine(workers=1, shards=2)
        _GATE.clear()
        arr = np.zeros(2)
        spec = {
            "tasks": [
                {
                    "def": sp.definition_ref(gated_bump_t.definition),
                    "args": [{"d": "d0"}],
                }
                for _ in range(3)
            ],
            "data": {"d0": sp.encode_datum(arr)},
        }
        try:
            job = engine.submit_graph("ghost", spec)
            engine.abandon(job)  # client disconnected mid-graph
            _GATE.set()
            assert job.done.wait(10.0)
            assert job.results is None  # discarded, never encoded
            assert job.error["code"] in ("cancelled", "task_failed")
            tenant = _drain_tenant(engine, "ghost")
            assert tenant["inflight"] == 0
            stats = engine.state()["shard_stats"]
            assert sum(stats["live_domains"]) == 0
            # The fleet is alive: a fresh tenant's graph completes.
            ok = np.zeros(2)
            ok_spec = {
                "tasks": [{
                    "def": sp.definition_ref(bump_t.definition),
                    "args": [{"d": "d0"}],
                }],
                "data": {"d0": sp.encode_datum(ok)},
            }
            ok_job = engine.submit_graph("alive", ok_spec)
            assert ok_job.done.wait(10.0) and ok_job.error is None
        finally:
            _GATE.set()
            engine.shutdown()

    def test_client_disconnect_over_the_wire(self, daemon):
        """Drop the socket with tasks in flight: the daemon must
        abandon the tenant's jobs and keep serving everyone else."""

        _GATE.clear()
        arr = np.zeros(2)
        sock = raw_connect(daemon.address, timeout=10.0)
        try:
            sock.sendall(wire_encode(
                {"cmd": "open", "seq": 1, "tenant": "dropper"}
            ))
            buffer = b""
            opened = False
            while not opened:
                buffer += sock.recv(65536)
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    record = wire_decode(line)
                    if record and record.get("ev") == "ack":
                        assert record["ok"]
                        opened = True
            sock.sendall(wire_encode({
                "cmd": "run", "seq": 2,
                "tasks": [
                    {
                        "def": sp.definition_ref(gated_bump_t.definition),
                        "args": [{"d": "d0"}],
                    }
                    for _ in range(3)
                ],
                "data": {"d0": sp.encode_datum(arr)},
            }))
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                t = daemon.engine.state()["tenants"].get("dropper")
                if t is not None and t["inflight"] == 1:
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("submission never reached the engine")
        finally:
            sock.close()  # gone, with the graph gated and in flight
        _GATE.set()
        _drain_tenant(daemon.engine, "dropper")
        # The fleet serves the next tenant as if nothing happened.
        a = np.zeros(2)
        with connect(daemon.address, tenant="survivor") as rt:
            bump_t(a)
            rt.barrier()
        assert (a == 1.0).all()


# ---------------------------------------------------------------------------
# failures cross the wire structured
# ---------------------------------------------------------------------------

class TestErrors:
    def test_task_failure_carries_remote_traceback(self, daemon):
        a = np.zeros(2)
        with connect(daemon.address, tenant="boom") as rt:
            boom_t(a)
            with pytest.raises(RemoteGraphError) as exc_info:
                rt.barrier()
        assert "deliberate task failure" in str(exc_info.value)
        assert "ValueError" in exc_info.value.remote_traceback

    def test_run_before_open_is_rejected(self, daemon):
        sock = raw_connect(daemon.address, timeout=10.0)
        try:
            sock.sendall(wire_encode(
                {"cmd": "run", "seq": 1, "tasks": [], "data": {}}
            ))
            buffer = b""
            while True:
                buffer += sock.recv(65536)
                done = False
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    record = wire_decode(line)
                    if record and record.get("ev") == "ack":
                        assert not record["ok"]
                        assert "open" in record["error"]["message"]
                        done = True
                if done:
                    break
        finally:
            sock.close()

    def test_empty_barrier_is_local_noop(self, daemon):
        with connect(daemon.address) as rt:
            rt.barrier()  # nothing batched: no graph crosses the wire
            assert rt.graphs_submitted == 0


# ---------------------------------------------------------------------------
# the HTTP surface: per-tenant metrics and health on the session port
# ---------------------------------------------------------------------------

class TestHttpSurface:
    def test_metrics_health_and_tenant_filter(self, daemon):
        a = np.zeros(2)
        with connect(daemon.address, tenant="alice") as rt:
            bump_t(a)
            rt.barrier()
        with connect(daemon.address, tenant="bob") as rt:
            bump_t(a)
            rt.barrier()
        host = daemon.address.split(":", 1)[1]
        page = urllib.request.urlopen(
            f"http://{host}/metrics", timeout=10
        ).read().decode()
        assert 'tenant="alice"' in page and 'tenant="bob"' in page
        assert "repro_serve_graphs_completed" in page
        alice = urllib.request.urlopen(
            f"http://{host}/metrics/alice", timeout=10
        ).read().decode()
        assert 'tenant="alice"' in alice
        assert 'tenant="bob"' not in alice
        assert "# TYPE repro_serve_graphs_completed" in alice
        health = json.loads(urllib.request.urlopen(
            f"http://{host}/health", timeout=10
        ).read())
        assert health["service"] == "repro.serve"
        assert health["tenants"]["alice"]["graphs"] == 1
        # Worker liveness: one record per worker slot, all alive.
        assert len(health["worker_liveness"]) == health["workers"]
        assert all(w["alive"] for w in health["worker_liveness"])
        assert health["workers_alive"] == health["workers"]
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(f"http://{host}/nope", timeout=10)
        assert exc_info.value.code == 404

    def test_health_command_over_session(self, daemon):
        with connect(daemon.address, tenant="probe") as rt:
            state = rt.service_state()
            assert state["workers"] == 2
            assert "probe" in state["tenants"]
            assert rt.ping()["tenant"] == "probe"
