"""The redesigned public surface: snapshot, config knobs, wait_on, shims.

PR 4 unified the API around the fast-path submission engine:
``wait_on`` became first-class, all three runtimes construct through
one validated :class:`~repro.core.config.RuntimeConfig` path, moved
names grew :class:`DeprecationWarning` shims, and the ``repro``
top-level namespace froze.  These tests pin each of those contracts.
"""

import inspect
import warnings

import numpy as np
import pytest

import repro
import repro.core
from repro import (
    RecordingRuntime,
    RuntimeConfig,
    SmpssRuntime,
    barrier,
    css_task,
    wait_on,
)
from repro.sim import SimulatedRuntime


# ---------------------------------------------------------------------------
# API snapshot: additions are deliberate, removals are breaking
# ---------------------------------------------------------------------------

TOP_LEVEL_ALL = [
    "CentralQueueScheduler",
    "DependencyError",
    "Direction",
    "EdgeKind",
    "InvocationError",
    "PragmaError",
    "RecordingRuntime",
    "Region",
    "RegionError",
    "Representant",
    "RepresentantTable",
    "RuntimeConfig",
    "SharedArena",
    "SmpssRuntime",
    "SmpssScheduler",
    "TaskExecutionError",
    "TaskGraph",
    "Tracer",
    "__version__",
    "arena_array",
    "barrier",
    "css_task",
    "current_runtime",
    "parse_pragma",
    "record_program",
    "wait_on",
]

CORE_ALL = [
    "AdapterRegistry",
    "CentralQueueScheduler",
    "DataAdapter",
    "DependencyError",
    "DependencyTracker",
    "Direction",
    "EdgeKind",
    "EventKind",
    "HotStealScheduler",
    "InvocationError",
    "NullTracer",
    "ParamAccess",
    "ParsedPragma",
    "PragmaError",
    "RecordedProgram",
    "RecordingRuntime",
    "Region",
    "RegionError",
    "Representant",
    "RepresentantTable",
    "RuntimeConfig",
    "SmpssRuntime",
    "SmpssScheduler",
    "TaskDefinition",
    "TaskExecutionError",
    "TaskGraph",
    "TaskInstance",
    "TaskState",
    "ThreadLocalTracer",
    "TraceEvent",
    "Tracer",
    "TrackerConfig",
    "Version",
    "analysis",
    "barrier",
    "css_task",
    "current_runtime",
    "default_registry",
    "parse_expression",
    "parse_pragma",
    "record_program",
    "wait_on",
]


class TestSurfaceSnapshot:
    def test_top_level_all_is_pinned(self):
        assert sorted(repro.__all__) == TOP_LEVEL_ALL

    def test_core_all_is_pinned(self):
        assert sorted(repro.core.__all__) == CORE_ALL

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in repro.core.__all__:
            assert getattr(repro.core, name) is not None

    def test_key_signatures(self):
        assert list(inspect.signature(wait_on).parameters) == ["obj"]
        assert list(inspect.signature(barrier).parameters) == []
        assert list(inspect.signature(css_task).parameters) == [
            "pragma",
            "constants",
        ]
        for runtime_cls in (SmpssRuntime, RecordingRuntime, SimulatedRuntime):
            params = inspect.signature(runtime_cls).parameters
            assert "config" in params, runtime_cls
            assert any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
            ), runtime_cls

    def test_top_level_and_core_agree(self):
        for name in ("SmpssRuntime", "RuntimeConfig", "wait_on", "barrier"):
            assert getattr(repro, name) is getattr(repro.core, name)


# ---------------------------------------------------------------------------
# Frozen top-level namespace
# ---------------------------------------------------------------------------

class TestFrozenNamespace:
    def test_unknown_attribute_fails_fast(self):
        with pytest.raises(AttributeError, match="repro.core"):
            repro.bogus_name

    def test_typo_gets_did_you_mean(self):
        with pytest.raises(AttributeError, match="did you mean 'wait_on'"):
            repro.wait_onn


# ---------------------------------------------------------------------------
# One validated construction path for every runtime
# ---------------------------------------------------------------------------

class TestConfigConstruction:
    @pytest.mark.parametrize(
        "runtime_cls", [SmpssRuntime, RecordingRuntime, SimulatedRuntime]
    )
    def test_unknown_knob_rejected_with_hint(self, runtime_cls):
        with pytest.raises(TypeError, match="keep_graph"):
            runtime_cls(keep_grap=True)

    @pytest.mark.parametrize(
        "runtime_cls", [SmpssRuntime, RecordingRuntime, SimulatedRuntime]
    )
    def test_config_plus_knob_conflict_rejected(self, runtime_cls):
        cfg = RuntimeConfig(keep_graph=True)
        with pytest.raises(TypeError, match="config"):
            runtime_cls(config=cfg, keep_graph=False)

    def test_config_object_is_honoured(self):
        cfg = RuntimeConfig(num_workers=1, keep_graph=True)
        with SmpssRuntime(config=cfg) as rt:
            assert rt.config.keep_graph is True
            assert rt.config.num_workers == 1

    def test_config_is_copied_not_shared(self):
        cfg = RuntimeConfig(num_workers=1)
        with SmpssRuntime(config=cfg) as rt:
            assert rt.config is not cfg


# ---------------------------------------------------------------------------
# Deprecation shims for moved names
# ---------------------------------------------------------------------------

class TestDeprecationShims:
    def test_shim_table_is_audited(self):
        """Every surviving shim is deliberate: the table holds exactly
        the moved names still referenced in the wild (PR 9 audit —
        unreferenced shims were deleted, referenced ones stay tested)."""

        import repro.core.runtime as runtime_mod

        assert sorted(runtime_mod._DEPRECATED_HOMES) == ["RuntimeConfig"]

    def test_every_surviving_shim_warns_and_resolves(self):
        import importlib

        import repro.core.runtime as runtime_mod

        for name, (home, obj) in runtime_mod._DEPRECATED_HOMES.items():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                shimmed = getattr(runtime_mod, name)
            # The shim hands out the SAME object as the new home.
            assert shimmed is obj
            assert getattr(importlib.import_module(home), name) is obj
            assert any(
                issubclass(w.category, DeprecationWarning)
                and home in str(w.message)
                for w in caught
            ), name

    def test_runtimeconfig_old_home_warns_and_works(self):
        import repro.core.runtime as runtime_mod

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = runtime_mod.RuntimeConfig
        assert shimmed is RuntimeConfig
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.core.config" in str(w.message)
            for w in caught
        )

    def test_unknown_name_in_runtime_module_still_fails(self):
        import repro.core.runtime as runtime_mod

        with pytest.raises(AttributeError):
            runtime_mod.never_existed


# ---------------------------------------------------------------------------
# wait_on semantics
# ---------------------------------------------------------------------------

@css_task("inout(a)")
def _bump(a):
    a += 1.0


@css_task("input(src) output(dst)")
def _copy_into(src, dst):
    dst[...] = src


class TestWaitOn:
    def test_sequential_noop_returns_object(self):
        a = np.zeros(4)
        assert wait_on(a) is a

    def test_waits_for_last_submitted_writer(self):
        a = np.zeros(8)
        with SmpssRuntime(num_workers=2):
            for _ in range(5):
                _bump(a)
            latest = wait_on(a)
            # All five inout writers submitted before the wait must be
            # visible in the storage wait_on hands back.
            assert (np.asarray(latest) == 5.0).all()

    def test_partial_barrier_does_not_wait_for_other_data(self):
        a = np.zeros(4)
        b = np.zeros(4)
        with SmpssRuntime(num_workers=1) as rt:
            _bump(a)
            _bump(b)
            wait_on(a)
            # wait_on(a) alone must not imply a full barrier: the graph
            # may still hold b's writer.  (It may have run already on a
            # fast worker, so only assert the barrier-side contract.)
            rt.barrier()
            assert (b == 1.0).all()

    def test_untracked_object_passes_through(self):
        with SmpssRuntime(num_workers=1):
            obj = np.zeros(2)
            assert wait_on(obj) is obj

    def test_renamed_storage_is_returned(self):
        src = np.arange(4, dtype=np.float64)
        dst = np.zeros(4)
        with SmpssRuntime(num_workers=2):
            _copy_into(src, dst)
            _copy_into(src, dst)  # WAW: second write renames dst
            latest = wait_on(dst)
            assert (np.asarray(latest) == src).all()

    def test_inside_task_body_is_noop(self):
        seen = []

        @css_task("inout(a)")
        def nested_wait(a):
            seen.append(wait_on(a) is a)

        a = np.zeros(2)
        with SmpssRuntime(num_workers=1) as rt:
            nested_wait(a)
            rt.barrier()
        assert seen == [True]


# ---------------------------------------------------------------------------
# Defensive __exit__: no stale _stack_owner after mid-with exceptions
# ---------------------------------------------------------------------------

class TestDefensiveExit:
    @pytest.mark.parametrize(
        "make_runtime",
        [
            lambda: SmpssRuntime(num_workers=1),
            lambda: RecordingRuntime(execute="eager"),
            lambda: SimulatedRuntime(),
        ],
        ids=["smpss", "recording", "simulated"],
    )
    def test_exception_mid_with_leaves_no_stale_owner(self, make_runtime):
        from repro.core import api as _api

        with pytest.raises(RuntimeError, match="boom"):
            with make_runtime():
                raise RuntimeError("boom")
        assert _api.current_runtime() is None
        assert _api._thread_stack() == []
        assert _api._exclusive_depth == 0
        assert _api._exclusive_owner is None
        # The regression this guards: a stale owner wedged every later
        # runtime behind the single-main-thread guard.  A fresh runtime
        # must enter cleanly.
        a = np.zeros(2)
        with SmpssRuntime(num_workers=1) as rt:
            _bump(a)
            rt.barrier()
        assert (a == 1.0).all()
