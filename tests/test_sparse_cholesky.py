"""Tests for the sparse blocked Cholesky (irregular-workload extension)."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import SmpssRuntime, record_program
from repro.apps.cholesky import cholesky_hyper, cholesky_sparse, hyper_task_count
from repro.blas.hypermatrix import HyperMatrix


def block_banded_spd(n_blocks: int, m: int, bandwidth: int, seed: int = 0):
    """An SPD hyper-matrix whose lower factor is block-banded.

    Built as L0 @ L0.T from a banded lower-triangular L0, so both the
    matrix and its Cholesky factor have known block sparsity.
    """

    rng = np.random.default_rng(seed)
    size = n_blocks * m
    l0 = np.zeros((size, size))
    for i in range(n_blocks):
        for j in range(max(0, i - bandwidth), i + 1):
            block = rng.standard_normal((m, m)) * 0.3
            l0[i * m:(i + 1) * m, j * m:(j + 1) * m] = block
        ii = slice(i * m, (i + 1) * m)
        l0[ii, ii] = np.tril(l0[ii, ii]) + m * np.eye(m)
    spd = l0 @ l0.T
    hm = HyperMatrix(n_blocks, m, np.float64)
    for i in range(n_blocks):
        for j in range(i + 1):
            piece = spd[i * m:(i + 1) * m, j * m:(j + 1) * m]
            if np.any(piece != 0.0):
                hm[i, j] = np.array(piece)
    return hm, spd


class TestSparseCholesky:
    def test_banded_matches_scipy_sequential(self):
        hm, spd = block_banded_spd(6, 8, bandwidth=1)
        cholesky_sparse(hm)
        assert np.allclose(
            hm.lower_to_dense(), sla.cholesky(spd, lower=True), atol=1e-8
        )

    def test_banded_matches_scipy_threaded(self):
        hm, spd = block_banded_spd(6, 8, bandwidth=2, seed=3)
        with SmpssRuntime(num_workers=3) as rt:
            cholesky_sparse(hm)
            rt.barrier()
        assert np.allclose(
            hm.lower_to_dense(), sla.cholesky(spd, lower=True), atol=1e-8
        )

    def test_dense_input_equals_dense_algorithm(self):
        hm_sparse = HyperMatrix.random_spd(5, 8, seed=1)
        hm_dense = hm_sparse.copy()
        cholesky_sparse(hm_sparse)
        cholesky_hyper(hm_dense)
        assert np.allclose(
            hm_sparse.lower_to_dense(), hm_dense.lower_to_dense(), atol=1e-10
        )

    def test_fewer_tasks_than_dense(self):
        hm, _spd = block_banded_spd(8, 4, bandwidth=1)
        prog = record_program(cholesky_sparse, hm, execute="skip")
        dense_count = hyper_task_count(8)["total"]
        assert prog.task_count < dense_count * 0.7

    def test_band_preserved_no_excess_fill(self):
        """A banded factor fills only within the band: far blocks stay
        absent (the structure of L0 is recovered)."""

        bandwidth = 1
        hm, _spd = block_banded_spd(8, 4, bandwidth=bandwidth, seed=5)
        cholesky_sparse(hm)
        for i in range(8):
            for j in range(8):
                if j > i:
                    continue
                if i - j > bandwidth:
                    assert hm[i][j] is None, f"unexpected fill at ({i},{j})"

    def test_fill_in_allocated_when_needed(self):
        """An arrow-head matrix (dense last block row) forces fill."""

        rng = np.random.default_rng(7)
        n_blocks, m = 5, 4
        size = n_blocks * m
        l0 = np.zeros((size, size))
        for i in range(n_blocks):
            ii = slice(i * m, (i + 1) * m)
            l0[ii, ii] = np.tril(rng.standard_normal((m, m))) * 0.2 + m * np.eye(m)
        # Last block row dense: couples every column.
        last = slice((n_blocks - 1) * m, size)
        l0[last, : (n_blocks - 1) * m] = rng.standard_normal(
            (m, (n_blocks - 1) * m)
        ) * 0.2
        spd = l0 @ l0.T
        hm = HyperMatrix(n_blocks, m, np.float64)
        for i in range(n_blocks):
            for j in range(i + 1):
                piece = spd[i * m:(i + 1) * m, j * m:(j + 1) * m]
                if np.any(piece != 0.0):
                    hm[i, j] = np.array(piece)

        with SmpssRuntime(num_workers=2) as rt:
            cholesky_sparse(hm)
            rt.barrier()
        assert np.allclose(
            hm.lower_to_dense(), sla.cholesky(spd, lower=True), atol=1e-8
        )

    def test_missing_diagonal_rejected(self):
        hm = HyperMatrix(3, 4, np.float64)
        hm[0, 0] = np.eye(4)
        with pytest.raises(ValueError, match="diagonal"):
            cholesky_sparse(hm)

    def test_parallelism_scales_with_bandwidth(self):
        # Tridiagonal-block factorisation is a pure pipeline (critical
        # path == task count); widening the band adds parallel slack.
        narrow, _ = block_banded_spd(10, 4, bandwidth=1)
        prog_narrow = record_program(cholesky_sparse, narrow, execute="skip")
        assert (
            prog_narrow.graph.critical_path_length() == prog_narrow.task_count
        )
        wide, _ = block_banded_spd(10, 4, bandwidth=4)
        prog_wide = record_program(cholesky_sparse, wide, execute="skip")
        assert prog_wide.graph.critical_path_length() < prog_wide.task_count
