"""The unified ``python -m repro`` front door (PR 9 satellite).

One dispatcher routes to every tool; the historical per-module forms
stay working as aliases.  These tests call the in-process ``main()``
so they are cheap, plus one subprocess check that the alias note lands
on stderr without perturbing stdout or the exit code.
"""

import subprocess
import sys

import pytest

from repro.__main__ import COMMANDS, main


class TestDispatcher:
    def test_no_args_prints_usage_and_fails(self, capsys):
        assert main([]) == 2
        # (bare invocation is a usage error; `help` below is not)

    def test_help_exits_zero(self, capsys):
        assert main(["help"]) == 0
        out = capsys.readouterr().out
        for command in ("lint", "flow", "obs", "bench", "live", "serve"):
            assert command in out

    def test_version(self, capsys):
        import repro

        assert main(["--version"]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_unknown_command_is_usage_error(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "frobnicate" in capsys.readouterr().err

    def test_lint_routes_to_check(self, tmp_path, capsys):
        path = tmp_path / "prog.py"
        path.write_text(
            "from repro import css_task\n"
            "@css_task('input(a)')\n"
            "def f(a):\n"
            "    a += 1\n"  # writing an input: a finding
        )
        assert main(["lint", str(path)]) == 1
        assert "input" in capsys.readouterr().out

    def test_flow_routes_to_check(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert main(["flow", str(path)]) == 0

    def test_subcommand_help_reaches_the_tool(self):
        # argparse help exits via SystemExit(0) inside the tool.
        with pytest.raises(SystemExit) as exc_info:
            main(["obs", "--help"])
        assert exc_info.value.code == 0
        with pytest.raises(SystemExit) as exc_info:
            main(["serve", "--help"])
        assert exc_info.value.code == 0

    def test_every_command_module_resolves(self):
        import importlib

        for command, (module_name, prefix) in COMMANDS.items():
            module = importlib.import_module(module_name)
            assert callable(module.main), command
            assert isinstance(prefix, list)


class TestLegacyAliases:
    def test_legacy_form_notes_and_still_works(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "rules"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "python -m repro" in proc.stderr  # the alias note
        assert "input-write" in proc.stdout  # behaviour unchanged

    def test_unified_form_has_no_note(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--help"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "alias" not in proc.stderr
