"""Property test: pragma rendering round-trips through the parser."""

from hypothesis import given, strategies as st

from repro.core.pragma import parse_pragma
from repro.core.task import Direction

_DIRECTIONS = ["input", "output", "inout"]
identifier = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {"input", "output", "inout", "opaque",
                        "highpriority", "task", "css"}
)


@st.composite
def pragma_text(draw):
    """Generate a random (valid) clause list plus its expected shape."""

    n_clauses = draw(st.integers(1, 4))
    used_names: set[str] = set()
    clauses = []
    expected = []  # (name, direction, n_dims, n_regions)
    for _ in range(n_clauses):
        direction = draw(st.sampled_from(_DIRECTIONS))
        n_params = draw(st.integers(1, 3))
        params = []
        for _ in range(n_params):
            name = draw(identifier.filter(lambda s: s not in used_names))
            used_names.add(name)
            n_dims = draw(st.integers(0, 2))
            dims = "".join(
                f"[{draw(st.integers(1, 99))}]" for _ in range(n_dims)
            )
            if n_dims:
                regions = draw(st.sampled_from([0, n_dims]))
            else:
                regions = draw(st.integers(0, 1))
            region_text = ""
            for _ in range(regions):
                style = draw(st.integers(0, 2))
                lo = draw(st.integers(0, 9))
                hi = lo + draw(st.integers(0, 9))
                if style == 0:
                    region_text += f"{{{lo}..{hi}}}"
                elif style == 1:
                    region_text += f"{{{lo}:{hi - lo + 1}}}"
                else:
                    region_text += "{}"
            params.append(f"{name}{dims}{region_text}")
            expected.append((name, direction, n_dims, regions))
        clauses.append(f"{direction}({', '.join(params)})")
    high = draw(st.booleans())
    if high:
        clauses.append("highpriority")
    return " ".join(clauses), expected, high


@given(pragma_text())
def test_parse_matches_generated_shape(case):
    text, expected, high = case
    parsed = parse_pragma(text)
    assert parsed.high_priority == high
    assert len(parsed.params) == len(expected)
    for spec, (name, direction, n_dims, n_regions) in zip(parsed.params, expected):
        assert spec.name == name
        assert spec.direction is Direction(direction)
        assert len(spec.dims) == n_dims
        assert len(spec.regions) == n_regions


@given(pragma_text())
def test_str_rendering_reparses_identically(case):
    text, _expected, high = case
    parsed = parse_pragma(text)
    # Render each spec back to clause text and reparse.
    rendered_clauses = [
        f"{spec.direction.value}({spec})" for spec in parsed.params
    ]
    if high:
        rendered_clauses.append("highpriority")
    reparsed = parse_pragma(" ".join(rendered_clauses))
    assert len(reparsed.params) == len(parsed.params)
    for a, b in zip(parsed.params, reparsed.params):
        assert a.name == b.name
        assert a.direction is b.direction
        assert len(a.dims) == len(b.dims)
        assert [r.full for r in a.regions] == [r.full for r in b.regions]
        env: dict = {}
        for ra, rb in zip(a.regions, b.regions):
            if not ra.full:
                assert ra.bounds(env) == rb.bounds(env)
