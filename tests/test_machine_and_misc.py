"""Unit tests for machine config, invocation resolution, misc edges."""

import numpy as np
import pytest

from repro import SmpssRuntime, css_task
from repro.core.invocation import instantiate, resolve_call_values
from repro.core.dependencies import DependencyTracker
from repro.core.graph import TaskGraph
from repro.sim.machine import ALTIX_32, MachineConfig


class TestMachineConfig:
    def test_altix_peak(self):
        assert ALTIX_32.cores == 32
        assert ALTIX_32.peak_gflops == pytest.approx(204.8)
        assert ALTIX_32.core_peak_flops == pytest.approx(6.4e9)

    def test_with_cores(self):
        m = ALTIX_32.with_cores(8)
        assert m.cores == 8
        assert m.peak_gflops == pytest.approx(51.2)
        # Other parameters are preserved.
        assert m.core_bandwidth == ALTIX_32.core_bandwidth
        # Original untouched (frozen dataclass).
        assert ALTIX_32.cores == 32

    def test_with_cores_validation(self):
        with pytest.raises(ValueError):
            ALTIX_32.with_cores(0)

    def test_frozen(self):
        with pytest.raises(Exception):
            ALTIX_32.cores = 4  # type: ignore[misc]


class TestResolveCallValues:
    def test_scalars_pass_through(self):
        @css_task("input(a) input(n)")
        def f(a, n):  # noqa: ARG001
            pass

        graph = TaskGraph()
        tracker = DependencyTracker(graph)
        data = np.zeros(4)
        task = instantiate(f.definition, (data, 7), {})
        tracker.analyze(task)
        values = resolve_call_values(task)
        assert values[0] is data
        assert values[1] == 7

    def test_renamed_output_gets_fresh_buffer(self):
        @css_task("input(a) output(b)")
        def copy(a, b):  # noqa: ARG001
            pass

        @css_task("output(b)")
        def clobber(b):  # noqa: ARG001
            pass

        graph = TaskGraph()
        tracker = DependencyTracker(graph)
        data = np.zeros(4)
        sink = np.zeros(4)
        reader = instantiate(copy.definition, (sink, data), {})
        tracker.analyze(reader)
        writer = instantiate(clobber.definition, (data,), {})
        tracker.analyze(writer)
        values = resolve_call_values(writer)
        # The writer got a fresh buffer, not the user's array.
        assert values[0] is not data
        assert values[0].shape == data.shape

    def test_region_mode_resolves_to_base(self):
        @css_task("inout(a{i..j}) input(i, j)")
        def touch(a, i, j):  # noqa: ARG001
            pass

        graph = TaskGraph()
        tracker = DependencyTracker(graph)
        data = np.zeros(8)
        task = instantiate(touch.definition, (data, 0, 3), {})
        tracker.analyze(task)
        values = resolve_call_values(task)
        assert values[0] is data


class TestRuntimeOptions:
    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="unknown runtime option"):
            SmpssRuntime(num_workers=1, bogus_option=3)

    def test_double_start_rejected(self):
        rt = SmpssRuntime(num_workers=1)
        rt.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                rt.start()
        finally:
            rt.shutdown()

    def test_submit_before_start_rejected(self):
        @css_task("inout(a)")
        def f(a):
            a += 1

        rt = SmpssRuntime(num_workers=1)
        with pytest.raises(RuntimeError, match="not started"):
            rt.submit(f.definition, (np.zeros(1),), {})

    def test_shutdown_idempotent(self):
        rt = SmpssRuntime(num_workers=1)
        rt.start()
        rt.shutdown()
        rt.shutdown()  # no-op

    def test_num_threads_property(self):
        rt = SmpssRuntime(num_workers=3)
        assert rt.num_threads == 4


class TestGenericObjects:
    def test_custom_object_tracked_by_identity(self):
        class Box:
            def __init__(self):
                self.value = 0

        @css_task("inout(box)")
        def bump_box(box):
            box.value += 1

        box = Box()
        with SmpssRuntime(num_workers=2) as rt:
            for _ in range(10):
                bump_box(box)
            rt.barrier()
        assert box.value == 10

    def test_list_parameter_renaming(self):
        """Lists are renameable: pending readers keep old contents."""

        from repro.core.recorder import RecordingRuntime

        source = [0]
        outs = []

        @css_task("input(src) output(dst)")
        def snapshot(src, dst):
            dst[:] = list(src)

        @css_task("inout(src)")
        def advance(src):
            src[0] += 1

        recorder = RecordingRuntime(execute="eager")
        with recorder:
            for _ in range(3):
                out = [None]
                outs.append(out)
                snapshot(source, out)
                advance(source)
            recorder.barrier()
        assert [o[0] for o in outs] == [0, 1, 2]
        assert source[0] == 3
