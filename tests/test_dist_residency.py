"""Unit tests for the residency map, dist wire encoding, and frames.

These pin down the master-side invariants the distributed backend's
correctness rests on: version-chain behaviour under WAR/WAW renaming
(a renamed datum must never resolve to a stale resident copy), the
strong-reference key discipline (no ``id()`` aliasing), barrier
eviction policy, checksum-based invalidation of out-of-band mutation,
and data-loss detection when a node dies holding the only copy.
"""

import socket
import threading

import numpy as np
import pytest

from repro.dist.encoding import (
    DistSerializationError,
    alloc_from_meta,
    alloc_meta,
    apply_blob,
    content_checksum,
    decode_blob,
    encode_blob,
    slices_from_spec,
    slices_spec,
)
from repro.dist.residency import ResidencyMap
from repro.net.frames import FrameError, recv_frame, send_frame

pytestmark = pytest.mark.dist


# ---------------------------------------------------------------------------
# residency map
# ---------------------------------------------------------------------------

class TestResidencyMap:
    def test_keys_are_stable_and_identity_checked(self):
        rmap = ResidencyMap("sid0")
        a = np.zeros(4)
        entry = rmap.ensure(a, is_base=True)
        assert entry.key == "sid0:1"
        assert rmap.ensure(a, True) is entry
        b = np.zeros(4)
        assert rmap.ensure(b, True) is not entry

    def test_id_reuse_cannot_alias_entries(self):
        # The map holds strong refs: as long as an entry exists its
        # object is alive, so a new object can never reuse that id.
        rmap = ResidencyMap("s")
        a = np.zeros(8)
        entry = rmap.ensure(a, True)
        del a  # the entry keeps the array alive
        b = np.zeros(8)
        other = rmap.ensure(b, True)
        assert other is not entry
        assert entry.obj is not b

    def test_commit_write_tracks_versions_and_holders(self):
        rmap = ResidencyMap("s")
        a = np.arange(4.0)
        entry = rmap.ensure(a, True)
        rmap.record_copy(entry, "n0")
        assert entry.copies == {"n0": 0}
        rmap.commit_write(entry, "n1", 1, master_too=False)
        assert entry.version == 1
        assert entry.holders() == ["n1"]          # n0's copy is stale
        assert not entry.master_current()          # lazy output
        rmap.mark_master_current(entry)
        assert entry.master_current()

    def test_war_waw_rename_gets_fresh_key(self):
        # WAR/WAW renaming allocates a NEW buffer master-side; the
        # residency map must key it separately so the renamed version
        # can never hit the stale resident copy of the old buffer.
        rmap = ResidencyMap("s")
        base = np.arange(4.0)
        old = rmap.ensure(base, True)
        rmap.commit_write(old, "n0", 1, master_too=False)
        renamed = np.empty_like(base)  # what fresh_like would allocate
        fresh = rmap.ensure(renamed, False)
        assert fresh.key != old.key
        assert fresh.version == 0
        assert fresh.copies == {}

    def test_checksum_verify_invalidates_mutated_master_copy(self):
        rmap = ResidencyMap("s")
        a = np.arange(4.0)
        entry = rmap.ensure(a, True)
        rmap.commit_write(entry, "n0", 1, master_too=True)
        rmap.generation += 1
        a[0] = 99.0  # out-of-band mutation between barriers
        assert rmap.verify(entry) is False
        assert entry.version == 2      # new content version
        assert entry.copies == {}      # remote copies invalidated
        # Re-verify in the same generation is a no-op (cached).
        assert rmap.verify(entry) is True

    def test_verify_trusts_unchanged_content(self):
        rmap = ResidencyMap("s")
        a = np.arange(4.0)
        entry = rmap.ensure(a, True)
        rmap.commit_write(entry, "n0", 1, master_too=True)
        rmap.generation += 1
        assert rmap.verify(entry) is True
        assert entry.version == 1

    def test_drop_node_marks_sole_copy_lost(self):
        rmap = ResidencyMap("s")
        a = np.zeros(4)
        b = np.zeros(4)
        ea = rmap.ensure(a, True)
        eb = rmap.ensure(b, True)
        rmap.commit_write(ea, "n0", 1, master_too=False)  # only on n0
        rmap.commit_write(eb, "n0", 1, master_too=True)   # master has it
        lost = rmap.drop_node("n0")
        assert lost == [ea] and ea.lost
        assert not eb.lost                 # master copy is current

    def test_eviction_releases_entries_and_reports_holders(self):
        rmap = ResidencyMap("s")
        base = np.zeros(4)
        renamed = np.zeros(4)
        eb = rmap.ensure(base, True)
        er = rmap.ensure(renamed, False)
        rmap.record_copy(er, "n1")
        by_node = rmap.evict([er])
        assert by_node == {"n1": [er.key]}
        assert len(rmap) == 1
        assert rmap.get(renamed) is None
        assert rmap.get(base) is eb

    def test_node_bytes_counts_only_current_versions(self):
        rmap = ResidencyMap("s")
        a = np.zeros(16)   # 128 bytes
        b = np.zeros(4)    # 32 bytes
        ea = rmap.ensure(a, True)
        eb = rmap.ensure(b, True)
        rmap.commit_write(ea, "n0", 1, master_too=True)
        rmap.record_copy(eb, "n1")
        rmap.commit_write(eb, "n0", 1, master_too=True)  # n1 now stale
        totals = rmap.node_bytes([a, b])
        assert totals == {"n0": a.nbytes + b.nbytes}


# ---------------------------------------------------------------------------
# blob / spec encoding
# ---------------------------------------------------------------------------

class TestEncoding:
    def test_ndarray_blob_roundtrip_is_bitwise(self):
        arr = np.random.default_rng(0).random((7, 5)).astype(np.float32)
        meta, payload = encode_blob(arr[::2, ::2])  # non-contiguous view
        back = decode_blob(meta, payload)
        assert np.array_equal(back, arr[::2, ::2])
        assert back.flags.writeable

    def test_object_dtype_takes_pickle_path(self):
        arr = np.array([{"a": 1}, None], dtype=object)
        meta, payload = encode_blob(arr)
        assert meta["t"] == "pkl"
        back = decode_blob(meta, payload)
        assert back[0] == {"a": 1}

    def test_apply_blob_into_region(self):
        target = np.zeros((4, 4))
        src = np.ones((2, 4))
        meta, payload = encode_blob(src)
        apply_blob(target, meta, payload, (slice(1, 3), slice(None)))
        assert target[1:3].sum() == 8 and target[0].sum() == 0

    def test_alloc_meta_roundtrip(self):
        arr = np.empty((3, 2), dtype=np.int32)
        out = alloc_from_meta(alloc_meta(arr))
        assert out.shape == (3, 2) and out.dtype == np.int32
        assert not out.any()  # deterministic zeros
        assert alloc_from_meta(alloc_meta([1, 2, 3])) == [None] * 3
        assert alloc_from_meta(alloc_meta(bytearray(5))) == bytearray(5)
        with pytest.raises(DistSerializationError):
            alloc_meta(object())

    def test_slices_spec_roundtrip_preserves_full_dims(self):
        slices = (slice(2, 7), slice(None), slice(0, 4, 2))
        assert slices_from_spec(slices_spec(slices)) == slices

    def test_content_checksum_tracks_mutation(self):
        a = np.arange(10.0)
        c1 = content_checksum(a)
        a[3] = -1
        assert content_checksum(a) != c1
        assert content_checksum(np.array([object()], dtype=object)) is None
        assert content_checksum(bytearray(b"xy")) is not None


# ---------------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------------

def _socketpair():
    return socket.socketpair()


class TestFrames:
    def test_roundtrip_header_and_payload(self):
        a, b = _socketpair()
        try:
            payload = np.arange(1000, dtype=np.float64).tobytes()
            t = threading.Thread(
                target=send_frame, args=(a, {"k": "data", "n": 1}, payload))
            t.start()
            header, got = recv_frame(b, timeout=5.0)
            t.join()
            assert header == {"k": "data", "n": 1}
            assert got == payload
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = _socketpair()
        try:
            send_frame(a, {"k": "ping"})
            header, got = recv_frame(b, timeout=5.0)
            assert header == {"k": "ping"} and got == b""
        finally:
            a.close()
            b.close()

    def test_garbage_prefix_is_a_frame_error(self):
        a, b = _socketpair()
        try:
            a.sendall(b"\xff" * 8 + b"junk")
            with pytest.raises(FrameError):
                recv_frame(b, timeout=5.0)
        finally:
            a.close()
            b.close()
