"""Quick-scale tests of the figure experiment harness itself.

The full-scale shape assertions live in ``benchmarks/``; these cover
the experiment code paths and result plumbing at test-suite speed.
"""

import json

import pytest

from repro.bench import experiments as E
from repro.bench.harness import FigureResult


class TestFig05:
    def test_other_sizes(self):
        facts = E.fig05_cholesky_graph(n_blocks=4)
        assert facts["total_tasks"] == facts["expected_total"] == 20
        assert facts["witness"] == {}  # only defined for the 6x6 case


class TestFig08Quick:
    def test_small_sweep_has_interior_optimum(self):
        fig = E.fig08_cholesky_blocksize(
            n=512, block_sizes=(16, 32, 64, 128), cores=8, libraries=("goto",)
        )
        series = fig.get("SMPSs + Goto tiles").values
        best = max(range(len(series)), key=lambda i: series[i])
        assert 0 < best < len(series) - 1
        assert fig.extras[("goto", 16)]["tasks"] > fig.extras[("goto", 64)]["tasks"]


class TestFig11Quick:
    def test_series_present_and_positive(self):
        fig = E.fig11_cholesky_scaling(n=1024, m=128, threads=(1, 2, 4))
        assert {s.label for s in fig.series} == {
            "Threaded Goto", "SMPSs + Goto tiles",
            "Threaded Mkl", "SMPSs + Mkl tiles", "Peak",
        }
        for s in fig.series:
            assert all(v > 0 for v in s.values)

    def test_peak_is_linear(self):
        fig = E.fig11_cholesky_scaling(n=1024, m=128, threads=(1, 2, 4))
        assert fig.get("Peak").values == [6.4, 12.8, 25.6]


class TestFig12Quick:
    def test_smpss_below_peak(self):
        fig = E.fig12_matmul_scaling(n=1024, m=256, threads=(1, 4))
        peak = fig.get("Peak").values
        smpss = fig.get("SMPSs + Goto tiles").values
        assert all(s < p for s, p in zip(smpss, peak))


class TestFig13Quick:
    def test_runs_and_scales(self):
        fig = E.fig13_strassen_scaling(n=1024, m=256, threads=(1, 4))
        goto = fig.get("SMPSs + Goto tiles").values
        assert goto[1] > goto[0] * 2


class TestFig14Quick:
    def test_three_models_near_one_at_single_thread(self):
        fig = E.fig14_multisort(n=1 << 16, quicksize=1 << 12, threads=(1, 2))
        for label in ("Cilk", "OMP3 tasks", "SMPSs"):
            assert 0.8 < fig.get(label).values[0] < 1.2


class TestFig1516Quick:
    def test_fig15_ordering(self):
        fig = E.fig15_nqueens(n=8, threads=(1, 2))
        assert fig.get("SMPSs").values[0] > 1.0
        assert fig.get("Cilk").values[0] < 1.0

    def test_fig16_normalised(self):
        fig = E.fig16_nqueens_scalability(n=8, threads=(1, 2))
        for label in ("Cilk", "OMP3 tasks", "SMPSs"):
            values = fig.get(label).values
            assert values[0] == 1.0
            assert values[1] > 1.5


class TestTaskCounts:
    def test_full_report(self):
        out = E.text_task_counts()
        assert out["flat_cholesky_T(128)"] == 374_272
        assert out["recorded_flat_N8"] == out["formula_flat_N8"]


class TestFigureExports:
    def _figure(self):
        fig = FigureResult("Figure X", "t", "threads", "Gflops", [1, 2])
        fig.add("A", [1.5, 3.0])
        fig.notes.append("hello")
        return fig

    def test_csv(self):
        csv_text = self._figure().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "threads,A"
        assert lines[1] == "1,1.5"

    def test_json_round_trip(self):
        doc = json.loads(self._figure().to_json())
        assert doc["figure_id"] == "Figure X"
        assert doc["series"]["A"] == [1.5, 3.0]
        assert doc["notes"] == ["hello"]

    def test_save_by_extension(self, tmp_path):
        fig = self._figure()
        csv_path = tmp_path / "fig.csv"
        json_path = tmp_path / "fig.json"
        txt_path = tmp_path / "fig.txt"
        fig.save(str(csv_path))
        fig.save(str(json_path))
        fig.save(str(txt_path))
        assert csv_path.read_text().startswith("threads")
        assert json.loads(json_path.read_text())["title"] == "t"
        assert "Figure X" in txt_path.read_text()

    def test_cli_save(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["fig12", "--quick", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "fig12.csv").exists()
        assert (tmp_path / "fig12.json").exists()
