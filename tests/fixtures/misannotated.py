"""Deliberately misannotated tasks — one per linter rule.

This file is a *linting fixture*: ``tests/test_check_lint.py`` runs
``repro.check`` over it and asserts that every seeded violation is
reported (and nothing else).  It is never imported or executed.

Each task below is misannotated in exactly one way; the comment above
each names the rule it seeds.  ``ok_task`` and ``suppressed_write`` at
the bottom must produce no findings.
"""

import numpy as np

from repro.core.api import css_task

COUNTER = np.zeros(1)


# input-write: the body scales `a` in place, but `a` is declared input.
@css_task("input(a) output(b)")
def scale_wrong(a, b):
    a *= 2.0
    b[:] = a


# input-write (comment-pragma style): same bug via an item assignment.
# pragma css task input(v)
def clamp_wrong(v):
    v[0] = 0.0


# undeclared-mutation: `scratch` appears in no clause, so the runtime
# passes it by value and ignores it in the dependency analysis.
@css_task("input(a)")
def sneaky_scratch(a, scratch):
    scratch[0] = a[0]


# unwritten-output: `b` is declared output but the body only reads `a`.
@css_task("input(a) output(b)")
def forgot_output(a, b):
    total = a.sum()
    return total


# read-before-write: `c` is output-only, so its storage may be a fresh
# renamed buffer with undefined contents; reading it first is a bug.
@css_task("input(a) output(c)")
def accumulate_wrong(a, c):
    tmp = c[0]
    c[0] = tmp + a[0]


# global-mutation: the write to COUNTER is invisible to the dependency
# analysis and races across worker threads.
@css_task("input(a)")
def count_calls(a):
    COUNTER[0] += a[0]


# unknown-region-name: `K` is neither a parameter nor a declared
# compile-time constant.
@css_task("input(n) output(v{0..K})")
def bad_bound(n, v):
    v[:] = float(n)


# helper for the opaque-leak case below (itself correctly annotated)
@css_task("input(src) output(dst)")
def copy_vec(src, dst):
    dst[:] = src


# opaque-leak: `handle` bypasses the dependency analysis, yet it is fed
# into copy_vec's dependency-carrying `src` parameter (the inner call
# runs inline, so only the outer clauses protect it).
@css_task("opaque(handle) output(dst)")
def leak_opaque(handle, dst):
    copy_vec(handle, dst)


# bad-pragma: the clause declares `q`, which is not a parameter.
@css_task("input(a) output(q)")
def phantom_param(a, b):
    b[:] = a


# --- clean controls (must produce no findings) ----------------------------


@css_task("input(a) inout(c)")
def ok_task(a, c):
    c += a


# The violation on the next task is acknowledged with a suppression.
@css_task("input(a)")
def suppressed_write(a):
    a[0] = 1.0  # css: ignore[input-write]
