"""Deliberately misflowed driver — one bug per whole-program rule.

This file is a *flow fixture*: ``tests/test_check_flow.py`` runs
``repro.check.flow`` over it and asserts that every seeded bug is
reported exactly once (and nothing else).  It is never imported or
executed — the abstract interpreter walks it symbolically.

Each ``*_bug`` function below trips exactly one ``flow-*`` rule; the
comment above the offending line names it.  The ``clean_*`` functions
at the bottom must produce no findings.
"""

import numpy as np

from repro import SmpssRuntime
from repro.core.api import barrier, css_task


@css_task("inout(data{i..j}) input(i, j)")
def fill_t(data, i, j):
    data[i : j + 1] = i


@css_task("input(a) inout(acc)")
def accum_t(a, acc):
    acc += a.sum()


@css_task("output(a)")
def produce_t(a):
    a[:] = 1.0


@css_task("input(a)")
def consume_t(a):
    a.sum()


@css_task("inout(rep) opaque(m) input(r)")
def opaque_row_t(rep, m, r):
    m[r] = m[r] * 2.0


@css_task("inout(m)")
def touch_all_t(m):
    m += 1.0


def overlapping_writes_bug():
    # flow-overlapping-writes: the second fill writes {8..24}, which
    # partially overlaps the first write {0..15} without either region
    # containing the other.
    data = np.zeros(32, np.float64)
    fill_t(data, 0, 15)
    fill_t(data, 8, 24)
    barrier()


def opaque_race_bug():
    # flow-opaque-race: touch_all_t writes the matrix that
    # opaque_row_t told the runtime to ignore, in the same epoch.
    m = np.zeros((4, 8))
    rep = np.zeros(1)
    opaque_row_t(rep, m, 0)
    touch_all_t(m)
    barrier()


def missing_barrier_bug():
    # flow-missing-barrier: the driver reads a[0] while produce_t's
    # write is still in flight.
    a = np.zeros(4)
    produce_t(a)
    print(a[0])
    barrier()


def dead_barrier_bug():
    a = np.zeros(4)
    produce_t(a)
    barrier()
    # flow-dead-barrier: nothing was submitted since the barrier
    # above, so this one provably synchronises nothing.
    barrier()


def serialization_bug():
    # flow-serialization: six inout accumulations form one RAW chain
    # that is 100% of the epoch — no parallelism to extract.
    a = np.ones(8)
    acc = np.zeros(1)
    for _ in range(6):
        accum_t(a, acc)
    barrier()


def renaming_pressure_bug():
    # flow-renaming-pressure: every produce_t lands while the previous
    # consume_t may still be reading, so the tracker renames ``a`` on
    # each of the last nine iterations — past the advisory threshold.
    a = np.zeros(16)
    for _ in range(10):
        produce_t(a)
        consume_t(a)
    barrier()


def clean_pipeline():
    # control: disjoint region writes run in parallel; the barrier
    # lands before the driver read — nothing to report.
    data = np.zeros(100, np.float64)
    for i in range(0, 100, 10):
        fill_t(data, i, i + 9)
    barrier()
    print(data.sum())


def clean_chain():
    # control: a short dependent chain is normal (below both the
    # length and the dominance thresholds), and one rename is not
    # pressure.
    a = np.ones(8)
    acc = np.zeros(1)
    accum_t(a, acc)
    accum_t(a, acc)
    produce_t(a)
    barrier()


def main() -> None:
    with SmpssRuntime(num_workers=2):
        overlapping_writes_bug()
        opaque_race_bug()
        missing_barrier_bug()
        dead_barrier_bug()
        serialization_bug()
        renaming_pressure_bug()
        clean_pipeline()
        clean_chain()


if __name__ == "__main__":
    main()
