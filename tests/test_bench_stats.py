"""Robust statistics, provenance, and figure aggregation for --repeat."""

import json

import pytest

from repro.bench.harness import FigureResult
from repro.bench.provenance import SCHEMA_VERSION, collect_provenance, git_revision
from repro.bench.stats import (
    aggregate_figures,
    iqr,
    median,
    noise_threshold,
    quantile,
)

pytestmark = pytest.mark.bench


class TestQuantiles:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == pytest.approx(2.5)

    def test_quantile_interpolates(self):
        assert quantile([0, 10], 0.25) == pytest.approx(2.5)
        assert quantile([5], 0.99) == 5

    def test_quantile_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_iqr(self):
        assert iqr([1.0]) == 0.0
        assert iqr([1, 2, 3, 4]) == pytest.approx(1.5)


class TestNoiseThreshold:
    def test_floor_applies_for_deterministic_runs(self):
        assert noise_threshold(10.0, 0.0, 0.0) == pytest.approx(0.05)

    def test_widens_with_spread(self):
        # 3 * (0.5 + 0.5) / 10 = 0.3 > the 5% floor
        assert noise_threshold(10.0, 0.5, 0.5) == pytest.approx(0.3)

    def test_zero_baseline_never_flags(self):
        assert noise_threshold(0.0, 1.0, 1.0) == float("inf")


def _fig(values, spread=None):
    fig = FigureResult("figX", "t", "threads", "Gflops", [1, 2])
    fig.add("SMPSs", values)
    if spread is not None:
        fig.spread["SMPSs"] = spread
    return fig


class TestAggregateFigures:
    def test_median_and_iqr_per_point(self):
        agg = aggregate_figures([_fig([10, 20]), _fig([12, 24]), _fig([11, 22])])
        assert agg.get("SMPSs").values == pytest.approx([11.0, 22.0])
        assert agg.spread["SMPSs"] == pytest.approx([1.0, 2.0])

    def test_single_run_zero_spread(self):
        agg = aggregate_figures([_fig([10, 20])])
        assert agg.spread["SMPSs"] == [0.0, 0.0]

    def test_mismatched_axes_rejected(self):
        other = FigureResult("figX", "t", "threads", "Gflops", [1, 4])
        other.add("SMPSs", [1, 2])
        with pytest.raises(ValueError):
            aggregate_figures([_fig([10, 20]), other])

    def test_mismatched_series_rejected(self):
        other = FigureResult("figX", "t", "threads", "Gflops", [1, 2])
        other.add("Other", [1, 2])
        with pytest.raises(ValueError):
            aggregate_figures([_fig([10, 20]), other])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_figures([])


class TestProvenance:
    def test_collect_is_json_safe_and_complete(self):
        prov = collect_provenance(repeats=5, scale="quick", seed=7, figure="fig11")
        json.dumps(prov)  # must not raise
        assert prov["schema"] == SCHEMA_VERSION
        assert prov["repeats"] == 5
        assert prov["scale"] == "quick"
        assert prov["seed"] == 7
        assert prov["figure"] == "fig11"
        assert prov["python"]
        assert prov["timestamp_iso"].endswith("Z")

    def test_git_revision_in_this_repo(self):
        sha = git_revision()
        assert sha is None or (len(sha) == 40 and all(
            c in "0123456789abcdef" for c in sha
        ))

    def test_seed_omitted_when_none(self):
        assert "seed" not in collect_provenance()


class TestFigureRoundTrip:
    def test_provenance_and_spread_survive_save_load(self, tmp_path):
        fig = _fig([10, 20], spread=[0.5, 1.0])
        fig.provenance = collect_provenance(repeats=3, scale="quick")
        path = tmp_path / "f.json"
        fig.save(str(path))
        loaded = FigureResult.load(str(path))
        assert loaded.get("SMPSs").values == [10, 20]
        assert loaded.spread["SMPSs"] == [0.5, 1.0]
        assert loaded.provenance["repeats"] == 3
        assert loaded.provenance["schema"] == SCHEMA_VERSION

    def test_legacy_json_without_provenance_loads(self, tmp_path):
        doc = {"figure_id": "f", "title": "t", "xlabel": "x", "ylabel": "y",
               "x": [1], "series": {"s": [2.0]}, "notes": []}
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(doc))
        loaded = FigureResult.load(str(path))
        assert loaded.provenance == {} and loaded.spread == {}
