"""Tests for post-mortem analysis and simulated-trace integration."""

import numpy as np
import pytest

from repro import SmpssRuntime, css_task
from repro.core.analysis import (
    average_parallelism,
    greedy_bounds,
    load_balance,
    parallelism_profile,
    task_type_summary,
    work_and_span,
)
from repro.core.tracing import Tracer


@css_task("inout(a)")
def bump(a):
    a += 1


@css_task("input(a) output(b)")
def copy_t(a, b):
    b[...] = a


def synthetic_tracer(intervals):
    """Tracer with hand-built task intervals."""

    tracer = Tracer(clock=lambda: 0.0)

    class _T:
        def __init__(self, task_id, name):
            self.task_id = task_id
            self.name = name

    from repro.core.tracing import TraceEvent, EventKind

    for task_id, (start, end, thread, name) in enumerate(intervals, 1):
        tracer.events.append(TraceEvent(start, EventKind.TASK_START, task_id, name, thread))
        tracer.events.append(TraceEvent(end, EventKind.TASK_END, task_id, name, thread))
    return tracer


class TestSummaries:
    def test_task_type_summary(self):
        tracer = synthetic_tracer([
            (0.0, 1.0, 0, "a"),
            (0.0, 3.0, 1, "a"),
            (1.0, 2.0, 0, "b"),
        ])
        summary = task_type_summary(tracer)
        assert summary["a"].count == 2
        assert summary["a"].total_time == pytest.approx(4.0)
        assert summary["a"].mean_time == pytest.approx(2.0)
        assert summary["a"].min_time == 1.0 and summary["a"].max_time == 3.0
        assert summary["b"].count == 1

    def test_average_parallelism(self):
        tracer = synthetic_tracer([
            (0.0, 2.0, 0, "a"),
            (0.0, 2.0, 1, "a"),
        ])
        assert average_parallelism(tracer) == pytest.approx(2.0)

    def test_load_balance_perfect(self):
        tracer = synthetic_tracer([
            (0.0, 2.0, 0, "a"),
            (0.0, 2.0, 1, "a"),
        ])
        assert load_balance(tracer) == pytest.approx(1.0)

    def test_load_balance_skewed(self):
        tracer = synthetic_tracer([
            (0.0, 3.0, 0, "a"),
            (0.0, 1.0, 1, "a"),
        ])
        assert load_balance(tracer) == pytest.approx((2.0) / 3.0)

    def test_empty_tracer(self):
        tracer = synthetic_tracer([])
        assert average_parallelism(tracer) == 0.0
        assert load_balance(tracer) == 1.0
        assert parallelism_profile(tracer) == []


class TestParallelismProfile:
    def test_profile_counts(self):
        tracer = synthetic_tracer([
            (0.0, 4.0, 0, "a"),
            (1.0, 3.0, 1, "a"),
        ])
        profile = parallelism_profile(tracer, samples=4)
        times = [t for t, _ in profile]
        counts = [c for _t, c in profile]
        assert times[0] == 0.0 and times[-1] == 4.0
        assert counts[0] == 1  # only the first task at t=0
        assert counts[2] == 2  # both at t=2
        assert counts[-1] == 0  # everything ended by t=4 (closed ends)


class TestWorkSpan:
    def test_work_span_on_recorded_graph(self):
        from repro.core.recorder import record_program

        data = np.zeros(4)

        def program():
            for _ in range(5):
                bump(data)  # a serial chain

        prog = record_program(program, execute="skip")
        work, span, parallelism = work_and_span(prog.graph, lambda t: 2.0)
        assert work == pytest.approx(10.0)
        assert span == pytest.approx(10.0)  # chain: span == work
        assert parallelism == pytest.approx(1.0)

    def test_work_span_parallel_graph(self):
        from repro.core.recorder import record_program

        def program():
            for _ in range(6):
                bump(np.zeros(1))  # independent tasks

        prog = record_program(program, execute="skip")
        work, span, parallelism = work_and_span(prog.graph, lambda t: 1.0)
        assert (work, span, parallelism) == (6.0, 1.0, 6.0)

    def test_greedy_bounds(self):
        lower, upper = greedy_bounds(work=100.0, span=10.0, cores=8)
        assert lower == pytest.approx(12.5)
        assert upper == pytest.approx(22.5)
        with pytest.raises(ValueError):
            greedy_bounds(1.0, 1.0, 0)

    def test_simulated_makespan_within_greedy_bounds(self):
        """The section III policy is greedy: check Brent's bounds."""

        from repro.apps.cholesky import cholesky_hyper
        from repro.blas.hypermatrix import HyperMatrix
        from repro.core.recorder import record_program
        from repro.sim import ALTIX_32, CostModel, simulate_program

        def sym(n):
            hm = HyperMatrix(n, 1, np.float32)
            for i in range(n):
                for j in range(n):
                    hm[i, j] = np.zeros((1, 1), np.float32)
            return hm

        cores = 8
        machine = ALTIX_32.with_cores(cores)
        cost = CostModel(machine, block_size=256)
        res = simulate_program(
            cholesky_hyper, sym(10), machine=machine,
            cost_model=CostModel(machine, block_size=256),
        )
        prog = record_program(cholesky_hyper, sym(10), execute="skip")
        work, span, _p = work_and_span(
            prog.graph, lambda t: cost.duration(t, None)
        )
        lower, upper = greedy_bounds(work, span, cores)
        # Allow a margin: the simulator adds main-thread generation and
        # cache effects the plain weights don't include.
        assert res.makespan >= lower * 0.8
        assert res.makespan <= upper * 1.5


class TestSimulatedTracing:
    def test_virtual_time_trace(self):
        from repro.apps.cholesky import cholesky_hyper
        from repro.blas.hypermatrix import HyperMatrix
        from repro.sim import ALTIX_32, CostModel, SimulatedRuntime

        hm = HyperMatrix(4, 1, np.float32)
        for i in range(4):
            for j in range(4):
                hm[i, j] = np.zeros((1, 1), np.float32)
        machine = ALTIX_32.with_cores(4)
        runtime = SimulatedRuntime(
            machine=machine,
            cost_model=CostModel(machine, block_size=128),
            trace=True,
        )
        with runtime:
            cholesky_hyper(hm)
            runtime.barrier()
        tracer = runtime.tracer
        intervals = tracer.task_intervals()
        assert len(intervals) == 20  # hyper_task_count(4)["total"]
        # Virtual timestamps are consistent with the simulated makespan.
        result = runtime.result()
        assert max(e for _s, e, *_ in intervals.values()) == pytest.approx(
            result.makespan, rel=1e-9
        )
        # Analyses work on virtual traces too.
        assert average_parallelism(tracer) > 1.0
        assert 0 < load_balance(tracer) <= 1.0
        prv = tracer.to_paraver()
        assert prv.startswith("#Paraver")

    def test_threaded_trace_analysis_end_to_end(self):
        data = np.zeros(8)
        outs = [np.zeros(8) for _ in range(12)]
        rt = SmpssRuntime(num_workers=2, trace=True)
        with rt:
            for out in outs:
                copy_t(data, out)
            rt.barrier()
        summary = task_type_summary(rt.tracer)
        assert summary["copy_t"].count == 12
        profile = parallelism_profile(rt.tracer, samples=10)
        assert len(profile) == 11
