"""Tests for the exporters: Chrome trace JSON, DOT, and .prv format."""

import json
from collections import defaultdict

import numpy as np
import pytest

from repro import SmpssRuntime, css_task, record_program
from repro.core.tracing import EventKind, Tracer
from repro.obs import (
    graph_to_dot,
    load_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_dot,
)

pytestmark = pytest.mark.obs


@css_task("inout(a)")
def bump(a):
    a += 1


@css_task("input(a) inout(b)")
def add_into(a, b):
    b += a


def _traced_run(tasks=6, workers=2):
    arr = np.zeros(1)
    rt = SmpssRuntime(num_workers=workers, trace=True)
    with rt:
        for _ in range(tasks):
            bump(arr)
        rt.barrier()
    return rt


class TestChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(_traced_run().tracer)
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert {"B", "E", "i", "M"} <= phases

    def test_required_fields_and_pairing(self):
        """The satellite round-trip: validate ph/ts/tid and B/E pairing."""

        tracer = _traced_run(tasks=5).tracer
        doc = json.loads(json.dumps(to_chrome_trace(tracer)))  # via JSON
        open_stack = defaultdict(list)  # tid -> stack of task ids
        begins = ends = 0
        for rec in doc["traceEvents"]:
            if rec["ph"] == "M":
                continue
            assert isinstance(rec["ts"], (int, float)) and rec["ts"] >= 0
            assert isinstance(rec["tid"], int) and rec["tid"] >= 0
            assert rec["pid"] == 1
            if rec["ph"] == "B":
                begins += 1
                open_stack[rec["tid"]].append(rec["args"]["task_id"])
            elif rec["ph"] == "E":
                ends += 1
                assert open_stack[rec["tid"]], "E without matching B on tid"
                assert open_stack[rec["tid"]].pop() == rec["args"]["task_id"]
        assert begins == ends == 5
        assert all(not stack for stack in open_stack.values())

    def test_timestamps_sorted_and_zero_based(self):
        doc = to_chrome_trace(_traced_run().tracer)
        ts = [r["ts"] for r in doc["traceEvents"] if r["ph"] != "M"]
        assert ts == sorted(ts)
        assert ts[0] == pytest.approx(0.0)

    def test_round_trip_preserves_intervals(self, tmp_path):
        tracer = _traced_run(tasks=4).tracer
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        events = load_chrome_trace(path)
        original = tracer.task_intervals()
        starts = {e.task_id: e for e in events if e.kind == EventKind.TASK_START}
        ends = {e.task_id: e for e in events if e.kind == EventKind.TASK_END}
        assert set(starts) == set(original)
        for task_id, (begin, end, thread, _name) in original.items():
            # Shifted origin, same durations (to ~us resolution).
            duration = ends[task_id].time - starts[task_id].time
            assert duration == pytest.approx(end - begin, abs=5e-6)
            assert ends[task_id].thread == thread

    def test_round_trip_preserves_releasing_thread(self, tmp_path):
        """task_ready instants carry the unlocking thread for locality."""

        arr = np.zeros(1)
        rt = SmpssRuntime(num_workers=2, trace=True)
        with rt:
            for _ in range(4):
                bump(arr)  # a chain: later tasks released by workers
            rt.barrier()
        path = write_chrome_trace(rt.tracer, str(tmp_path / "t.json"))
        loaded = [
            e for e in load_chrome_trace(path) if e.kind == EventKind.TASK_READY
        ]
        original = [
            e for e in rt.tracer.events if e.kind == EventKind.TASK_READY
        ]
        assert sorted(e.thread for e in loaded) == sorted(
            e.thread for e in original
        )
        assert any(e.thread == -1 for e in loaded)  # the root submission

    def test_virtual_time_trace_exports(self):
        times = iter(float(i) for i in range(100))
        tracer = Tracer(clock=lambda: next(times))
        tracer.barrier_enter()
        tracer.barrier_exit()
        doc = to_chrome_trace(tracer)
        instants = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert [r["name"] for r in instants] == ["barrier_enter", "barrier_exit"]
        assert instants[1]["ts"] == pytest.approx(1e6)  # 1 virtual second


class TestDotExport:
    def _recorded_chain(self):
        def program():
            a = np.zeros(1)
            b = np.zeros(1)
            bump(a)
            add_into(a, b)
            bump(b)

        return record_program(program, execute="skip")

    def test_critical_path_highlighted(self):
        prog = self._recorded_chain()
        dot = graph_to_dot(prog.graph)
        assert dot.startswith("digraph")
        # The three-task chain is all critical: every node bold red.
        assert dot.count(", color=red, penwidth=3]") == 3  # nodes
        assert dot.count("[color=red, penwidth=3]") == 2  # both edges

    def test_no_highlight_option(self):
        prog = self._recorded_chain()
        dot = graph_to_dot(prog.graph, highlight_critical=False)
        assert "color=red" not in dot

    def test_label_names(self):
        dot = graph_to_dot(self._recorded_chain().graph, label_names=True)
        assert "bump" in dot

    def test_write_dot(self, tmp_path):
        prog = self._recorded_chain()
        path = write_dot(prog.graph, str(tmp_path / "g.dot"))
        text = open(path).read()
        assert text.startswith("digraph") and text.endswith("}\n")

    def test_recorded_program_to_dot_delegates(self):
        prog = self._recorded_chain()
        assert prog.to_dot() == graph_to_dot(prog.graph)


class TestParaverFormat:
    """Satellite: pin down the .prv record format of Tracer.to_paraver."""

    def test_header_and_record_structure(self):
        tracer = _traced_run(tasks=3).tracer
        lines = tracer.to_paraver().splitlines()
        assert lines[0].startswith("#Paraver (")
        state_records = [l for l in lines if l.startswith("1:")]
        event_records = [l for l in lines if l.startswith("2:")]
        # One state record per executed task.
        assert len(state_records) == 3
        for record in state_records:
            fields = record.split(":")
            # 1:cpu:appl:task:thread:begin:end:state
            assert len(fields) == 8
            cpu, appl, task, thread = fields[1:5]
            assert int(cpu) >= 1 and int(thread) >= 1
            assert (appl, task) == ("1", "1")
            begin, end = int(fields[5]), int(fields[6])
            assert end >= begin >= 0  # integer microseconds
        for record in event_records:
            fields = record.split(":")
            # 2:cpu:appl:task:thread:time:type:value
            assert len(fields) == 8
            assert int(fields[6]) >= 90000001  # event type code space
        # Trailer documents the type codes.
        assert lines[-1].startswith("# event types:")

    def test_event_type_codes_cover_point_events(self):
        tracer = _traced_run(tasks=2).tracer
        text = tracer.to_paraver()
        counts = tracer.counts()
        # task_added events (code 90000001) appear once per task.
        added_records = [
            l for l in text.splitlines()
            if l.startswith("2:") and l.split(":")[6] == "90000001"
        ]
        assert len(added_records) == counts[EventKind.TASK_ADDED] == 2
