"""Tests for the ``#pragma css task`` clause parser (sections II, V.A)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pragma import (
    PragmaError,
    parse_expression,
    parse_pragma,
)
from repro.core.task import Direction


class TestDirectionalityClauses:
    def test_single_input(self):
        p = parse_pragma("input(a)")
        assert len(p.params) == 1
        assert p.params[0].name == "a"
        assert p.params[0].direction is Direction.INPUT

    def test_figure2_sgemm(self):
        p = parse_pragma("input(a, b) inout(c)")
        assert [s.name for s in p.params] == ["a", "b", "c"]
        assert [s.direction for s in p.params] == [
            Direction.INPUT, Direction.INPUT, Direction.INOUT,
        ]

    def test_output_clause(self):
        p = parse_pragma("output(dest)")
        assert p.params[0].direction is Direction.OUTPUT

    def test_opaque_clause(self):
        p = parse_pragma("opaque(A) input(i, j) output(a)")
        assert p.params[0].direction is Direction.OPAQUE

    def test_multiple_clauses_same_direction(self):
        p = parse_pragma("input(a) input(b)")
        assert len(p.params) == 2

    def test_empty_pragma(self):
        p = parse_pragma("")
        assert p.params == []
        assert not p.high_priority

    def test_full_pragma_line_tolerated(self):
        # The whole construct tail may be passed verbatim.
        p = parse_pragma("css task input(a) inout(b)")
        assert [s.name for s in p.params] == ["a", "b"]


class TestHighPriority:
    def test_highpriority_flag(self):
        assert parse_pragma("highpriority").high_priority
        assert parse_pragma("input(a) highpriority").high_priority
        assert not parse_pragma("input(a)").high_priority


class TestDimensionSpecifiers:
    def test_single_dimension(self):
        p = parse_pragma("input(data[N])")
        spec = p.params[0]
        assert len(spec.dims) == 1
        assert spec.dims[0].evaluate({"N": 10}) == 10

    def test_figure2_matrix_dims(self):
        p = parse_pragma("input(a[M][M], b[M][M]) inout(c[M][M])")
        for spec in p.params:
            assert len(spec.dims) == 2

    def test_dimension_expression(self):
        p = parse_pragma("input(a[N*M+1])")
        assert p.params[0].dims[0].evaluate({"N": 3, "M": 4}) == 13


class TestRegionSpecifiers:
    def test_bounds_form(self):
        p = parse_pragma("inout(data{i..j})")
        region = p.params[0].regions[0]
        assert region.bounds({"i": 2, "j": 7}) == (2, 7)

    def test_length_form(self):
        p = parse_pragma("input(data{l:L})")
        region = p.params[0].regions[0]
        assert region.bounds({"l": 4, "L": 3}) == (4, 6)

    def test_empty_form_with_extent(self):
        p = parse_pragma("input(data{})")
        region = p.params[0].regions[0]
        assert region.full
        assert region.bounds({}, extent=10) == (0, 9)

    def test_empty_form_unknown_extent(self):
        p = parse_pragma("input(data{})")
        assert p.params[0].regions[0].bounds({}, extent=None) == (0, -1)

    def test_figure7_seqmerge(self):
        p = parse_pragma(
            "input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) "
            "output(dest{i1..j2})"
        )
        data_specs = p.specs_for("data")
        assert len(data_specs) == 2
        assert all(s.has_region for s in data_specs)
        dest = p.specs_for("dest")[0]
        assert dest.direction is Direction.OUTPUT

    def test_multidimensional_regions(self):
        p = parse_pragma("inout(A{r0..r1}{c0..c1})")
        spec = p.params[0]
        assert len(spec.regions) == 2

    def test_region_after_dims(self):
        p = parse_pragma("input(data[N]{i..j})")
        spec = p.params[0]
        assert len(spec.dims) == 1 and len(spec.regions) == 1

    def test_region_with_expressions(self):
        p = parse_pragma("input(data{i+1..2*j-1})")
        assert p.params[0].regions[0].bounds({"i": 0, "j": 3}) == (1, 5)

    def test_line_continuations(self):
        p = parse_pragma("input(a) \\\n inout(b)")
        assert [s.name for s in p.params] == ["a", "b"]


class TestValidation:
    def test_unknown_clause(self):
        with pytest.raises(PragmaError, match="unknown clause"):
            parse_pragma("banana(a)")

    def test_missing_paren(self):
        with pytest.raises(PragmaError):
            parse_pragma("input(a")

    def test_duplicate_without_regions(self):
        # The error must name the parameter and both clauses.
        with pytest.raises(
            PragmaError, match=r"'a' is listed in both the 'input' and 'output'"
        ):
            parse_pragma("input(a) output(a)")

    def test_duplicate_same_clause(self):
        with pytest.raises(
            PragmaError, match=r"'x' is listed twice in the 'input' clause"
        ):
            parse_pragma("input(x, y, x)")

    def test_duplicate_same_clause_repeated(self):
        with pytest.raises(
            PragmaError, match=r"'x' is listed 3 times in the 'inout' clause"
        ):
            parse_pragma("inout(x, x, x)")

    def test_duplicate_mixed_regions_still_rejected(self):
        # One appearance carrying a region does not legitimise the other.
        with pytest.raises(PragmaError, match=r"'a' is listed"):
            parse_pragma("input(a{0..1}) output(a)")

    def test_duplicate_with_regions_ok(self):
        p = parse_pragma("input(a{0..1}) output(a{2..3})")
        assert len(p.specs_for("a")) == 2

    def test_duplicate_same_clause_with_regions_ok(self):
        # Section V.A: several appearances are fine when each has a region.
        p = parse_pragma("input(a{0..1}) input(a{4..5})")
        assert len(p.specs_for("a")) == 2

    def test_opaque_conflicts_with_direction(self):
        with pytest.raises(PragmaError, match="opaque"):
            parse_pragma("opaque(p) input(p{0..1})")

    def test_region_dim_count_mismatch(self):
        with pytest.raises(PragmaError, match="one region per dimension"):
            parse_pragma("input(a[N][N]{0..1})")

    def test_bad_region_separator(self):
        with pytest.raises(PragmaError):
            parse_pragma("input(a{1;2})")

    def test_garbage_characters(self):
        with pytest.raises(PragmaError, match="unexpected character"):
            parse_pragma("input(a) @")


class TestExpressions:
    def test_integer(self):
        assert parse_expression("42").evaluate({}) == 42

    def test_precedence(self):
        assert parse_expression("2+3*4").evaluate({}) == 14
        assert parse_expression("(2+3)*4").evaluate({}) == 20

    def test_unary_minus(self):
        assert parse_expression("-3+5").evaluate({}) == 2

    def test_c99_truncating_division(self):
        assert parse_expression("7/2").evaluate({}) == 3
        assert parse_expression("0-7/2").evaluate({}) == -3  # trunc toward 0

    def test_modulo(self):
        assert parse_expression("7%3").evaluate({}) == 1

    def test_unknown_name(self):
        with pytest.raises(PragmaError, match="unknown parameter"):
            parse_expression("x+1").evaluate({})

    def test_division_by_zero(self):
        with pytest.raises(PragmaError, match="division by zero"):
            parse_expression("1/0").evaluate({})

    def test_names_collection(self):
        assert parse_expression("i+2*quarter-1").names() == {"i", "quarter"}

    def test_trailing_garbage(self):
        with pytest.raises(PragmaError, match="trailing"):
            parse_expression("1 2")

    def test_empty(self):
        with pytest.raises(PragmaError, match="empty"):
            parse_expression("   ")

    @given(
        a=st.integers(0, 1000), b=st.integers(0, 1000), c=st.integers(1, 100)
    )
    def test_matches_python_semantics(self, a, b, c):
        expr = parse_expression("a*b+a/c-b%c")
        expected = a * b + a // c - b % c  # all operands non-negative
        assert expr.evaluate({"a": a, "b": b, "c": c}) == expected

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**4))
    def test_c99_division_identity(self, num, den):
        # (num/den)*den + num%den == num, C99 semantics.
        env = {"n": num, "d": den}
        q = parse_expression("n/d").evaluate(env)
        r = parse_expression("n%d").evaluate(env)
        assert q * den + r == num
        assert abs(r) < den
