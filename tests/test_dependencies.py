"""Tests for the run-time dependency analysis + renaming (section II)."""

import numpy as np
import pytest

from repro.core.dependencies import (
    DependencyError,
    DependencyTracker,
    TrackerConfig,
)
from repro.core.graph import EdgeKind, TaskGraph
from repro.core.invocation import instantiate
from repro.core.pragma import parse_pragma
from repro.core.regions import Region
from repro.core.renaming import StorageKind
from repro.core.representants import Representant
from repro.core.task import TaskDefinition, TaskState, reset_task_ids


def make_def(pragma: str, func):
    return TaskDefinition(func=func, params=parse_pragma(pragma).params)


def reader(a):  # noqa: ARG001
    pass


def writer(a):  # noqa: ARG001
    pass


def update(a):  # noqa: ARG001
    pass


READ = make_def("input(a)", reader)
WRITE = make_def("output(a)", writer)
UPDATE = make_def("inout(a)", update)


class Harness:
    """A tracker plus helpers to submit accesses to one datum."""

    def __init__(self, **config):
        reset_task_ids()
        self.graph = TaskGraph(keep_finished=True)
        self.tracker = DependencyTracker(
            self.graph, config=TrackerConfig(**config)
        )

    def submit(self, definition, value):
        task = instantiate(definition, (value,), {})
        self.tracker.analyze(task)
        return task

    def finish(self, task):
        for t in self.graph.complete(task):
            pass

    def edges(self):
        return {(p, s): k for p, s, k in self.graph.edges()}


@pytest.fixture
def data():
    return np.zeros(4, dtype=np.float32)


class TestTrueDependencies:
    def test_read_after_write(self, data):
        h = Harness()
        w = h.submit(UPDATE, data)
        r = h.submit(READ, data)
        assert h.edges() == {(w.task_id, r.task_id): EdgeKind.TRUE}
        assert r.num_pending_deps == 1

    def test_chain_of_inouts(self, data):
        h = Harness()
        tasks = [h.submit(UPDATE, data) for _ in range(4)]
        for prev, nxt in zip(tasks, tasks[1:]):
            assert (prev.task_id, nxt.task_id) in h.edges()
        assert h.graph.stats.total_edges == 3

    def test_no_dep_on_finished_producer(self, data):
        h = Harness()
        w = h.submit(UPDATE, data)
        h.finish(w)
        r = h.submit(READ, data)
        assert r.num_pending_deps == 0
        assert h.graph.stats.total_edges == 0

    def test_parallel_readers_share_producer(self, data):
        h = Harness()
        w = h.submit(UPDATE, data)
        readers = [h.submit(READ, data) for _ in range(3)]
        for r in readers:
            assert (w.task_id, r.task_id) in h.edges()
        # Readers are mutually independent.
        assert h.graph.stats.total_edges == 3

    def test_duplicate_access_single_edge(self, data):
        two = make_def("input(a) input(b)", lambda a, b: None)
        h = Harness()
        w = h.submit(UPDATE, data)
        task = instantiate(two, (data, data), {})
        h.tracker.analyze(task)
        assert h.graph.stats.total_edges == 1  # deduplicated


class TestRenaming:
    def test_war_on_output_renames(self, data):
        """WAR: pending reader + new writer -> fresh buffer, no edge."""

        h = Harness()
        w0 = h.submit(UPDATE, data)
        r = h.submit(READ, data)
        w1 = h.submit(WRITE, data)
        assert w1.num_pending_deps == 0  # renamed: independent of reader
        assert (r.task_id, w1.task_id) not in h.edges()
        assert h.graph.stats.renames == 1
        (_name, version), = w1.writes
        assert version.kind is StorageKind.FRESH

    def test_waw_on_output_renames(self, data):
        h = Harness()
        w0 = h.submit(WRITE, data)
        w1 = h.submit(WRITE, data)
        assert w1.num_pending_deps == 0
        assert h.graph.stats.renames == 1

    def test_output_without_hazard_reuses_storage(self, data):
        h = Harness()
        w0 = h.submit(WRITE, data)
        h.finish(w0)
        w1 = h.submit(WRITE, data)
        assert h.graph.stats.renames == 0
        (_n, version), = w1.writes
        assert version.kind is StorageKind.SAME

    def test_inout_with_pending_reader_clones(self, data):
        """The N Queens pattern: sibling placements get private copies."""

        h = Harness()
        w0 = h.submit(UPDATE, data)
        r = h.submit(READ, data)
        w1 = h.submit(UPDATE, data)
        # True dep on w0 (reads the value) but NOT on the reader.
        edges = h.edges()
        assert (w0.task_id, w1.task_id) in edges
        assert (r.task_id, w1.task_id) not in edges
        (_n, version), = w1.writes
        assert version.kind is StorageKind.CLONE

    def test_renaming_disabled_gives_anti_edges(self, data):
        h = Harness(enable_renaming=False)
        w0 = h.submit(UPDATE, data)
        r = h.submit(READ, data)
        w1 = h.submit(WRITE, data)
        edges = h.edges()
        assert edges[(r.task_id, w1.task_id)] == EdgeKind.ANTI
        assert edges[(w0.task_id, w1.task_id)] == EdgeKind.OUTPUT
        assert h.graph.stats.renames == 0

    def test_rename_inout_disabled_gives_anti_edges(self, data):
        h = Harness(rename_inout=False)
        h.submit(UPDATE, data)
        r = h.submit(READ, data)
        w1 = h.submit(UPDATE, data)
        assert h.edges()[(r.task_id, w1.task_id)] == EdgeKind.ANTI

    def test_clone_storage_contains_previous_value(self, data):
        h = Harness()
        w0 = h.submit(UPDATE, data)
        # Simulate w0 running: write through its version storage.
        (_n, v0), = w0.writes
        v0.resolve_storage()[...] = 7.0
        h.finish(w0)
        r = h.submit(READ, data)
        w1 = h.submit(UPDATE, data)
        (_n, v1), = w1.writes
        if v1.kind is StorageKind.CLONE:
            assert (v1.resolve_storage() == 7.0).all()

    def test_representant_never_renamed(self):
        rep = Representant("blk")
        h = Harness()
        h.submit(UPDATE, rep)
        r = h.submit(READ, rep)
        w = h.submit(WRITE, rep)
        assert h.edges()[(r.task_id, w.task_id)] == EdgeKind.ANTI
        assert h.graph.stats.renames == 0


class TestOpaqueAndScalars:
    def test_opaque_skipped(self, data):
        opq = make_def("opaque(a)", lambda a: None)
        h = Harness()
        h.submit(opq, data)
        h.submit(opq, data)
        assert h.graph.stats.total_edges == 0
        assert h.tracker.tracked_count == 0

    def test_scalars_by_value(self):
        scal = make_def("input(a)", lambda a: None)
        h = Harness()
        h.submit(scal, 42)
        h.submit(scal, "text")
        h.submit(scal, (1, 2))
        assert h.tracker.tracked_count == 0

    def test_scalars_rejected_when_disabled(self):
        scal = make_def("inout(a)", lambda a: None)
        h = Harness(allow_untracked_scalars=False)
        with pytest.raises(DependencyError):
            h.submit(scal, 42)


class TestRegionDependencies:
    def region_def(self, pragma):
        return make_def(pragma, lambda data, i, j: None)

    def submit_region(self, h, pragma, data, i, j):
        d = self.region_def(pragma)
        task = instantiate(d, (data, i, j), {})
        h.tracker.analyze(task)
        return task

    def test_disjoint_regions_independent(self):
        data = np.zeros(100, np.float32)
        h = Harness()
        a = self.submit_region(h, "inout(data{i..j}) input(i, j)", data, 0, 49)
        b = self.submit_region(h, "inout(data{i..j}) input(i, j)", data, 50, 99)
        assert h.graph.stats.total_edges == 0

    def test_overlapping_regions_ordered(self):
        data = np.zeros(100, np.float32)
        h = Harness()
        a = self.submit_region(h, "inout(data{i..j}) input(i, j)", data, 0, 60)
        b = self.submit_region(h, "inout(data{i..j}) input(i, j)", data, 40, 99)
        assert (a.task_id, b.task_id) in h.edges()

    def test_read_read_no_edge(self):
        data = np.zeros(100, np.float32)
        h = Harness()
        self.submit_region(h, "input(data{i..j}, i, j)", data, 0, 60)
        self.submit_region(h, "input(data{i..j}, i, j)", data, 40, 99)
        assert h.graph.stats.total_edges == 0

    def test_figure7_merge_pattern(self):
        """Quarter sorts -> pair merges -> final merge, as in Figure 7."""

        reset_task_ids()
        data = np.zeros(64, np.float32)
        tmp = np.zeros(64, np.float32)
        h = Harness()
        quick = make_def("inout(data{i..j}) input(i, j)", lambda data, i, j: None)
        merge = make_def(
            "input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) output(dest{i1..j2})",
            lambda data, i1, j1, i2, j2, dest: None,
        )
        sorts = []
        for lo, hi in ((0, 15), (16, 31), (32, 47), (48, 63)):
            task = instantiate(quick, (data, lo, hi), {})
            h.tracker.analyze(task)
            sorts.append(task)
        m1 = instantiate(merge, (data, 0, 15, 16, 31, tmp), {})
        h.tracker.analyze(m1)
        m2 = instantiate(merge, (data, 32, 47, 48, 63, tmp), {})
        h.tracker.analyze(m2)
        m3 = instantiate(merge, (tmp, 0, 31, 32, 63, data), {})
        h.tracker.analyze(m3)
        edges = h.edges()
        # m1 depends on exactly the first two sorts.
        assert (sorts[0].task_id, m1.task_id) in edges
        assert (sorts[1].task_id, m1.task_id) in edges
        assert (sorts[2].task_id, m1.task_id) not in edges
        # m2 on the last two.
        assert (sorts[2].task_id, m2.task_id) in edges
        assert (sorts[0].task_id, m2.task_id) not in edges
        # m3 reads tmp (from m1 and m2) and overwrites data (anti deps
        # on the sorts' regions are satisfied transitively or directly).
        assert (m1.task_id, m3.task_id) in edges
        assert (m2.task_id, m3.task_id) in edges
        # m1 and m2 are independent of each other.
        assert (m1.task_id, m2.task_id) not in edges
        assert (m2.task_id, m1.task_id) not in edges

    def test_mixing_region_after_rename_raises(self, data):
        h = Harness()
        h.submit(WRITE, data)
        h.submit(WRITE, data)  # renamed: current version off-base
        region = self.region_def("input(data{i..j}, i, j)")
        task = instantiate(region, (data, 0, 1), {})
        with pytest.raises(DependencyError, match="barrier"):
            h.tracker.analyze(task)

    def test_whole_object_access_in_region_mode(self, data):
        h = Harness()
        region = self.region_def("inout(data{i..j}) input(i, j)")
        t_region = instantiate(region, (data, 0, 3), {})
        h.tracker.analyze(t_region)
        t_whole = h.submit(READ, data)
        assert (t_region.task_id, t_whole.task_id) in h.edges()
        # No renaming in region mode.
        assert h.graph.stats.renames == 0


class TestWriteBack:
    def test_write_back_restores_user_object(self, data):
        h = Harness()
        w0 = h.submit(UPDATE, data)
        r = h.submit(READ, data)
        w1 = h.submit(UPDATE, data)  # cloned
        (_n, v1), = w1.writes
        v1.resolve_storage()[...] = 9.0
        for t in (w0, r, w1):
            h.finish(t)
        count = h.tracker.write_back_all()
        assert count == 1
        assert (data == 9.0).all()

    def test_no_write_back_needed_when_in_place(self, data):
        h = Harness()
        w = h.submit(UPDATE, data)
        h.finish(w)
        assert h.tracker.write_back_all() == 0

    def test_reset_clears_tracking(self, data):
        h = Harness()
        h.submit(UPDATE, data)
        h.tracker.reset()
        assert h.tracker.tracked_count == 0
