"""Setuptools entry point.

A classic ``setup.py`` is kept alongside ``pyproject.toml`` so that
``pip install -e .`` works in fully offline environments whose
setuptools predates wheel-free editable builds (PEP 660 needs the
``wheel`` package before setuptools 70).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of SMP superscalar (SMPSs): a dependency-aware "
        "task-based programming environment for multi-core architectures "
        "(Perez, Badia, Labarta; IEEE Cluster 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
