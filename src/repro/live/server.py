"""The live session's socket server — a thin wrapper over
:class:`repro.net.Server`.

Serves the JSON-lines stream described in :mod:`repro.live.protocol`:
every accepted client first receives the ``hello`` record and the full
retained delta history (so a late attacher reconstructs the in-flight
graph exactly), then rides the live stream.  A per-client reader
thread parses command lines and hands them to the session's handler;
the resulting ``ack`` goes only to that client.

Publishing happens on the *caller's* thread (the session's publisher
drain loop) — a slow or dead client never blocks the runtime itself,
only the publisher, and a client whose socket errors is dropped.

All of that behaviour lives in the shared transport
(:mod:`repro.net.server`); this class only pins the live plane's
thread naming.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.server import Server

__all__ = ["LiveServer"]


class LiveServer(Server):
    """Bind, accept, fan out deltas, and route commands.

    *handler* is ``fn(cmd: dict) -> dict`` returning the ``data`` for a
    successful ack (raise ``ValueError`` for a command error).  *hello*
    is the dict sent (with ``ev: hello`` added) as every connection's
    first record.
    """

    def __init__(
        self,
        address: str,
        handler: Callable[[dict], dict],
        hello: Optional[dict] = None,
        http_responder: Optional[Callable] = None,
    ):
        super().__init__(
            address,
            handler,
            hello=hello,
            http_responder=http_responder,
            name="repro-live",
        )
