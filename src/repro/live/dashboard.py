"""Delta-stream consumer + terminal rendering.

:class:`DashboardState` is the one state machine behind every view of
a run: ``repro.live attach`` feeds it the live socket stream,
``repro.live replay`` feeds it the deltas synthesised from a saved
recording — the acceptance criterion "live and post-mortem views are
one code path" is this class.

It mirrors the graph (tasks, states, edges), the per-worker current
task, the latest control snapshot, and enough timing to estimate the
critical path *of the work seen so far* — unit-weight depth over the
received edges, plus a duration-weighted span once ``done`` deltas
carry real timestamps (the same span/work quantities
:func:`repro.obs.analyze.analyze_events` reports post mortem; call
:meth:`report` to run that full analysis over the collected events).
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

__all__ = ["DashboardState", "render"]

#: Task-state lattice: a delta may only move a task forward (duplicate
#: or out-of-order records — e.g. mp ``running`` arriving after the
#: master already saw ``done`` — are ignored).
_STATE_ORDER = {
    "submitted": 0,
    "blocked": 0,
    "ready": 1,
    "dispatched": 2,
    "running": 3,
    "done": 4,
}


class DashboardState:
    """Apply graph deltas; answer dashboard questions."""

    def __init__(self):
        self.hello: dict = {}
        #: task_id -> {"name", "state", "start", "end", "thread"}
        self.tasks: dict[int, dict] = {}
        #: (src, dst) -> kind
        self.edges: dict[tuple, str] = {}
        #: dst -> [src, ...] (for depth computation)
        self._preds: dict[int, list] = {}
        self.renames = 0
        self.steals = 0
        self.marks: Counter = Counter()
        self.notes: list[str] = []
        self.snapshot: dict = {}
        self.records_applied = 0
        self._depth_dirty = True
        self._depth = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def apply(self, record: dict) -> None:
        """Fold one wire record into the state (idempotent)."""

        ev = record.get("ev")
        self.records_applied += 1
        if ev == "task":
            self._apply_task(record)
        elif ev == "edge":
            key = (record["src"], record["dst"])
            if key not in self.edges:
                self.edges[key] = record.get("kind", "true")
                self._preds.setdefault(key[1], []).append(key[0])
                self._depth_dirty = True
            # An edge can arrive before its tasks' ``submitted`` deltas
            # (the graph emits during analysis, before the runtime's
            # task_added): materialise placeholders.
            for task_id in key:
                self.tasks.setdefault(
                    task_id,
                    {"name": "", "state": "submitted",
                     "start": None, "end": None, "thread": None},
                )
        elif ev == "rename":
            self.renames += 1
        elif ev == "steal":
            self.steals += 1
        elif ev == "mark":
            self.marks[record.get("what", "?")] += 1
        elif ev == "note":
            self.notes.append(record.get("text", ""))
        elif ev == "snapshot":
            self.snapshot = record
        elif ev == "hello":
            self.hello = record

    def _apply_task(self, record: dict) -> None:
        task_id = record["id"]
        info = self.tasks.get(task_id)
        if info is None:
            info = {"name": "", "state": "submitted",
                    "start": None, "end": None, "thread": None}
            self.tasks[task_id] = info
            self._depth_dirty = True
        if record.get("name"):
            info["name"] = record["name"]
        state = record.get("state", "submitted")
        if _STATE_ORDER.get(state, 0) >= _STATE_ORDER.get(info["state"], 0):
            info["state"] = state
        t = record.get("t")
        thread = record.get("thread")
        if state == "running":
            info["start"] = t
            info["thread"] = thread
        elif state == "done":
            info["end"] = t
            if info["thread"] is None:
                info["thread"] = thread
            self._depth_dirty = True

    # ------------------------------------------------------------------
    # questions
    # ------------------------------------------------------------------
    def counts(self) -> Counter:
        """Tasks per state."""

        return Counter(info["state"] for info in self.tasks.values())

    def tasks_by_name(self) -> Counter:
        return Counter(
            info["name"] for info in self.tasks.values() if info["name"]
        )

    def workers(self) -> list:
        """Per-thread current task from the latest snapshot (live) or
        from running deltas (replay)."""

        snap_workers = self.snapshot.get("workers")
        if snap_workers is not None:
            return snap_workers
        by_thread: dict[int, dict] = {}
        for task_id, info in self.tasks.items():
            if info["state"] in ("running", "dispatched") \
                    and info["thread"] is not None:
                by_thread[info["thread"]] = {
                    "id": task_id, "name": info["name"]
                }
        if not by_thread:
            return []
        return [
            by_thread.get(idx) for idx in range(max(by_thread) + 1)
        ]

    def critical_path_depth(self) -> int:
        """Unit-weight longest chain over every edge seen so far."""

        if not self._depth_dirty:
            return self._depth
        depth: dict[int, int] = {}
        for task_id in sorted(self.tasks):  # id order = topological
            best = 0
            for pred in self._preds.get(task_id, ()):
                best = max(best, depth.get(pred, 0))
            depth[task_id] = best + 1
        self._depth = max(depth.values(), default=0)
        self._depth_dirty = False
        return self._depth

    def critical_path_seconds(self) -> float:
        """Duration-weighted longest chain (completed tasks weigh their
        measured time; others the mean completed duration so far) —
        the dashboard's critical-path-so-far estimate."""

        durations = {
            task_id: info["end"] - info["start"]
            for task_id, info in self.tasks.items()
            if info["start"] is not None and info["end"] is not None
        }
        mean = (
            sum(durations.values()) / len(durations) if durations else 0.0
        )
        finish: dict[int, float] = {}
        best = 0.0
        for task_id in sorted(self.tasks):
            start = 0.0
            for pred in self._preds.get(task_id, ()):
                start = max(start, finish.get(pred, 0.0))
            finish[task_id] = start + durations.get(task_id, mean)
            best = max(best, finish[task_id])
        return best

    def to_events(self) -> list:
        """Reconstruct START/END :class:`TraceEvent` pairs for the
        completed tasks, for :func:`repro.obs.analyze.analyze_events`."""

        from ..core.tracing import EventKind, TraceEvent

        events = []
        for task_id, info in sorted(self.tasks.items()):
            if info["start"] is None or info["end"] is None:
                continue
            thread = info["thread"] if info["thread"] is not None else 0
            events.append(TraceEvent(
                time=info["start"], kind=EventKind.TASK_START,
                task_id=task_id, task_name=info["name"], thread=thread,
            ))
            events.append(TraceEvent(
                time=info["end"], kind=EventKind.TASK_END,
                task_id=task_id, task_name=info["name"], thread=thread,
            ))
        events.sort(key=lambda e: e.time)
        return events

    def report(self, num_threads: Optional[int] = None):
        """Full :class:`~repro.obs.analyze.TraceReport` over the
        completed work (live and replay share this path too)."""

        from ..obs.analyze import analyze_events

        return analyze_events(self.to_events(), num_threads=num_threads)

    def signature(self) -> dict:
        """Order-insensitive digest of the mirrored run — what the
        live-vs-replay equivalence test compares."""

        return {
            "tasks": len(self.tasks),
            "by_name": dict(sorted(self.tasks_by_name().items())),
            "edges": len(self.edges),
            "critical_path": self.critical_path_depth(),
            "done": self.counts().get("done", 0),
        }


def render(state: DashboardState, width: int = 72) -> str:
    """The terminal dashboard: counts, workers, queues, control."""

    counts = state.counts()
    snap = state.snapshot
    lines = []
    backend = state.hello.get("backend", "?")
    threads = state.hello.get("threads", snap.get("threads", "?"))
    lines.append("=" * width)
    lines.append(
        f"repro.live — backend={backend} threads={threads} "
        f"records={state.records_applied}"
    )
    lines.append("-" * width)
    total = len(state.tasks)
    done = counts.get("done", 0)
    bar_w = max(10, width - 30)
    filled = int(bar_w * done / total) if total else 0
    lines.append(
        f"tasks {done:>6}/{total:<6} [{'#' * filled}{'.' * (bar_w - filled)}]"
    )
    lines.append(
        "states  "
        + "  ".join(
            f"{name}={counts.get(name, 0)}"
            for name in ("submitted", "ready", "dispatched", "running", "done")
            if counts.get(name, 0)
        )
    )
    lines.append(
        f"graph   edges={len(state.edges)} renames={state.renames} "
        f"steals={state.steals} critical-path≥{state.critical_path_depth()} "
        f"(weighted≈{state.critical_path_seconds():.4g})"
    )
    if snap:
        gate_bits = []
        if snap.get("paused"):
            gate_bits.append("PAUSED")
        if snap.get("step_budget"):
            gate_bits.append(f"step_budget={snap['step_budget']}")
        breaks = list(snap.get("break_names", ())) + [
            f"#{i}" for i in snap.get("break_ids", ())
        ]
        if breaks:
            gate_bits.append("breaks=" + ",".join(str(b) for b in breaks))
        lines.append(
            f"sched   ready={snap.get('ready', '?')} "
            f"running={snap.get('running', '?')} "
            f"parked={snap.get('parked', '?')} "
            f"pending={snap.get('pending', '?')}"
            + ("  [" + " ".join(gate_bits) + "]" if gate_bits else "")
        )
        depths = snap.get("depths")
        if depths:
            local = ",".join(str(d) for d in depths.get("locals", ()))
            lines.append(
                f"queues  high={depths.get('high')} main={depths.get('main')}"
                + (f" locals=[{local}]" if local else "")
            )
    workers = state.workers()
    for idx, current in enumerate(workers):
        if current is None:
            lines.append(f"  thr {idx:2d}  (idle)")
        else:
            lines.append(
                f"  thr {idx:2d}  #{current['id']} {current['name']}"
            )
    if state.notes:
        lines.append("note    " + state.notes[-1])
    lines.append("=" * width)
    return "\n".join(lines)
