"""In-process side of a live run: gate, event tap, publisher thread.

A :class:`LiveSession` is created by ``SmpssRuntime.start()`` when the
``live`` knob is on.  It owns three pieces:

* the **control plane** — a :class:`~repro.core.scheduler.DispatchGate`
  installed on the runtime's scheduler and bound to the runtime's
  scheduler lock and condition variables, so ``pause()`` parks workers
  on the very cvs they already sleep on when queues run dry;
* the **event tap** — a listener on the runtime's tracer that appends
  each :class:`TraceEvent` to a lock-free deque (one C-level append on
  the emitting thread, which may hold runtime locks — nothing heavier
  is allowed there);
* the **event plane** — a publisher thread that drains the deque,
  converts events to graph deltas (:func:`protocol.event_to_delta`),
  and fans them out through a :class:`~repro.live.server.LiveServer`,
  interleaving a metrics snapshot every ``live_snapshot_interval``
  seconds.

The session is also the in-process debugger handle::

    rt = SmpssRuntime(live=True, live_start_paused=True)
    with rt:
        submit_everything()
        rt.live.add_break(name="spotrf_t")
        rt.live.step(5)
        ...
        rt.live.resume()
        rt.barrier()
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import deque
from typing import Optional

from ..core.scheduler import DispatchGate
from .protocol import PROTOCOL_VERSION, event_to_delta
from .server import LiveServer

__all__ = ["LiveSession"]


class LiveSession:
    """Control + event plane for one running :class:`SmpssRuntime`."""

    def __init__(self, runtime):
        self._runtime = runtime
        config = runtime.config
        self._interval = config.live_snapshot_interval
        self._tmpdir = None
        address = config.live_address
        if address is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-live-")
            address = os.path.join(self._tmpdir, "live.sock")

        self.gate = DispatchGate()
        self.gate.bind(
            runtime._sched_lock, runtime._sched_cv, runtime._main_cv
        )
        self.gate.on_hold = self._on_hold
        if config.live_start_paused:
            # Direct field writes: workers do not exist yet, nothing to
            # wake, and the gate is visible before the first dispatch.
            self.gate.paused = True
            self.gate.engaged = True
        # The gate occupies scheduler.gate only while engaged, so an
        # idle live session adds zero cost at the dispatch point.
        self.gate.install(runtime.scheduler)

        #: Pending records: TraceEvent objects from the tap plus
        #: ready-made delta dicts (dispatch notifications, hold notes).
        #: deque.append is a single GIL-atomic op — safe from any
        #: thread without a lock.
        self._queue: deque = deque()
        self._closed = threading.Event()
        self._wake = threading.Event()

        runtime.tracer.listener = self._queue.append

        self.server = LiveServer(
            address,
            self._handle_command,
            hello={
                "version": PROTOCOL_VERSION,
                "threads": runtime.num_threads,
                "backend": config.backend,
                "pid": os.getpid(),
            },
        )
        self._publisher = threading.Thread(
            target=self._publish_loop, name="repro-live-publish", daemon=True
        )
        self._publisher.start()

    @property
    def address(self) -> str:
        """The bound address (the real port when ``tcp:...:0`` asked
        for an ephemeral one) — hand this to ``repro.live attach``."""

        return self.server.address

    # ------------------------------------------------------------------
    # control plane (thread-safe; usable in-process or via commands)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        self.gate.pause()
        self._note("paused")

    def resume(self) -> None:
        self.gate.resume()
        self._note("resumed")

    def step(self, n: int = 1) -> None:
        self.gate.step(n)

    def add_break(self, name: Optional[str] = None,
                  task_id: Optional[int] = None) -> None:
        self.gate.add_break(name=name, task_id=task_id)

    def remove_break(self, name: Optional[str] = None,
                     task_id: Optional[int] = None) -> None:
        self.gate.remove_break(name=name, task_id=task_id)

    def clear_breaks(self) -> None:
        self.gate.clear_breaks()

    def state(self) -> dict:
        """One control/occupancy snapshot (racy reads of scalar fields
        — self-consistent enough for a dashboard, never blocking the
        runtime)."""

        rt = self._runtime
        scheduler = rt.scheduler
        depths_fn = getattr(scheduler, "queue_depths", None)
        workers = []
        for idx, task in enumerate(rt._current):
            if task is None:
                workers.append(None)
            else:
                workers.append({"id": task.task_id, "name": task.name})
        state = dict(self.gate.state())
        state.update(
            running=rt._running,
            parked=rt._parked,
            main_waiting=rt._main_waiting,
            ready=scheduler.ready_count,
            pending=rt.graph.pending_count if rt.graph is not None else 0,
            executed=rt.tasks_executed,
            workers=workers,
            depths=depths_fn() if depths_fn is not None else None,
            clients=self.server.client_count,
        )
        return state

    # ------------------------------------------------------------------
    # hooks (called by the runtime / backends)
    # ------------------------------------------------------------------
    def notify_dispatch(self, task, thread: int) -> None:
        """Process backend: *task* was handed to worker *thread*'s
        process.  Its ``running`` event only arrives with the reply, so
        this is the dashboard's only timely "it left the queue"."""

        self._queue.append(
            {
                "ev": "task",
                "id": task.task_id,
                "name": task.name,
                "state": "dispatched",
                "t": None,
                "thread": thread,
            }
        )
        self._wake.set()

    def _on_hold(self, task) -> None:
        # Called under the scheduler lock: enqueue only.
        self._queue.append(
            {
                "ev": "note",
                "text": (
                    f"breakpoint: held task #{task.task_id} "
                    f"{task.name!r}; runtime paused"
                ),
                "held": task.task_id,
            }
        )
        self._wake.set()

    def _note(self, text: str) -> None:
        self._queue.append({"ev": "note", "text": text})
        self._wake.set()

    def release_for_shutdown(self) -> None:
        """Lift pause/breakpoints so runtime shutdown cannot hang on a
        detached debugger (called by ``SmpssRuntime.shutdown``)."""

        gate = self.gate
        if gate.paused or gate.break_names or gate.break_ids:
            self._note("shutdown: releasing gate (pause/breakpoints cleared)")
            gate.clear_breaks()
            gate.resume()

    # ------------------------------------------------------------------
    # command routing (server reader threads land here)
    # ------------------------------------------------------------------
    def _handle_command(self, command: dict) -> dict:
        cmd = command.get("cmd")
        if cmd == "pause":
            self.pause()
        elif cmd == "resume":
            self.resume()
        elif cmd == "step":
            self.step(int(command.get("n", 1)))
        elif cmd == "break":
            name = command.get("name")
            task_id = command.get("id")
            if command.get("remove"):
                self.remove_break(name=name, task_id=task_id)
            else:
                self.add_break(name=name, task_id=task_id)
        elif cmd == "clear":
            self.clear_breaks()
        elif cmd in ("state", "ping"):
            pass  # the state below is the answer
        else:
            raise ValueError(f"unknown command {cmd!r}")
        return self.state()

    # ------------------------------------------------------------------
    # event plane
    # ------------------------------------------------------------------
    def _publish_loop(self) -> None:
        queue = self._queue
        server = self.server
        last_snapshot = 0.0
        while True:
            closing = self._closed.is_set()
            while queue:
                record = queue.popleft()
                if not isinstance(record, dict):
                    record = event_to_delta(record)
                    if record is None:
                        continue
                server.publish(record)
            if closing:
                # close() detaches the tracer listener before setting
                # the flag, so the drain above saw the final event.
                server.publish(self._snapshot_record(), retain=False)
                return
            now = time.monotonic()
            if now - last_snapshot >= self._interval:
                server.publish(self._snapshot_record(), retain=False)
                last_snapshot = now
            # The tap is a bare deque.append (no wakeup — nothing
            # heavier is allowed on the emitting thread), so the drain
            # polls; dispatch/hold/note records set the event to cut
            # their latency.
            if self._wake.wait(0.02):
                self._wake.clear()

    def _snapshot_record(self) -> dict:
        record = {"ev": "snapshot"}
        record.update(self.state())
        return record

    def close(self) -> None:
        runtime = self._runtime
        if runtime.tracer is not None:
            runtime.tracer.listener = None
        self._closed.set()
        self._wake.set()
        self._publisher.join(timeout=5.0)
        self.server.close()
        if self._tmpdir is not None:
            try:
                os.rmdir(self._tmpdir)
            except OSError:
                pass
