"""The wire format of the live event/control plane.

One JSON object per line, UTF-8, ``\n``-terminated, in both
directions.  The server streams *graph deltas* — the incremental
records a TEMANEJO-style front end needs to mirror the DAG as it grows
and executes — interleaved with periodic ``snapshot`` records; the
client sends small command objects and correlates replies by ``seq``.

Server -> client records (``ev`` field):

``hello``
    First line on every connection: ``version``, ``threads``,
    ``backend``, ``pid``.
``task``
    A task changed state: ``id``, ``name``, ``state`` in
    ``submitted | ready | running | done | dispatched`` (``dispatched``
    is the process backend's "handed to a worker process" — its
    ``running`` only lands when the worker's events ship back),
    ``t`` (tracer clock), ``thread``.
``edge``
    A dependency edge entered the graph: ``src``, ``dst``, ``kind``.
``rename``
    The renaming engine cut a WAR/WAW hazard for ``id``: ``base``
    (type name of the renamed object), ``kind``.
``steal``
    ``id`` moved from ``victim``'s list to ``thief``.
``mark``
    Point event: ``what`` (barrier_enter/exit, wait_on_enter/exit,
    write_back, violation), ``t``, ``thread``.
``note``
    Human-readable server-side message (breakpoint hit, shutdown
    release, ...).
``snapshot``
    Periodic control/occupancy state (see ``LiveSession.state``).
``ack``
    Reply to one command: ``seq``, ``cmd``, ``ok``, ``data`` | ``error``.
``bye``
    Orderly end of stream.

Client -> server commands (``cmd`` field, plus a client-chosen ``seq``):

``pause`` / ``resume`` / ``step`` (``n``) — drive the dispatch gate;
``break`` (``name`` or ``id``, ``remove`` to delete) / ``clear`` —
edit breakpoints; ``state`` — one immediate snapshot in the ack;
``ping`` — liveness; ``detach`` — close this connection only.

Addresses take two forms: ``tcp:HOST:PORT`` (PORT ``0`` binds an
ephemeral port; the server reports the real one) or a filesystem path,
which means a unix-domain socket.
"""

from __future__ import annotations

from typing import Optional

# The wire helpers live in repro.net.protocol (shared with repro.obs
# and repro.serve); re-exported here so every historical import path
# (`from repro.live.protocol import encode`) keeps working.
from ..net.protocol import (  # noqa: F401 - re-exports
    PROTOCOL_VERSION,
    connect,
    decode,
    encode,
    format_address,
    parse_address,
)

__all__ = [
    "PROTOCOL_VERSION",
    "encode",
    "decode",
    "parse_address",
    "format_address",
    "connect",
    "event_to_delta",
]


# ---------------------------------------------------------------------------
# tracer event -> graph delta
# ---------------------------------------------------------------------------

# Imported late to keep this module importable without the core package
# fully initialised (the CLI client only needs encode/decode/connect).
def event_to_delta(event) -> Optional[dict]:
    """Convert one :class:`~repro.core.tracing.TraceEvent` into its
    wire delta, or ``None`` for kinds the stream does not carry."""

    from ..core.tracing import EventKind

    kind = event.kind
    state = _TASK_STATES.get(kind)
    if state is not None:
        return {
            "ev": "task",
            "id": event.task_id,
            "name": event.task_name,
            "state": state,
            "t": event.time,
            "thread": event.thread,
        }
    if kind == EventKind.EDGE_ADDED:
        pred_id, edge_kind = event.extra
        return {
            "ev": "edge",
            "src": pred_id,
            "dst": event.task_id,
            "kind": edge_kind,
        }
    if kind == EventKind.RENAME:
        base, rename_kind = event.extra
        return {
            "ev": "rename",
            "id": event.task_id,
            "base": base,
            "kind": rename_kind,
        }
    if kind == EventKind.STEAL:
        return {
            "ev": "steal",
            "id": event.task_id,
            "thief": event.thread,
            "victim": event.extra[1],
        }
    if kind in _MARK_KINDS:
        return {
            "ev": "mark",
            "what": kind,
            "t": event.time,
            "thread": event.thread,
        }
    return None


def _init_tables():
    from ..core.tracing import EventKind

    task_states = {
        EventKind.TASK_ADDED: "submitted",
        EventKind.TASK_READY: "ready",
        EventKind.TASK_START: "running",
        EventKind.TASK_END: "done",
    }
    mark_kinds = frozenset(
        (
            EventKind.BARRIER_ENTER,
            EventKind.BARRIER_EXIT,
            EventKind.WAIT_ON_ENTER,
            EventKind.WAIT_ON_EXIT,
            EventKind.WRITE_BACK,
            EventKind.VIOLATION,
        )
    )
    return task_states, mark_kinds


_TASK_STATES, _MARK_KINDS = _init_tables()
