"""The wire format of the live event/control plane.

One JSON object per line, UTF-8, ``\n``-terminated, in both
directions.  The server streams *graph deltas* — the incremental
records a TEMANEJO-style front end needs to mirror the DAG as it grows
and executes — interleaved with periodic ``snapshot`` records; the
client sends small command objects and correlates replies by ``seq``.

Server -> client records (``ev`` field):

``hello``
    First line on every connection: ``version``, ``threads``,
    ``backend``, ``pid``.
``task``
    A task changed state: ``id``, ``name``, ``state`` in
    ``submitted | ready | running | done | dispatched`` (``dispatched``
    is the process backend's "handed to a worker process" — its
    ``running`` only lands when the worker's events ship back),
    ``t`` (tracer clock), ``thread``.
``edge``
    A dependency edge entered the graph: ``src``, ``dst``, ``kind``.
``rename``
    The renaming engine cut a WAR/WAW hazard for ``id``: ``base``
    (type name of the renamed object), ``kind``.
``steal``
    ``id`` moved from ``victim``'s list to ``thief``.
``mark``
    Point event: ``what`` (barrier_enter/exit, wait_on_enter/exit,
    write_back, violation), ``t``, ``thread``.
``note``
    Human-readable server-side message (breakpoint hit, shutdown
    release, ...).
``snapshot``
    Periodic control/occupancy state (see ``LiveSession.state``).
``ack``
    Reply to one command: ``seq``, ``cmd``, ``ok``, ``data`` | ``error``.
``bye``
    Orderly end of stream.

Client -> server commands (``cmd`` field, plus a client-chosen ``seq``):

``pause`` / ``resume`` / ``step`` (``n``) — drive the dispatch gate;
``break`` (``name`` or ``id``, ``remove`` to delete) / ``clear`` —
edit breakpoints; ``state`` — one immediate snapshot in the ack;
``ping`` — liveness; ``detach`` — close this connection only.

Addresses take two forms: ``tcp:HOST:PORT`` (PORT ``0`` binds an
ephemeral port; the server reports the real one) or a filesystem path,
which means a unix-domain socket.
"""

from __future__ import annotations

import json
import socket
from typing import Optional

__all__ = [
    "PROTOCOL_VERSION",
    "encode",
    "decode",
    "parse_address",
    "format_address",
    "connect",
    "event_to_delta",
]

PROTOCOL_VERSION = 1


def encode(record: dict) -> bytes:
    """One wire line for *record* (compact separators, trailing LF)."""

    return json.dumps(record, separators=(",", ":")).encode() + b"\n"


def decode(line) -> Optional[dict]:
    """Parse one wire line; ``None`` for blank/unparseable lines."""

    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def parse_address(spec: str) -> tuple:
    """``"tcp:HOST:PORT"`` -> ``("tcp", host, port)``; anything else is
    a unix-socket path -> ``("unix", path)``."""

    if spec.startswith("tcp:"):
        rest = spec[4:]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"bad tcp address {spec!r}; expected tcp:HOST:PORT"
            )
        return ("tcp", host, int(port))
    return ("unix", spec)


def format_address(parsed: tuple) -> str:
    if parsed[0] == "tcp":
        return f"tcp:{parsed[1]}:{parsed[2]}"
    return parsed[1]


def connect(spec: str, timeout: Optional[float] = None) -> socket.socket:
    """Client-side connect to a server address spec."""

    parsed = parse_address(spec)
    if parsed[0] == "tcp":
        sock = socket.create_connection(
            (parsed[1], parsed[2]), timeout=timeout
        )
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            sock.settimeout(timeout)
        sock.connect(parsed[1])
    return sock


# ---------------------------------------------------------------------------
# tracer event -> graph delta
# ---------------------------------------------------------------------------

# Imported late to keep this module importable without the core package
# fully initialised (the CLI client only needs encode/decode/connect).
def event_to_delta(event) -> Optional[dict]:
    """Convert one :class:`~repro.core.tracing.TraceEvent` into its
    wire delta, or ``None`` for kinds the stream does not carry."""

    from ..core.tracing import EventKind

    kind = event.kind
    state = _TASK_STATES.get(kind)
    if state is not None:
        return {
            "ev": "task",
            "id": event.task_id,
            "name": event.task_name,
            "state": state,
            "t": event.time,
            "thread": event.thread,
        }
    if kind == EventKind.EDGE_ADDED:
        pred_id, edge_kind = event.extra
        return {
            "ev": "edge",
            "src": pred_id,
            "dst": event.task_id,
            "kind": edge_kind,
        }
    if kind == EventKind.RENAME:
        base, rename_kind = event.extra
        return {
            "ev": "rename",
            "id": event.task_id,
            "base": base,
            "kind": rename_kind,
        }
    if kind == EventKind.STEAL:
        return {
            "ev": "steal",
            "id": event.task_id,
            "thief": event.thread,
            "victim": event.extra[1],
        }
    if kind in _MARK_KINDS:
        return {
            "ev": "mark",
            "what": kind,
            "t": event.time,
            "thread": event.thread,
        }
    return None


def _init_tables():
    from ..core.tracing import EventKind

    task_states = {
        EventKind.TASK_ADDED: "submitted",
        EventKind.TASK_READY: "ready",
        EventKind.TASK_START: "running",
        EventKind.TASK_END: "done",
    }
    mark_kinds = frozenset(
        (
            EventKind.BARRIER_ENTER,
            EventKind.BARRIER_EXIT,
            EventKind.WAIT_ON_ENTER,
            EventKind.WAIT_ON_EXIT,
            EventKind.WRITE_BACK,
            EventKind.VIOLATION,
        )
    )
    return task_states, mark_kinds


_TASK_STATES, _MARK_KINDS = _init_tables()
