"""Time-travel replay: drive the dashboard from a saved recording.

A :class:`ReplayEngine` takes the topology + submission stream saved by
:meth:`RecordedProgram.save <repro.core.recorder.RecordedProgram.save>`
and synthesises the *same wire deltas* a live session would stream —
submitted / edge / ready / running / done — into a
:class:`~repro.live.dashboard.DashboardState`.  One code path renders
both the living run and the post-mortem one; that is the point.

Execution is in deterministic *units* of virtual time: each unit runs
the lowest-id ready task (the order the runtime's own deterministic
release path favours) on a round-robin virtual thread.  ``step(n)``
advances n units; ``back(n)`` rewinds by rebuilding from the start and
stepping forward again — state is tiny, so time travel is a replay of
a replay.
"""

from __future__ import annotations

from typing import Optional

from ..core.recorder import LoadedRecording, load_recording
from .dashboard import DashboardState

__all__ = ["ReplayEngine"]


class ReplayEngine:
    """Deterministic stepping over a :class:`LoadedRecording`."""

    def __init__(self, recording, num_threads: int = 4,
                 dashboard: Optional[DashboardState] = None):
        if not isinstance(recording, LoadedRecording):
            recording = load_recording(recording)
        self.recording = recording
        self.num_threads = max(1, num_threads)
        self.dashboard = dashboard if dashboard is not None \
            else DashboardState()
        self.units = 0
        self._names: dict[int, str] = {}
        self._ready: list[int] = []
        self._pending_deps: dict[int, int] = {}
        self._succs: dict[int, list] = {}
        self._done: set[int] = set()
        self.reset()

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def _emit(self, record: dict) -> None:
        self.dashboard.apply(record)

    def reset(self) -> None:
        """Rebuild to unit 0: whole stream submitted, nothing run.

        Submissions flush eagerly — exactly the picture a live client
        sees under ``live_start_paused=True``, where the main thread
        races ahead of the (gated) workers and the full worst-case
        hazard graph is on screen before the first dispatch.
        """

        rec = self.recording
        self.units = 0
        self._done = set()
        self._names = {tid: name for tid, name, _prio in rec.tasks}
        in_edges: dict[int, list] = {}
        self._succs = {}
        self._pending_deps = {}
        for src, dst, kind in rec.edges:
            in_edges.setdefault(dst, []).append((src, kind))
            self._succs.setdefault(src, []).append(dst)
            self._pending_deps[dst] = self._pending_deps.get(dst, 0) + 1
        for succs in self._succs.values():
            succs.sort()
        self._ready = []
        self._emit({
            "ev": "hello",
            "backend": "replay",
            "threads": self.num_threads,
            "version": 1,
        })
        for tid, name, _prio in rec.tasks:
            self._emit({
                "ev": "task", "id": tid, "name": name,
                "state": "submitted", "t": 0.0, "thread": -1,
            })
            for src, kind in in_edges.get(tid, ()):
                self._emit({"ev": "edge", "src": src, "dst": tid,
                            "kind": kind})
            if self._pending_deps.get(tid, 0) == 0:
                self._ready.append(tid)
                self._emit({
                    "ev": "task", "id": tid, "name": name,
                    "state": "ready", "t": 0.0, "thread": -1,
                })
        self._ready.sort()
        for entry in rec.stream:
            if entry[0] in ("barrier", "wait"):
                self._emit({"ev": "mark",
                            "what": f"replay_{entry[0]}",
                            "t": 0.0, "thread": 0})
        self._snapshot()

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, n: int = 1) -> int:
        """Advance *n* execution units; returns how many actually ran."""

        ran = 0
        for _ in range(n):
            if not self._ready:
                break
            task_id = self._ready.pop(0)  # lowest id (list kept sorted)
            thread = self.units % self.num_threads
            name = self._names.get(task_id, "")
            self._emit({
                "ev": "task", "id": task_id, "name": name,
                "state": "running", "t": float(self.units),
                "thread": thread,
            })
            self._emit({
                "ev": "task", "id": task_id, "name": name,
                "state": "done", "t": float(self.units + 1),
                "thread": thread,
            })
            self._done.add(task_id)
            released = []
            for succ in self._succs.get(task_id, ()):
                self._pending_deps[succ] -= 1
                if self._pending_deps[succ] == 0:
                    released.append(succ)
            for succ in released:
                self._ready.append(succ)
                self._emit({
                    "ev": "task", "id": succ,
                    "name": self._names.get(succ, ""),
                    "state": "ready", "t": float(self.units + 1),
                    "thread": thread,
                })
            if released:
                self._ready.sort()
            self.units += 1
            ran += 1
        self._snapshot()
        return ran

    def back(self, n: int = 1) -> int:
        """Rewind *n* units (floor 0); returns the new unit index."""

        target = max(0, self.units - n)
        # Keep the same dashboard object but restart its world: a fresh
        # state applied in place, so callers holding a reference see
        # the rewound picture.
        self.dashboard.__init__()
        self.reset()
        if target:
            self.step(target)
        return self.units

    def run(self, limit: int = 10_000_000) -> int:
        """Execute to the end (or *limit* units); returns units run."""

        ran = 0
        while self._ready and ran < limit:
            ran += self.step(min(1024, limit - ran))
        return ran

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def done_count(self) -> int:
        return len(self._done)

    @property
    def remaining(self) -> int:
        return len(self.recording.tasks) - len(self._done)

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    def _snapshot(self) -> None:
        self._emit({
            "ev": "snapshot",
            "paused": True,  # replay only moves when stepped
            "step_budget": 0,
            "break_names": [], "break_ids": [],
            "ready": len(self._ready),
            "running": 0,
            "parked": self.num_threads - 1,
            "pending": self.remaining,
            "executed": len(self._done),
            "unit": self.units,
        })
