"""Client side of the live protocol (used by the CLI and by tests).

A thin wrapper over :class:`repro.net.Client` — deliberately
single-threaded: every byte is read inside :meth:`recv`, and a command
waits for its own ``ack`` by seq while parking any interleaved graph
deltas on an internal buffer that later ``recv`` calls serve first.
That makes scripted sessions deterministic — there is no background
reader racing the assertions.

This module only adds the live plane's command verbs (pause/resume/
step/break/state) and keeps the historical exception names as aliases
of the shared transport's.
"""

from __future__ import annotations

from typing import Optional

from ..net.client import Client, NetClosed, NetTimeout

__all__ = ["LiveClient", "LiveTimeout", "LiveClosed"]

#: Historical names: every existing caller catches these; they ARE the
#: shared transport exceptions, so either spelling works everywhere.
LiveTimeout = NetTimeout
LiveClosed = NetClosed


class LiveClient(Client):
    """Attach to a live session; stream deltas; drive the gate."""

    def __init__(self, address: str, timeout: float = 10.0):
        super().__init__(address, timeout=timeout, expect_hello=True)

    # ------------------------------------------------------------------
    # live-plane command verbs
    # ------------------------------------------------------------------
    def pause(self) -> dict:
        return self.command("pause")

    def resume(self) -> dict:
        return self.command("resume")

    def step(self, n: int = 1) -> dict:
        return self.command("step", n=n)

    def set_break(self, name: Optional[str] = None,
                  task_id: Optional[int] = None) -> dict:
        fields: dict = {}
        if name is not None:
            fields["name"] = name
        if task_id is not None:
            fields["id"] = task_id
        return self.command("break", **fields)

    def clear_breaks(self) -> dict:
        return self.command("clear")

    def state(self) -> dict:
        return self.command("state")

    def ping(self) -> dict:
        return self.command("ping")

    def __enter__(self) -> "LiveClient":
        return self
