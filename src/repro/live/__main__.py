"""Live inspection from the command line.

Usage::

    python -m repro.live attach /tmp/repro-live-x/live.sock
    python -m repro.live attach tcp:127.0.0.1:4242 \\
        --script "state; break spotrf_t; step 5; clear; resume; wait-done"
    python -m repro.live replay cholesky.recording.json
    python -m repro.live replay cholesky.recording.json \\
        --script "step 10; render; back 3; run"

``attach`` connects to a runtime started with ``live=True`` (its bound
address is on ``runtime.live.address``) and mirrors the delta stream
into the shared dashboard; ``replay`` drives the *same* dashboard from
a recording saved with ``RecordedProgram.save``.

Commands (interactive prompt or ``--script``, ``;``-separated):

    state                 refresh the control snapshot (attach only)
    render                print the dashboard
    pause | resume        gate control
    step [N]              dispatch N tasks (default 1)
    back [N]              rewind N units (replay only)
    break NAME | break #ID    set a breakpoint (task type / task id)
    clear                 drop every breakpoint
    run                   replay: execute to the end
    wait-done             attach: block until every task is done
    report                analysis over completed work (obs.analyze)
    quit                  detach / exit
"""

from __future__ import annotations

import argparse
import sys

from .client import LiveClient, LiveClosed, LiveTimeout
from .dashboard import DashboardState, render
from .replay import ReplayEngine

__all__ = ["main"]


def _parse_break(arg: str) -> dict:
    if arg.startswith("#"):
        return {"task_id": int(arg[1:])}
    try:
        return {"task_id": int(arg)}
    except ValueError:
        return {"name": arg}


def _pump(client: LiveClient, state: DashboardState,
          idle: float = 0.2) -> int:
    """Apply everything currently on the wire; returns record count."""

    records = client.drain(idle=idle)
    for record in records:
        state.apply(record)
    return len(records)


def _attach_command(client, state, verb, arg, out) -> bool:
    """One attach-mode command; returns False to exit."""

    if verb in ("quit", "exit", "detach"):
        return False
    if verb == "render":
        print(render(state), file=out)
    elif verb == "state":
        snapshot = dict(client.state())
        snapshot["ev"] = "snapshot"
        state.apply(snapshot)
        print(render(state), file=out)
    elif verb == "pause":
        client.pause()
    elif verb == "resume":
        client.resume()
    elif verb == "step":
        client.step(int(arg) if arg else 1)
    elif verb == "break":
        if not arg:
            raise ValueError("break needs a task-type name or #id")
        client.set_break(**_parse_break(arg))
    elif verb == "clear":
        client.clear_breaks()
    elif verb == "wait-done":
        total = len(state.tasks)

        def _done(record):
            state.apply(record)
            counts = state.counts()
            done = counts.get("done", 0)
            return len(state.tasks) >= max(total, 1) \
                and done == len(state.tasks)

        try:
            client.wait_for(_done, timeout=120.0)
        except LiveClosed:
            pass  # stream ended: the run is over
    elif verb == "report":
        print(state.report(), file=out)
    elif verb == "ping":
        client.ping()
    else:
        raise ValueError(f"unknown command {verb!r}")
    return True


def _run_attach(args, out=sys.stdout) -> int:
    try:
        client = LiveClient(args.address, timeout=args.timeout)
    except (OSError, LiveClosed) as exc:
        print(f"cannot attach to {args.address!r}: {exc}", file=sys.stderr)
        return 1
    state = DashboardState()
    state.apply(dict(client.hello))
    exit_code = 0
    try:
        _pump(client, state, idle=args.settle)
        if args.script is not None:
            for raw in args.script.split(";"):
                word = raw.strip()
                if not word:
                    continue
                parts = word.split(None, 1)
                verb, arg = parts[0], parts[1] if len(parts) > 1 else ""
                try:
                    keep_going = _attach_command(
                        client, state, verb, arg, out
                    )
                except (LiveTimeout, ValueError, RuntimeError) as exc:
                    print(f"{verb}: {exc}", file=sys.stderr)
                    exit_code = 1
                    break
                except LiveClosed:
                    break
                _pump(client, state, idle=0.1)
                if not keep_going:
                    break
            print(render(state), file=out)
        else:
            _interactive_attach(client, state, out)
    finally:
        client.detach()
    return exit_code


def _interactive_attach(client, state, out) -> None:
    print(render(state), file=out)
    print("commands: state render pause resume step [n] "
          "break <name|#id> clear wait-done report quit", file=out)
    while True:
        try:
            line = input("live> ").strip()
        except EOFError:
            return
        if not line:
            _pump(client, state, idle=0.1)
            print(render(state), file=out)
            continue
        parts = line.split(None, 1)
        verb, arg = parts[0], parts[1] if len(parts) > 1 else ""
        try:
            if not _attach_command(client, state, verb, arg, out):
                return
        except (LiveTimeout, ValueError, RuntimeError) as exc:
            print(f"{verb}: {exc}", file=out)
        except LiveClosed:
            print("(stream ended)", file=out)
            return
        _pump(client, state, idle=0.1)


def _run_replay(args, out=sys.stdout) -> int:
    try:
        engine = ReplayEngine(args.recording, num_threads=args.threads)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot replay {args.recording!r}: {exc}", file=sys.stderr)
        return 1
    state = engine.dashboard

    def one(verb: str, arg: str) -> bool:
        if verb in ("quit", "exit"):
            return False
        if verb == "render":
            print(render(state), file=out)
        elif verb == "step":
            engine.step(int(arg) if arg else 1)
        elif verb == "back":
            engine.back(int(arg) if arg else 1)
        elif verb == "run":
            engine.run()
        elif verb == "report":
            print(state.report(num_threads=args.threads), file=out)
        elif verb == "state":
            pass  # snapshots are synthesised on every step
        else:
            raise ValueError(f"unknown command {verb!r}")
        return True

    if args.script is not None:
        code = 0
        for raw in args.script.split(";"):
            word = raw.strip()
            if not word:
                continue
            parts = word.split(None, 1)
            verb, arg = parts[0], parts[1] if len(parts) > 1 else ""
            try:
                if not one(verb, arg):
                    break
            except ValueError as exc:
                print(f"{verb}: {exc}", file=sys.stderr)
                code = 1
                break
        print(render(state), file=out)
        return code
    print(render(state), file=out)
    print("commands: step [n] back [n] run render report quit", file=out)
    while True:
        try:
            line = input("replay> ").strip()
        except EOFError:
            return 0
        if not line:
            print(render(state), file=out)
            continue
        parts = line.split(None, 1)
        verb, arg = parts[0], parts[1] if len(parts) > 1 else ""
        try:
            if not one(verb, arg):
                return 0
        except ValueError as exc:
            print(f"{verb}: {exc}", file=out)
        print(render(state), file=out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Attach to a live run, or replay a recording.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    attach = sub.add_parser("attach", help="attach to a live runtime")
    attach.add_argument("address", help="unix-socket path or tcp:HOST:PORT")
    attach.add_argument(
        "--script", default=None,
        help=";-separated commands to run instead of the prompt",
    )
    attach.add_argument("--timeout", type=float, default=10.0,
                        help="per-read socket timeout (seconds)")
    # Must stay below the server's live_snapshot_interval (0.25 s by
    # default): a wider window never sees the stream go quiet.
    attach.add_argument("--settle", type=float, default=0.2,
                        help="initial stream drain window (seconds)")
    replay = sub.add_parser("replay", help="replay a saved recording")
    replay.add_argument("recording",
                        help="JSON from RecordedProgram.save(path)")
    replay.add_argument("--script", default=None,
                        help=";-separated commands (see attach)")
    replay.add_argument("--threads", type=int, default=4,
                        help="virtual thread count for the replay")
    args = parser.parse_args(argv)
    if args.command == "attach":
        return _run_attach(args)
    return _run_replay(args)


if __name__ == "__main__":
    from repro.__main__ import deprecation_note

    deprecation_note("repro.live", "live")
    raise SystemExit(main())
