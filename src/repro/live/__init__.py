"""Live task-graph inspection, scheduler control, and replay.

The runtime records everything post mortem (:mod:`repro.obs`); this
package is the *in flight* counterpart — TEMANEJO-style (PAPERS.md)
attachable debugging for the SMPSs runtime:

* ``SmpssRuntime(live=True)`` installs a dispatch gate (pause /
  resume / step(n) / task-boundary breakpoints) and serves the run as
  a JSON-lines stream of graph deltas over a unix or TCP socket;
* ``python -m repro.live attach <addr>`` renders the terminal
  dashboard and drives the gate;
* ``python -m repro.live replay <recording>`` replays a saved
  :class:`~repro.core.recorder.RecordedProgram` through the very same
  dashboard, with ``step``/``back`` time travel.

See ``docs/observability.md`` ("Live inspection & replay").
"""

from .client import LiveClient, LiveClosed, LiveTimeout
from .dashboard import DashboardState, render
from .protocol import PROTOCOL_VERSION, parse_address
from .replay import ReplayEngine
from .session import LiveSession

__all__ = [
    "LiveClient",
    "LiveClosed",
    "LiveTimeout",
    "LiveSession",
    "DashboardState",
    "render",
    "ReplayEngine",
    "PROTOCOL_VERSION",
    "parse_address",
]
