"""The unified command line: ``python -m repro <command>``.

One front door for every tool in the package::

    python -m repro lint src/repro/apps          # annotation linter
    python -m repro flow driver.py --format json # whole-program flow
    python -m repro obs report trace.json        # trace analysis
    python -m repro bench --help                 # figure harness
    python -m repro live attach tcp:...          # live inspection
    python -m repro serve tcp:127.0.0.1:7070     # task-graph service

Conventions shared by every command: machine output via ``--json`` /
``--format json`` where the command produces findings, exit 0 on
success, 1 on findings/failure, 2 on usage errors.

The historical per-module forms (``python -m repro.check lint``,
``python -m repro.obs``, ``python -m repro.bench``, ``python -m
repro.live``, ``python -m repro.serve``) keep working as aliases —
they print a pointer to this entry point on stderr and behave
identically otherwise.
"""

from __future__ import annotations

import sys

_USAGE = """\
usage: python -m repro <command> [args...]

commands:
  lint    check task bodies against their pragmas (repro.check lint)
  flow    whole-program dependency-flow analysis (repro.check flow)
  obs     trace reports, diffs, metrics exposition (repro.obs)
  bench   the figure/benchmark harness (repro.bench)
  live    live task-graph inspection and replay (repro.live)
  serve   the multi-tenant task-graph service daemon (repro.serve)
  dist    node agents for the distributed backend (repro.dist)

`python -m repro <command> --help` shows that command's options.
"""

#: command -> (module with a ``main(argv) -> int``, argv prefix)
COMMANDS = {
    "lint": ("repro.check.__main__", ["lint"]),
    "flow": ("repro.check.__main__", ["flow"]),
    "check": ("repro.check.__main__", []),
    "obs": ("repro.obs.__main__", []),
    "bench": ("repro.bench.__main__", []),
    "live": ("repro.live.__main__", []),
    "serve": ("repro.serve.__main__", []),
    "dist": ("repro.dist.__main__", []),
}


def deprecation_note(module: str, command: str) -> None:
    """One-line pointer printed by the legacy ``-m repro.X`` forms."""

    print(
        f"note: `python -m {module}` is an alias; the unified entry "
        f"point is `python -m repro {command}`",
        file=sys.stderr,
    )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    if argv[0] == "--version":
        import repro

        print(f"repro {repro.__version__}")
        return 0
    command, rest = argv[0], argv[1:]
    entry = COMMANDS.get(command)
    if entry is None:
        print(f"unknown command {command!r}\n\n{_USAGE}", file=sys.stderr, end="")
        return 2
    module_name, prefix = entry
    import importlib

    module = importlib.import_module(module_name)
    return module.main(prefix + rest)


if __name__ == "__main__":
    raise SystemExit(main())
