"""Calibration data: tile-kernel efficiency profiles and baseline knobs.

The paper's tasks call "highly tuned BLAS libraries" — non-threaded
Goto BLAS 1.20 and MKL 9.1.  Those libraries enter the evaluation only
through two observable properties, which we calibrate here:

1. **Tile efficiency vs block size** — fraction of per-core peak a
   level-3 kernel sustains on an MxM tile.  Small tiles amortise loop
   and packing overheads poorly; both curves saturate past ~256.  Goto
   sits slightly above MKL at large tiles, matching the Figure 8 gap
   between "SMPSs + Goto tiles" and "SMPSs + MKL tiles".
2. **Fork-join parallel scaling** — the *threaded* versions of the
   libraries synchronise internally per factorisation step.  Figure 11
   shows threaded MKL saturating around 4 threads and threaded Goto
   around 10 on Cholesky; the per-library barrier/partition constants
   below reproduce those plateaus through the fork-join model of
   :mod:`repro.sim.forkjoin` (a documented substitution — the real
   libraries are closed-source; see DESIGN.md).

All numbers are order-of-magnitude realistic for 1.6 GHz Itanium2 but
are *shape* calibrations, not measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["LibraryProfile", "LIBRARIES", "interp_efficiency"]


def interp_efficiency(curve: dict[int, float], m: int) -> float:
    """Log2-linear interpolation of an efficiency curve at tile size m."""

    if m <= 0:
        raise ValueError("tile size must be positive")
    sizes = sorted(curve)
    if m <= sizes[0]:
        return curve[sizes[0]]
    if m >= sizes[-1]:
        return curve[sizes[-1]]
    for lo, hi in zip(sizes, sizes[1:]):
        if lo <= m <= hi:
            frac = (math.log2(m) - math.log2(lo)) / (math.log2(hi) - math.log2(lo))
            return curve[lo] + frac * (curve[hi] - curve[lo])
    raise AssertionError  # pragma: no cover


@dataclass(frozen=True)
class LibraryProfile:
    """One BLAS personality: tile efficiency + threaded-version scaling."""

    name: str
    #: gemm efficiency vs tile size (fraction of core peak).
    gemm_efficiency: dict[int, float] = field(default_factory=dict)
    #: multiplicative factors for the other level-3 kernels.
    syrk_factor: float = 0.95
    trsm_factor: float = 0.90
    potrf_factor: float = 0.62
    #: fork-join model: per-step barrier cost = a + b * threads.
    barrier_base: float = 0.0
    barrier_per_thread: float = 0.0
    #: internal blocking the threaded library partitions work with.
    internal_block: int = 192
    #: fraction of each trailing update the library fails to
    #: parallelise (pipelining/lookahead deficiencies).
    serial_fraction: float = 0.0
    #: dependency-limited concurrency of the library's *factorisation*
    #: path: beyond this many threads the extra ones find no work
    #: between synchronisation points ("we suspect their
    #: implementations are limited by [the dependencies]", section
    #: VI.A).  GEMM, having no inter-step chain, ignores this cap.
    factor_concurrency: float = 1e9

    def efficiency(self, kernel_class: str, m: int) -> float:
        base = interp_efficiency(self.gemm_efficiency, m)
        factor = {
            "gemm": 1.0,
            "syrk": self.syrk_factor,
            "trsm": self.trsm_factor,
            "potrf": self.potrf_factor,
        }.get(kernel_class, 1.0)
        return base * factor


_GOTO_CURVE = {
    32: 0.30, 64: 0.55, 128: 0.78, 256: 0.885,
    512: 0.925, 1024: 0.935, 2048: 0.94,
}

_MKL_CURVE = {
    32: 0.27, 64: 0.50, 128: 0.73, 256: 0.845,
    512: 0.885, 1024: 0.895, 2048: 0.90,
}

LIBRARIES: dict[str, LibraryProfile] = {
    # Threaded Goto scales to ~10 threads on Cholesky: moderate barrier
    # cost and a small unparallelised residue per step.
    "goto": LibraryProfile(
        name="goto",
        gemm_efficiency=_GOTO_CURVE,
        barrier_base=8e-6,
        barrier_per_thread=12e-6,
        internal_block=192,
        serial_fraction=0.008,
        factor_concurrency=11.0,
    ),
    # Threaded MKL 9.1 "does not scale beyond 4 processors" on the
    # complex Cholesky dependencies: heavy per-step synchronisation and
    # a larger serial residue.
    "mkl": LibraryProfile(
        name="mkl",
        gemm_efficiency=_MKL_CURVE,
        barrier_base=15e-6,
        barrier_per_thread=45e-6,
        internal_block=192,
        serial_fraction=0.015,
        factor_concurrency=4.5,
    ),
}


# ---------------------------------------------------------------------------
# Non-BLAS workload constants (sort / search), in seconds per unit work.
# ---------------------------------------------------------------------------

#: Memory contention on the NUMA fabric: bandwidth-bound work (sort and
#: merge streams) slows by ``1 + alpha*(cores-1)`` as active cores
#: multiply.  Calibrated so 32-way multisort lands near the paper's
#: ~13x ceiling (Figure 14).  Compute-bound kernels (level-3 tiles,
#: queens search) are unaffected.
MEMORY_CONTENTION_ALPHA = 0.04

#: seconds per element*log2(element) of sequential quicksort.
SORT_COST_PER_NLOGN = 6.0e-9
#: seconds per merged element.
MERGE_COST_PER_ELEMENT = 3.0e-9
#: seconds per N Queens search-tree node.  Benchmarks override this so
#: that one leaf task lands near the paper's recommended granularity
#: ("the runtime requires tasks of a certain granularity (e.i. 250 us)",
#: section I) regardless of the board size simulated.
QUEENS_COST_PER_NODE = 90.0e-9
#: the paper's granularity guidance, used to derive the node cost.
TARGET_TASK_GRANULARITY = 250e-6
#: Per-node artifact of the duplicating versions, as a fraction of the
#: node cost: allocate + copy the partial-solution array at every task
#: entrance (section VI.E).  OpenMP's tied-task pool pays a little more
#: per task than Cilk's lean spawn.
QUEENS_DUP_FRACTION = {"cilk": 0.10, "omp": 0.16}
#: Sequential-baseline penalty factor for N Queens: the paper measures
#: SMPSs at 1 thread *faster* than the sequential program ("due to the
#: runtime realigning data due to renamings and to the increased
#: locality due to the task reordering").  Our cost model cannot grow
#: that effect from first principles, so the measured ~10% is applied
#: to the sequential baseline as a calibrated constant (documented in
#: EXPERIMENTS.md).
QUEENS_SEQUENTIAL_PENALTY = 1.10
#: OpenMP tied-task-pool per-task overhead (heavier than SMPSs dispatch).
OMP_TASK_OVERHEAD = 2.5e-6
#: Cilk spawn overhead (famously a few times a function call).
CILK_SPAWN_OVERHEAD = 0.4e-6
