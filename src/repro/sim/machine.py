"""Machine description for the simulator.

Defaults model the evaluation platform of section VI: "an SGI Altix
computer ... 32 memory nodes, each with 2 dual core 1.6 GHz Itanium2
processors ... Tests have been run inside a cpuset of 32 cores on 8
nodes".  Itanium2 retires 4 flops/cycle, giving the 204.8 Gflops
32-core peak drawn across Figures 8 and 11-13.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineConfig", "ALTIX_32"]


@dataclass(frozen=True)
class MachineConfig:
    """Virtual machine parameters (all times in seconds, sizes in bytes)."""

    cores: int = 32
    ghz: float = 1.6
    flops_per_cycle: float = 4.0
    #: Sustained per-core memory bandwidth.  8 Altix nodes share a NUMA
    #: fabric; 4 cores per node on ~6.4 GB/s/node gives ~1.6 GB/s/core.
    core_bandwidth: float = 1.6e9
    #: Per-core last-level cache capacity (Itanium2 Madison: 6 MB L3).
    cache_bytes: int = 6 * 1024 * 1024

    # --- runtime overheads (the costs section VI's block-size
    # discussion attributes to "managing so many tasks") ----------------
    #: Main-thread dependency analysis + graph insertion, per task.
    task_add_overhead: float = 3.0e-6
    #: Worker-side dispatch + completion bookkeeping, per task.
    task_dispatch_overhead: float = 1.5e-6
    #: Extra cost of a steal (remote deque access, cache disturbance).
    steal_overhead: float = 2.0e-6
    #: Allocation cost of a renamed FRESH buffer.
    rename_alloc_overhead: float = 2.0e-6
    #: Graph-size blocking condition of the main thread.
    max_pending_tasks: int = 10_000

    @property
    def core_peak_flops(self) -> float:
        return self.ghz * 1e9 * self.flops_per_cycle

    @property
    def peak_flops(self) -> float:
        return self.cores * self.core_peak_flops

    @property
    def peak_gflops(self) -> float:
        return self.peak_flops / 1e9

    def with_cores(self, cores: int) -> "MachineConfig":
        """Same machine restricted to *cores* cores (scaling sweeps)."""

        if cores < 1:
            raise ValueError("need at least one core")
        return replace(self, cores=cores)


#: The section VI evaluation platform.
ALTIX_32 = MachineConfig()
