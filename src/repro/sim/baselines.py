"""Cilk 5 and OpenMP 3.0 baseline DAG builders (Figures 14-16).

Both models are *dependency-unaware*: parallelism comes from strict
spawn/sync trees (Cilk) or task pools with taskwait barriers (OpenMP),
so their DAGs contain explicit join nodes where SMPSs would have only
data edges.  The builders construct those DAGs as reusable
:class:`DagTemplate` objects (a simulation consumes its graph, so
thread-count sweeps re-materialise from the template); they are then
scheduled by :func:`repro.sim.engine.run_static` under the matching
discipline — per-core deques with FIFO stealing for Cilk (its actual
policy, which section VII.D notes SMPSs shares), a central queue for
the OpenMP tied-task pool.

Costs come from :mod:`repro.sim.calibration`, including the per-spawn
partial-solution duplication the paper calls out for N Queens: "at each
nested task entrance the OpenMP tasking version requires allocating a
copy of the partial solution array ... Cilk has exactly the same
problem."
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..apps.tasks import _legal, count_completions_cached
from ..core.graph import TaskGraph
from ..core.scheduler import CentralQueueScheduler, SmpssScheduler
from ..core.task import TaskDefinition, TaskInstance, reset_task_ids
from . import calibration as cal

__all__ = [
    "DagTemplate",
    "build_multisort_dag",
    "build_nqueens_dag",
    "scheduler_for_model",
    "sequential_multisort_time",
    "sequential_nqueens_time",
]


def scheduler_for_model(model: str):
    """Scheduler discipline matching each programming model."""

    if model == "cilk":
        return SmpssScheduler  # per-core deques + FIFO steal (section VII.D)
    if model == "omp":
        return CentralQueueScheduler
    raise ValueError(f"unknown baseline model {model!r}")


def _noop():  # synthetic task body, never called
    return None


_SYNTH_DEFS: dict[str, TaskDefinition] = {}


def _definition(name: str) -> TaskDefinition:
    defn = _SYNTH_DEFS.get(name)
    if defn is None:
        defn = TaskDefinition(func=_noop, params=(), name=name)
        _SYNTH_DEFS[name] = defn
    return defn


@dataclass
class DagTemplate:
    """A reusable DAG description: build() yields a fresh TaskGraph."""

    nodes: list[tuple[str, float]] = field(default_factory=list)
    edges: list[tuple[int, int]] = field(default_factory=list)

    def add_node(self, name: str, duration: float) -> int:
        self.nodes.append((name, duration))
        return len(self.nodes) - 1

    def add_edge(self, pred: int, succ: int) -> None:
        self.edges.append((pred, succ))

    @property
    def total_work(self) -> float:
        return sum(duration for _name, duration in self.nodes)

    def critical_path(self) -> float:
        # Topological by construction: parents are created before
        # children in every builder here, so a forward pass suffices.
        finish = [0.0] * len(self.nodes)
        incoming: dict[int, list[int]] = {}
        for pred, succ in self.edges:
            incoming.setdefault(succ, []).append(pred)
        for idx, (_name, duration) in enumerate(self.nodes):
            start = max((finish[p] for p in incoming.get(idx, ())), default=0.0)
            finish[idx] = start + duration
        return max(finish, default=0.0)

    def build(self) -> TaskGraph:
        reset_task_ids()
        graph = TaskGraph(keep_finished=False)
        instances = []
        for name, duration in self.nodes:
            task = TaskInstance(
                definition=_definition(name),
                accesses=[],
                arguments={"_duration": duration},
            )
            graph.add_task(task)
            instances.append(task)
        for pred, succ in self.edges:
            graph.add_dependency(instances[pred], instances[succ])
        return graph


def _spawn_overhead(model: str) -> float:
    if model == "cilk":
        return cal.CILK_SPAWN_OVERHEAD
    if model == "omp":
        return cal.OMP_TASK_OVERHEAD
    if model == "seq":
        return 0.0  # overhead-free work/span accounting
    raise ValueError(f"unknown model {model!r}")


# ---------------------------------------------------------------------------
# Multisort (Figure 14)
# ---------------------------------------------------------------------------

def _sort_cost(n: int) -> float:
    return cal.SORT_COST_PER_NLOGN * n * max(1.0, math.log2(max(n, 2)))


def _merge_cost(n: int) -> float:
    return cal.MERGE_COST_PER_ELEMENT * n


def sequential_multisort_time(n: int) -> float:
    """The sequential baseline: one quicksort over the whole array."""

    return _sort_cost(n)


def build_multisort_dag(
    n: int, quicksize: int, model: str, merge_leaf: int | None = None
) -> DagTemplate:
    """Spawn/sync DAG of the Cilk-style multisort on *n* elements."""

    if merge_leaf is None:
        merge_leaf = quicksize
    overhead = _spawn_overhead(model)
    dag = DagTemplate()

    def merge(total: int, after: list[int]) -> int:
        if total <= merge_leaf:
            leaf = dag.add_node("seqmerge", _merge_cost(total) + overhead)
            for dep in after:
                dag.add_edge(dep, leaf)
            return leaf
        split = dag.add_node("merge_split", overhead + 1e-7 * math.log2(total))
        for dep in after:
            dag.add_edge(dep, split)
        left = merge(total // 2, [split])
        right = merge(total - total // 2, [split])
        sync = dag.add_node("sync", 0.0)
        dag.add_edge(left, sync)
        dag.add_edge(right, sync)
        return sync

    def sort(size: int, after: list[int]) -> int:
        if size <= quicksize:
            leaf = dag.add_node("seqquick", _sort_cost(size) + overhead)
            for dep in after:
                dag.add_edge(dep, leaf)
            return leaf
        entry = dag.add_node("spawn", 4 * overhead)
        for dep in after:
            dag.add_edge(dep, entry)
        quarter = size // 4
        parts = [quarter, quarter, quarter, size - 3 * quarter]
        exits = [sort(p, [entry]) for p in parts]
        # Cilk/OMP are dependency-unaware: "the programmer must place
        # barriers before exiting a task in order to wait for the
        # results of its sibling tasks" — the merges start only after a
        # sync over ALL four sorts, where SMPSs starts each merge as
        # soon as its own two inputs are ready.
        sync = dag.add_node("sync", 0.0)
        for e in exits:
            dag.add_edge(e, sync)
        m1 = merge(parts[0] + parts[1], [sync])
        m2 = merge(parts[2] + parts[3], [sync])
        sync2 = dag.add_node("sync", 0.0)
        dag.add_edge(m1, sync2)
        dag.add_edge(m2, sync2)
        return merge(size, [sync2])

    sort(n, [])
    return dag


# ---------------------------------------------------------------------------
# N Queens (Figures 15 and 16)
# ---------------------------------------------------------------------------

def sequential_nqueens_time(n: int, node_cost: float | None = None) -> float:
    """The artifact-free sequential program's modelled time.

    Includes the calibrated locality penalty relative to SMPSs tasks
    (see :data:`repro.sim.calibration.QUEENS_SEQUENTIAL_PENALTY`).
    """

    if node_cost is None:
        node_cost = cal.QUEENS_COST_PER_NODE
    _solutions, nodes = count_completions_cached(n, 0, ())
    return nodes * node_cost * cal.QUEENS_SEQUENTIAL_PENALTY


def nqueens_prefix_stats(n: int, task_levels: int) -> dict[str, int]:
    """Counts for the decomposed search: leaves, interior spawns, nodes."""

    cutoff = min(task_levels, n)
    stats = {"leaf_tasks": 0, "interior": 0, "total_nodes": 0, "leaf_nodes": 0}

    def explore(j: int, placed: list[int]) -> None:
        if j == cutoff:
            _s, nodes = count_completions_cached(n, j, tuple(placed))
            stats["leaf_tasks"] += 1
            stats["leaf_nodes"] += nodes
            return
        stats["interior"] += 1
        for col in range(n):
            if _legal(placed, col):
                placed.append(col)
                explore(j + 1, placed)
                placed.pop()

    explore(0, [])
    stats["total_nodes"] = stats["interior"] + stats["leaf_nodes"]
    return stats


def queens_node_cost_for_granularity(
    n: int, task_levels: int, granularity: float | None = None
) -> float:
    """Per-node cost such that a mean leaf task hits *granularity*.

    The paper's runtime "requires tasks of a certain granularity
    (e.i. 250 us)" (section I); its N Queens decomposition picks the
    cutoff so leaves land there.  Deriving the virtual node cost from
    that target keeps the overhead-to-work ratio faithful at any board
    size we can afford to search in Python.
    """

    if granularity is None:
        granularity = cal.TARGET_TASK_GRANULARITY
    stats = nqueens_prefix_stats(n, task_levels)
    mean_leaf_nodes = max(1.0, stats["leaf_nodes"] / max(stats["leaf_tasks"], 1))
    return granularity / mean_leaf_nodes


def build_nqueens_dag(
    n: int, task_levels: int, model: str, node_cost: float | None = None
) -> DagTemplate:
    """Spawn tree of the duplicating (Cilk/OMP) N Queens.

    Interior nodes carry the per-spawn array-duplication artifact;
    leaves carry the sequential sub-search, inflated by the per-node
    duplication fraction (the fully recursive Cilk version pays a spawn
    and an array copy at every explored node — section VI.E), which
    preserves total work while keeping the simulated DAG tractable.
    """

    if node_cost is None:
        node_cost = cal.QUEENS_COST_PER_NODE
    cutoff = min(task_levels, n)
    overhead = _spawn_overhead(model)
    dup_fraction = cal.QUEENS_DUP_FRACTION[model]
    dag = DagTemplate()
    root = dag.add_node("spawn_root", overhead)

    def explore(j: int, placed: list[int], parent: int) -> None:
        if j == cutoff:
            _solutions, nodes = count_completions_cached(n, j, tuple(placed))
            duration = nodes * node_cost * (1.0 + dup_fraction)
            leaf = dag.add_node("nqueens_leaf", duration)
            dag.add_edge(parent, leaf)
            return
        for col in range(n):
            if _legal(placed, col):
                spawn = dag.add_node(
                    "spawn_dup",
                    overhead + node_cost * (1.0 + dup_fraction),
                )
                dag.add_edge(parent, spawn)
                placed.append(col)
                explore(j + 1, placed, spawn)
                placed.pop()

    explore(0, [], root)
    return dag
