"""Simulated SMPSs runtime: the paper's execution model in virtual time.

Implements the same active-runtime protocol as the threaded backend, so
the *unmodified* annotated programs of :mod:`repro.apps` run under it:
the main program executes natively (its control flow is real), but each
task submission costs virtual main-thread time (dependency analysis +
graph insertion), workers consume the graph concurrently in virtual
time, and the main thread helps when it hits the graph-size window or a
barrier — the full section III execution model.

Because the tracker sees tasks *finish* as virtual time advances,
renaming decisions (rename vs no hazard) happen with the same
timing-dependence the real runtime exhibits.

Memory stays bounded: the graph retires finished nodes, so simulating a
374,272-task Cholesky holds only the in-flight window.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core import api as _api
from ..core.config import RuntimeConfig, resolve_config
from ..core.dependencies import DependencyTracker, TrackerConfig
from ..core.graph import TaskGraph
from ..core.invocation import instantiate
from ..core.task import TaskInstance, TaskState, reset_task_ids
from .cost import CostModel
from .engine import SimResult, VirtualMachine
from .machine import ALTIX_32, MachineConfig

__all__ = ["SimulatedRuntime", "simulate_program"]


class SimulatedRuntime:
    """Active-runtime protocol over the discrete-event engine."""

    def __init__(
        self,
        machine: MachineConfig = ALTIX_32,
        cost_model: Optional[CostModel] = None,
        execute_bodies: bool = False,
        tracer=None,
        config: Optional[RuntimeConfig] = None,
        **knobs,
    ):
        # *machine*, *cost_model*, *execute_bodies* and *tracer* are the
        # simulator-specific arguments; every shared knob (scheduler
        # factory, renaming switches, trace, constants, ...) goes
        # through the same validated path as SmpssRuntime.
        self.config = resolve_config(config, knobs, runtime="SimulatedRuntime")
        self.machine = machine
        self.cost = cost_model or CostModel(machine)
        reset_task_ids()
        self.graph = TaskGraph(keep_finished=self.config.keep_graph)
        self.tracker = DependencyTracker(
            self.graph,
            config=TrackerConfig(
                enable_renaming=self.config.enable_renaming,
                rename_inout=self.config.rename_inout,
            ),
        )
        if self.config.trace and tracer is None:
            from ..core.tracing import ThreadLocalTracer

            # Same per-thread-buffer tracer as the threaded backend;
            # the virtual clock is injected unchanged below (emission
            # is single-threaded here, so one buffer, stable order).
            tracer = ThreadLocalTracer(capacity=self.config.trace_buffer_size)
        self.tracer = tracer
        from ..obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self.scheduler = self.config.scheduler_factory(
            machine.cores, tracer=tracer
        )
        self.vm = VirtualMachine(machine, self.graph, self.scheduler, self.cost, tracer)
        if tracer is not None:
            self.vm.wire_tracer(tracer)
        self.execute_bodies = execute_bodies
        self.constants = self.config.constants
        self.main_clock = 0.0
        self.tasks_submitted = 0
        self._entered = False
        self._in_task = False

    def in_task_body(self) -> bool:
        return self._in_task

    # ------------------------------------------------------------------
    # active-runtime protocol
    # ------------------------------------------------------------------
    def submit(self, definition, args: tuple, kwargs: dict) -> TaskInstance:
        task = instantiate(definition, args, kwargs, self.constants)
        # Let workers catch up to the main thread's clock first, so
        # hazard checks see what has genuinely finished by now.
        self.vm.process_until(self.main_clock)
        self.tracker.analyze(task)
        if self.execute_bodies:
            # Data-dependent control flow (e.g. LU pivoting) needs real
            # values; program order makes immediate execution valid.
            from ..core.invocation import resolve_call_values

            values = resolve_call_values(task)
            self._in_task = True
            try:
                task.definition.func(*values)
            finally:
                self._in_task = False
        self.main_clock += self.machine.task_add_overhead
        self.tasks_submitted += 1
        if self.tracer:
            self.vm.now = self.main_clock
            self.tracer.task_added(task)
        if task.num_pending_deps == 0:
            self.scheduler.push_new(task)
            self.vm.dispatch_idle(self.main_clock)
        if self.graph.pending_count > self.machine.max_pending_tasks:
            self._help_while(
                lambda: self.graph.pending_count > self.machine.max_pending_tasks
            )
        return task

    def barrier(self) -> None:
        self._help_while(lambda: self.graph.pending_count > 0)
        self.main_clock = max(self.main_clock, self.vm.last_finish)
        self.tracker.reset()

    wait_all = barrier

    def wait_for(self, task: TaskInstance) -> None:
        self._help_while(lambda: task.state is not TaskState.FINISHED)

    def acquire(self, obj):
        if self.tracker.is_tracked(obj):
            datum = self.tracker.datum_for(obj)
            chain = datum.chains.get(None)
            if chain is not None and chain.current.producer is not None:
                producer = chain.current.producer
                if producer.state is not TaskState.FINISHED:
                    self.wait_for(producer)
                if self.execute_bodies:
                    return chain.current.resolve_storage()
        return obj

    # ------------------------------------------------------------------
    # main-thread helping (the section III blocking conditions)
    # ------------------------------------------------------------------
    def _help_while(self, predicate: Callable[[], bool]) -> None:
        while predicate():
            self.vm.process_until(self.main_clock)
            if not predicate():
                return
            task, stolen = self.vm.pop_for(0)
            if task is not None:
                finish = self.vm.start_task(0, task, self.main_clock, stolen)
                self.vm.process_until(finish)
                self.main_clock = finish
                continue
            next_event = self.vm.next_event_time()
            if next_event is None:
                if self.graph.pending_count > 0:
                    raise RuntimeError(
                        "simulation stalled: pending tasks but no events"
                    )
                return
            self.main_clock = max(self.main_clock, next_event)
            self.vm.process_until(self.main_clock)

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def __enter__(self) -> "SimulatedRuntime":
        _api.push_runtime(self)
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._entered:
            self._entered = False
            # Defensive pop: never leaves a stale stack entry (or a
            # stale owner) behind, even after a mid-``with`` exception.
            _api.discard_runtime(self)
            from ..obs.metrics import default_metrics

            self._sync_metrics()
            default_metrics().absorb(self.metrics)

    def _sync_metrics(self) -> None:
        """Mirror simulator aggregates into the metrics registry."""

        m = self.metrics
        m.gauge("sim.makespan_virtual_seconds").set(
            max(self.main_clock, self.vm.last_finish)
        )
        m.gauge("sim.tasks_submitted").set(self.tasks_submitted)
        m.gauge("tasks_executed").set(self.vm.tasks_executed)
        m.gauge("graph.renames").set(self.graph.stats.renames)
        for core, busy in enumerate(self.vm.busy_time):
            m.gauge("sim.busy_virtual_seconds", thread=core).set(busy)
        for core, steal in enumerate(self.vm.steal_time):
            if steal:
                m.gauge("sim.steal_virtual_seconds", thread=core).set(steal)
        m.ingest_scheduler_stats(self.scheduler.stats)

    @property
    def num_threads(self) -> int:
        return self.machine.cores

    def report(self, title: str = "simulated runtime report") -> str:
        """Text summary over the virtual-time trace (needs
        ``trace=True``); mirrors ``SmpssRuntime.report()``."""

        from ..obs.analyze import runtime_report

        self._sync_metrics()
        return runtime_report(self, title=title)

    def result(self) -> SimResult:
        res = self.vm.result(self.main_clock)
        res.extras["tasks_submitted"] = self.tasks_submitted
        res.extras["renames"] = self.graph.stats.renames
        self._sync_metrics()
        return res


def simulate_program(
    main: Callable,
    *args,
    machine: MachineConfig = ALTIX_32,
    cost_model: Optional[CostModel] = None,
    scheduler_factory: Optional[Callable] = None,
    enable_renaming: bool = True,
    execute_bodies: bool = False,
    **kwargs,
) -> SimResult:
    """Simulate ``main(*args, **kwargs)`` and return the result.

    A trailing barrier is implied (every program of the paper ends in
    one before its timing is read).
    """

    knobs = {"enable_renaming": enable_renaming}
    if scheduler_factory is not None:
        knobs["scheduler_factory"] = scheduler_factory
    runtime = SimulatedRuntime(
        machine=machine,
        cost_model=cost_model,
        execute_bodies=execute_bodies,
        **knobs,
    )
    with runtime:
        main(*args, **kwargs)
        runtime.barrier()
    return runtime.result()
