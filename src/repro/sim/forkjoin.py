"""Analytic fork-join models of the *threaded* BLAS libraries.

Figures 11 and 12 compare SMPSs against "Threaded Goto" and "Threaded
MKL".  Both closed-source libraries parallelise each factorisation /
multiplication step internally with a fork-join pattern: a serial panel
(or partition step), a parallel trailing update, and a barrier.  On
Cholesky's long dependency chains this loses badly — "the MKL
parallelization does not scale beyond 4 processors and the Goto
parallelization does not scale beyond 10.  Given the complexity of the
dependencies, we suspect their implementations are limited by them."

The models below reproduce that failure mode from three per-library
constants (:mod:`repro.sim.calibration`): barrier cost ``a + b*t``, an
unparallelised serial fraction of each update, and the library's
internal blocking.  Matrix multiplication has no inter-step dependency
chain, so the same model scales smoothly there (Figure 12's "very good
... smooth response").
"""

from __future__ import annotations

from .calibration import LIBRARIES, LibraryProfile
from .machine import MachineConfig

__all__ = ["forkjoin_cholesky_time", "forkjoin_matmul_time"]


def _resolve(profile) -> LibraryProfile:
    if isinstance(profile, str):
        return LIBRARIES[profile]
    return profile


def forkjoin_cholesky_time(
    n: int, threads: int, profile, machine: MachineConfig
) -> float:
    """Makespan of a threaded-library Cholesky on an n x n matrix."""

    lib = _resolve(profile)
    nb = lib.internal_block
    steps = max(1, n // nb)
    rate = machine.core_peak_flops * lib.efficiency("gemm", nb)
    barrier = lib.barrier_base + lib.barrier_per_thread * threads if threads > 1 else 0.0
    # Dependency-limited concurrency: extra threads beyond the cap find
    # no work between the library's internal synchronisation points.
    t_eff = min(float(threads), lib.factor_concurrency)
    total = 0.0
    for k in range(steps):
        remaining = n - k * nb
        below = max(0, remaining - nb)
        # Panel: serial potrf of the nb x nb diagonal; the column solve
        # below it is data-parallel over rows (both libraries thread it).
        panel_flops = nb ** 3 / 3.0 + below * nb * nb / t_eff
        # Trailing symmetric update (syrk + gemm tiles).
        trailing_flops = float(below) * below * nb
        serial = trailing_flops * lib.serial_fraction
        parallel = trailing_flops - serial
        step = panel_flops / rate + serial / rate
        if threads > 1:
            # 2-D tile partition of the (lower-triangular) trailing update.
            # The libraries partition the update finer than nb where it
            # pays, so imbalance is sub-tile: fractional waves with a
            # floor of one (a step can never beat its longest row).
            tiles = max(1, (below // nb) * (below // nb + 1) // 2)
            waves = max(1.0, tiles / t_eff)
            per_tile = parallel / rate / tiles
            step += waves * per_tile + 2 * barrier
        else:
            step += parallel / rate
        total += step
    return total


def forkjoin_matmul_time(
    n: int, threads: int, profile, machine: MachineConfig
) -> float:
    """Makespan of a threaded-library GEMM on n x n matrices.

    One parallel region over output tiles; near-perfect scaling apart
    from partition imbalance and one barrier.
    """

    lib = _resolve(profile)
    # GEMM partitions with large internal tiles and has no inter-step
    # dependency chain, so the factorisation concurrency cap does not
    # apply ("the Goto and the MKL parallelizations are very good and
    # present a smooth response", section VI.B).
    nb = max(lib.internal_block, 512)
    rate = machine.core_peak_flops * lib.efficiency("gemm", nb)
    flops = 2.0 * n * n * n
    tiles = max(1, (n // nb) ** 2)
    per_tile = flops / rate / tiles
    waves = -(-tiles // threads)
    barrier = lib.barrier_base + lib.barrier_per_thread * threads if threads > 1 else 0.0
    return waves * per_tile + barrier
