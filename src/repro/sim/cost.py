"""Task cost model: virtual duration of one task on one core.

Duration =

    max( flops / (core_peak * efficiency(kernel, tile, library)),
         missed_bytes / core_bandwidth )
    + runtime dispatch overhead
    + renaming materialisation cost (FRESH alloc / CLONE alloc+copy)

The roofline-style max() captures both regimes the paper discusses:
compute-bound level-3 tiles, and bandwidth-bound Strassen additions
("less arithmetic operations per memory access, thus demanding more
memory bandwidth", section VI.C).  Cache hits (tracked per core by
:class:`~repro.sim.cache.CoreCache`) remove an operand's traffic, which
is how the section III locality scheduling pays off in simulated time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.renaming import StorageKind
from ..core.task import Direction, TaskInstance
from . import calibration
from .cache import CoreCache
from .machine import MachineConfig

__all__ = ["CostModel", "TaskCost"]


_GEMM_CLASS = {"sgemm_t", "sgemm_nt_t", "smul_t"}
_ADD_CLASS = {"sadd_t", "ssub_t", "_sadd_t", "_ssub_t", "scopy_t"}
_ACC_CLASS = {"sacc_t", "ssubacc_t"}
_COPY_CLASS = {"get_block_t", "put_block_t"}
#: Bandwidth-bound workloads subject to NUMA contention (Figure 14):
#: the real task names and their synthetic baseline-DAG counterparts.
_BANDWIDTH_BOUND = {
    "seqquick_t", "seqmerge_t", "seqmerge_piece_t", "seqquick", "seqmerge",
}
#: Synthetic baseline-DAG nodes (Cilk/OMP): dependency-unaware
#: scheduling shuffles streams across cores, so their contention is a
#: shade worse than the locality-aware SMPSs scheduler's (section III).
_BASELINE_STREAM = {"seqquick", "seqmerge"}


@dataclass
class TaskCost:
    """Breakdown of one task's simulated cost (for tracing/tests)."""

    compute: float = 0.0
    memory: float = 0.0
    overhead: float = 0.0
    rename: float = 0.0
    flops: int = 0

    @property
    def total(self) -> float:
        return max(self.compute, self.memory) + self.overhead + self.rename


@dataclass
class CostModel:
    """Maps task instances to virtual durations.

    *block_size* is the logical tile edge used when workloads run with
    symbolic (1x1) placeholder blocks; real arrays override it with
    their actual shape.  *library* selects the Goto/MKL tile-efficiency
    personality.
    """

    machine: MachineConfig
    library: str = "goto"
    block_size: Optional[int] = None
    dtype_bytes: int = 4  # single precision, as in the evaluation
    model_cache: bool = True
    #: per-search-node cost for nqueens_task (None: calibration default).
    queens_node_cost: Optional[float] = None

    total_flops: int = field(default=0, init=False)
    total_bytes_missed: int = field(default=0, init=False)
    tasks_costed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        try:
            self.profile = calibration.LIBRARIES[self.library]
        except KeyError:
            raise ValueError(
                f"unknown library {self.library!r}; have {sorted(calibration.LIBRARIES)}"
            ) from None

    # ------------------------------------------------------------------
    def duration(self, task: TaskInstance, cache: Optional[CoreCache]) -> float:
        return self.cost(task, cache).total

    def cost(self, task: TaskInstance, cache: Optional[CoreCache]) -> TaskCost:
        """Compute (and account) the cost of *task* on a core.

        Mutates *cache* with the task's working set.
        """

        out = TaskCost(overhead=self.machine.task_dispatch_overhead)
        name = task.name
        args = task.arguments

        explicit = args.get("_duration")
        if explicit is not None:
            out.compute = float(explicit)
            if name in _BANDWIDTH_BOUND:
                locality = 1.12 if name in _BASELINE_STREAM else 1.0
                out.compute *= self._contention(locality)
        elif name in _GEMM_CLASS:
            m = self._tile_edge(task)
            out.flops = 2 * m * m * m
            out.compute = self._compute_time(out.flops, "gemm", m)
            out.memory = self._traffic(task, cache, self._tile_bytes(m))
        elif name == "ssyrk_t":
            m = self._tile_edge(task)
            out.flops = m * m * m + m * m
            out.compute = self._compute_time(out.flops, "syrk", m)
            out.memory = self._traffic(task, cache, self._tile_bytes(m))
        elif name == "strsm_t":
            m = self._tile_edge(task)
            out.flops = m * m * m
            out.compute = self._compute_time(out.flops, "trsm", m)
            out.memory = self._traffic(task, cache, self._tile_bytes(m))
        elif name == "spotrf_t":
            m = self._tile_edge(task)
            out.flops = m * m * m // 3
            out.compute = self._compute_time(out.flops, "potrf", m)
            out.memory = self._traffic(task, cache, self._tile_bytes(m))
        elif name in _ADD_CLASS or name in _ACC_CLASS:
            m = self._tile_edge(task)
            out.flops = m * m
            # Element-wise tiles run at memory speed, not gemm speed.
            out.compute = out.flops / (self.machine.core_peak_flops * 0.05)
            out.memory = self._traffic(task, cache, self._tile_bytes(m))
        elif name in _COPY_CLASS:
            m = self._tile_edge(task)
            # One side of the copy is the opaque flat matrix: always a
            # miss (it is far larger than any cache).
            flat_bytes = self._tile_bytes(m)
            out.memory = self._traffic(task, cache, self._tile_bytes(m)) + (
                flat_bytes / self.machine.core_bandwidth
            )
        elif name == "seqquick_t":
            n = int(args["j"]) - int(args["i"]) + 1
            out.compute = calibration.SORT_COST_PER_NLOGN * n * max(
                1.0, math.log2(max(n, 2))
            ) * self._contention()
        elif name == "seqmerge_t":
            n = (int(args["j1"]) - int(args["i1"]) + 1) + (
                int(args["j2"]) - int(args["i2"]) + 1
            )
            out.compute = calibration.MERGE_COST_PER_ELEMENT * n * self._contention()
        elif name == "seqmerge_piece_t":
            n = (int(args["h1"]) - int(args["l1"]) + 1) + (
                int(args["h2"]) - int(args["l2"]) + 1
            )
            out.compute = calibration.MERGE_COST_PER_ELEMENT * n * self._contention()
        elif name == "place_t":
            out.compute = 0.3e-6
        elif name == "nqueens_task":
            nodes = self._queens_nodes(task)
            node_cost = (
                self.queens_node_cost
                if self.queens_node_cost is not None
                else calibration.QUEENS_COST_PER_NODE
            )
            out.compute = node_cost * nodes
        else:
            # Unknown task: charge dispatch overhead only (synthetic
            # zero-work node) — baseline builders use _duration instead.
            out.compute = 0.0

        out.rename = self._rename_cost(task)
        self.total_flops += out.flops
        self.tasks_costed += 1
        return out

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _tile_edge(self, task: TaskInstance) -> int:
        # Only *tracked* parameters are tiles; opaque ones (the flat
        # matrix of Figures 9/10) must not set the tile size.
        for access in task.accesses:
            if access.direction is Direction.OPAQUE:
                continue
            value = access.value
            if isinstance(value, np.ndarray) and value.ndim == 2 and value.shape[0] > 1:
                return int(value.shape[0])
        if self.block_size is None:
            raise ValueError(
                f"cost model needs block_size for symbolic task {task.name!r}"
            )
        return self.block_size

    def _contention(self, locality: float = 1.0) -> float:
        """NUMA bandwidth contention multiplier for streaming work."""

        alpha = calibration.MEMORY_CONTENTION_ALPHA * locality
        return 1.0 + alpha * (self.machine.cores - 1)

    def _tile_bytes(self, m: int) -> int:
        return m * m * self.dtype_bytes

    def _compute_time(self, flops: int, kernel_class: str, m: int) -> float:
        eff = self.profile.efficiency(kernel_class, m)
        return flops / (self.machine.core_peak_flops * eff)

    def _traffic(
        self, task: TaskInstance, cache: Optional[CoreCache], tile_bytes: int
    ) -> float:
        """Memory time for the task's tracked operands on this core."""

        missed = 0
        seen: set[int] = set()
        for access in task.accesses:
            if access.direction is Direction.OPAQUE:
                continue  # opaque traffic is modelled by the caller
            value = access.value
            if not isinstance(value, np.ndarray):
                continue
            key = id(value)
            if key in seen:
                continue
            seen.add(key)
            # Real operands know their own size; 1x1 placeholders stand
            # for a logical tile of the configured block size.
            size = value.nbytes if value.size > 1 else tile_bytes
            if cache is None or not self.model_cache:
                missed += size
            elif not cache.touch(key, size):
                missed += size
        self.total_bytes_missed += missed
        return missed / self.machine.core_bandwidth

    def _rename_cost(self, task: TaskInstance) -> float:
        cost = 0.0
        for _name, version in task.writes:
            if version.kind is StorageKind.FRESH:
                cost += self.machine.rename_alloc_overhead
            elif version.kind is StorageKind.CLONE:
                m = self._tile_edge_or_len(version)
                cost += self.machine.rename_alloc_overhead + (
                    m / self.machine.core_bandwidth
                )
        return cost

    def _tile_edge_or_len(self, version) -> int:
        base = version.datum.base
        if isinstance(base, np.ndarray):
            return int(base.nbytes)
        return 64  # small object clone

    def _queens_nodes(self, task: TaskInstance) -> int:
        result = task.arguments.get("result")
        if isinstance(result, np.ndarray) and len(result) > 1 and result[1] > 0:
            return int(result[1])
        # Not eagerly executed: estimate from the remaining depth with
        # a branching factor calibrated on n=12 subtrees.
        n = int(task.arguments.get("n", 8))
        j = int(task.arguments.get("j", max(n - 4, 0)))
        return max(1, int(2.2 ** (n - j)))
