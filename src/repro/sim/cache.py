"""Per-core LRU cache model.

Section III's scheduler is built around locality: "schedule dependant
tasks sequentially to the same core so that output data is reused
immediately" and "keep each thread on a different region of the graph
... and thus minimize cache coherency overhead".  This model is the
simulator's mechanism for rewarding exactly that behaviour: a task's
memory-traffic term only counts the bytes of operands *missing* from
its core's cache, so depth-first chains on one core run faster than the
same tasks scattered across cores.

A shared *residency index* (datum -> set of cores caching it) lets the
engine invalidate a written datum on other cores in O(holders) instead
of O(cores).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = ["CoreCache", "ResidencyIndex"]


class ResidencyIndex(dict):
    """datum key -> set of core ids currently caching it."""

    def holders(self, key: int) -> frozenset:
        return frozenset(self.get(key, ()))


class CoreCache:
    """LRU over datum identities, capacity in bytes."""

    __slots__ = ("core_id", "capacity", "_entries", "_used", "hits", "misses", "_residency")

    def __init__(self, capacity: int, core_id: int = -1, residency: Optional[ResidencyIndex] = None):
        self.core_id = core_id
        self.capacity = int(capacity)
        self._entries: OrderedDict[int, int] = OrderedDict()  # key -> bytes
        self._used = 0
        self.hits = 0
        self.misses = 0
        self._residency = residency

    def _register(self, key: int) -> None:
        if self._residency is not None:
            self._residency.setdefault(key, set()).add(self.core_id)

    def _unregister(self, key: int) -> None:
        if self._residency is not None:
            holders = self._residency.get(key)
            if holders is not None:
                holders.discard(self.core_id)
                if not holders:
                    del self._residency[key]

    def touch(self, key: int, size: int) -> bool:
        """Access one datum; returns True on a hit.

        Misses insert the datum (evicting LRU entries as needed); an
        object larger than the whole cache never caches.
        """

        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if size > self.capacity:
            return False
        while self._used + size > self.capacity and self._entries:
            evicted, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
            self._unregister(evicted)
        self._entries[key] = size
        self._used += size
        self._register(key)
        return False

    def invalidate(self, key: int) -> None:
        """Drop one datum (coherency: another core wrote it)."""

        size = self._entries.pop(key, None)
        if size is not None:
            self._used -= size
            self._unregister(key)

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries
