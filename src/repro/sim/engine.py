"""Discrete-event execution of task graphs on virtual cores.

The engine drives the *real* scheduler objects from
:mod:`repro.core.scheduler` — the section III policy runs unmodified;
only time is virtual.  Core 0 is the main thread (it executes tasks
only while the owner says it is helping); cores 1..P-1 are workers.

Two entry points:

* :class:`VirtualMachine` — incremental interface used by
  :class:`~repro.sim.simruntime.SimulatedRuntime`, which interleaves
  main-thread task generation with worker progress;
* :func:`run_static` — everything released at t=0 on P worker cores
  (used for the Cilk/OpenMP baseline DAGs of Figures 14-16).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from ..core.graph import TaskGraph
from ..core.task import TaskInstance
from .cache import CoreCache
from .cost import CostModel
from .machine import MachineConfig

__all__ = ["VirtualMachine", "SimResult", "run_static"]


@dataclass
class SimResult:
    """Outcome of one simulated execution (or phase)."""

    makespan: float
    tasks_executed: int
    busy_time: list[float]
    steals: int = 0
    total_flops: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Virtual time each core spent paying steal overhead (included in
    #: its busy_time); the per-core steal cost the report breaks out.
    steal_time: list[float] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    @property
    def utilisation(self) -> float:
        cores = len(self.busy_time)
        if self.makespan <= 0 or cores == 0:
            return 0.0
        return sum(self.busy_time) / (cores * self.makespan)

    def gflops(self, algorithmic_flops: float) -> float:
        return algorithmic_flops / self.makespan / 1e9 if self.makespan > 0 else 0.0

    def speedup(self, reference_time: float) -> float:
        return reference_time / self.makespan if self.makespan > 0 else 0.0


class VirtualMachine:
    """Virtual cores executing tasks from a scheduler, in virtual time."""

    def __init__(
        self,
        machine: MachineConfig,
        graph: TaskGraph,
        scheduler,
        cost_model: CostModel,
        tracer=None,
    ):
        self.machine = machine
        self.graph = graph
        self.scheduler = scheduler
        self.cost = cost_model
        self.tracer = tracer
        cores = machine.cores
        from .cache import ResidencyIndex

        self._residency = ResidencyIndex()
        self.caches = [
            CoreCache(machine.cache_bytes, core_id=i, residency=self._residency)
            for i in range(cores)
        ]
        #: (finish_time, seq, core, task) of running tasks.
        self.running: list[tuple[float, int, int, TaskInstance]] = []
        self._seq = 0
        #: worker cores with nothing to do (core 0 managed by the owner).
        self.idle: set[int] = set(range(1, cores))
        #: run_static mode: core 0 is a plain worker, not the main thread.
        self.main_is_worker = False
        self.busy_time = [0.0] * cores
        self.steal_time = [0.0] * cores
        self.tasks_executed = 0
        self.last_finish = 0.0
        #: Virtual timestamp of the event being processed; a Tracer
        #: whose clock reads this records virtual-time events (see
        #: :meth:`wire_tracer`).
        self.now = 0.0

    def wire_tracer(self, tracer) -> None:
        """Point *tracer*'s clock at this machine's virtual time."""

        tracer.clock = lambda: self.now
        self.tracer = tracer

    # ------------------------------------------------------------------
    # dispatch machinery
    # ------------------------------------------------------------------
    def pop_for(self, core: int) -> tuple[Optional[TaskInstance], bool]:
        """Pop per policy for *core*; reports whether the pop stole."""

        before = self.scheduler.stats.steals
        task = self.scheduler.pop(core)
        return task, self.scheduler.stats.steals > before

    def start_task(
        self, core: int, task: TaskInstance, start: float, stolen: bool = False
    ) -> float:
        """Begin *task* on *core* at *start*; returns its finish time."""

        self.now = start
        duration = self.cost.duration(task, self.caches[core])
        if stolen:
            duration += self.machine.steal_overhead
            self.steal_time[core] += self.machine.steal_overhead
        finish = start + duration
        self._seq += 1
        heapq.heappush(self.running, (finish, self._seq, core, task))
        self.idle.discard(core)
        self.busy_time[core] += duration
        self._invalidate_writers(core, task)
        if self.tracer:
            self.tracer.task_start(task, core)
        return finish

    def _invalidate_writers(self, core: int, task: TaskInstance) -> None:
        """Coherency: a write on *core* evicts the datum elsewhere."""

        for access in task.accesses:
            if access.direction.writes:
                key = id(access.value)
                holders = self._residency.get(key)
                if holders:
                    for other in list(holders):
                        if other != core:
                            self.caches[other].invalidate(key)

    def dispatch_idle(self, now: float) -> None:
        """Hand ready tasks to idle worker cores (in core order)."""

        # If a pop fails for one core, it fails for every core: the
        # policy's steal scan covers all other deques, so one failure
        # means every list is empty — no need to try the rest.
        while self.idle and self.scheduler.has_ready():
            core = min(self.idle)
            task, stolen = self.pop_for(core)
            if task is None:
                return
            self.start_task(core, task, now, stolen)

    def process_until(self, t_limit: Optional[float]) -> None:
        """Retire completions with finish <= t_limit (all, if None)."""

        while self.running and (
            t_limit is None or self.running[0][0] <= t_limit
        ):
            finish, _seq, core, task = heapq.heappop(self.running)
            self._complete(core, task, finish)

    def _complete(self, core: int, task: TaskInstance, finish: float) -> None:
        self.now = finish
        task.executed_by = core
        self.last_finish = max(self.last_finish, finish)
        newly_ready = self.graph.complete(task)
        for succ in newly_ready:
            self.scheduler.push_unlocked(succ, core)
        self.tasks_executed += 1
        if self.tracer:
            self.tracer.task_end(task, core)
        # The finishing core gets first pick (it just produced the
        # successor's input — the locality property of section III),
        # then any other idle cores.
        if core != 0 or self.main_is_worker:
            self.idle.add(core)
            task_next, stolen = self.pop_for(core)
            if task_next is not None:
                self.start_task(core, task_next, finish, stolen)
        self.dispatch_idle(finish)

    def next_event_time(self) -> Optional[float]:
        return self.running[0][0] if self.running else None

    def drain(self) -> float:
        """Retire every running/ready task; return the final finish time."""

        while True:
            self.process_until(None)
            if not self.scheduler.has_ready():
                break
            self.dispatch_idle(self.last_finish)
            if not self.running and self.scheduler.has_ready():
                # Only core 0 could ever run these (single-core machine).
                task = self.scheduler.pop(0)
                if task is None:
                    break
                self.start_task(0, task, self.last_finish)
        return self.last_finish

    def result(self, makespan: float) -> SimResult:
        return SimResult(
            makespan=makespan,
            tasks_executed=self.tasks_executed,
            busy_time=list(self.busy_time),
            steals=self.scheduler.stats.steals,
            total_flops=self.cost.total_flops,
            cache_hits=sum(c.hits for c in self.caches),
            cache_misses=sum(c.misses for c in self.caches),
            steal_time=list(self.steal_time),
        )


def run_static(
    graph: TaskGraph,
    machine: MachineConfig,
    cost_model: CostModel,
    scheduler_factory,
    tracer=None,
) -> SimResult:
    """Simulate a fully-built DAG, all roots released at t=0.

    All P cores act as workers (no separate generating thread): the
    execution model of the Cilk and OpenMP baselines, where the main
    thread blocks in a sync/taskwait and participates.
    """

    scheduler = scheduler_factory(machine.cores, tracer=tracer)
    vm = VirtualMachine(machine, graph, scheduler, cost_model, tracer)
    vm.main_is_worker = True
    vm.idle = set(range(machine.cores))  # core 0 is a plain worker here
    for task in list(graph.roots()):
        scheduler.push_new(task)
    vm.dispatch_idle(0.0)
    makespan = vm.drain()
    if graph.pending_count:
        raise RuntimeError(
            f"static simulation stalled with {graph.pending_count} tasks pending"
        )
    return vm.result(makespan)
