"""The master-side datum residency map.

The cluster backend's central data structure: for every tracked
storage buffer that has crossed to a node at least once, one
:class:`ResidencyEntry` records

* ``version`` — a monotonically increasing *content* version, bumped
  each time a task writes the buffer through the cluster backend;
* ``master_version`` — the version the master's own copy reflects
  (outputs stay on the producing node in lazy mode, so the master is
  routinely stale between barriers);
* ``copies`` — ``{node_name: version}``, which nodes hold which
  content version.  A node whose recorded version equals ``version``
  holds the current bytes; dispatching there ships a reference instead
  of content (the ``dist.cache_hits`` path).

Entries hold **strong references** to their storage objects: the entry
key stays valid for exactly as long as the object is alive, so Python
recycling an ``id()`` can never alias two objects onto one wire key.
The flip side is an obligation to *evict* — the barrier policy in
:meth:`ClusterBackend.barrier_sync` drops every entry whose buffer
dies with the barrier (renamed buffers) and keeps only user-owned
arrays, whose cached copies give repeat submissions their bytes-moved
win.

Surviving entries are re-verified once per barrier generation with an
adler32 content checksum (:func:`~repro.dist.encoding.content_checksum`):
code mutating an array between barriers — legal, it is the user's
object — invalidates the remote copies instead of silently reading
stale bytes.

Locking: one reentrant lock for the whole map.  Callers on the
dispatch path take it briefly per lookup/commit; the scheduler's
placement hook takes it under the scheduler lock (lock order is
always scheduler → residency, and network I/O never happens under
either).
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Optional

import numpy as np

from .encoding import content_checksum

__all__ = ["ResidencyEntry", "ResidencyMap"]


class ResidencyEntry:
    """Residency state of one storage buffer (see module docstring)."""

    __slots__ = (
        "key", "obj", "is_base", "version", "master_version", "copies",
        "last_writer", "nbytes", "checksum", "checked_gen", "lost",
    )

    def __init__(self, key: str, obj: Any, is_base: bool, nbytes: int):
        self.key = key
        self.obj = obj
        self.is_base = is_base
        self.version = 0
        self.master_version = 0
        self.copies: dict[str, int] = {}
        self.last_writer: Optional[str] = None
        self.nbytes = nbytes
        self.checksum: Optional[int] = None
        self.checked_gen = -1
        #: Every copy of the current version died with its node and the
        #: master is stale: the content is unrecoverable (lazy mode).
        self.lost = False

    def master_current(self) -> bool:
        return self.master_version == self.version

    def holders(self) -> list[str]:
        """Nodes recorded as holding the *current* content version."""

        return [n for n, v in self.copies.items() if v == self.version]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResidencyEntry {self.key} v{self.version} "
            f"master=v{self.master_version} copies={self.copies}>"
        )


def _size_of(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytearray, bytes)):
        return len(obj)
    if isinstance(obj, list):
        return len(obj) * 8  # rough; lists ship by pickle anyway
    return 0


class ResidencyMap:
    """All residency entries of one cluster run."""

    def __init__(self, sid: str):
        self.sid = sid
        self._lock = threading.RLock()
        self._by_id: dict[int, ResidencyEntry] = {}
        self._by_key: dict[str, ResidencyEntry] = {}
        self._serial = 0
        #: Barrier generation; bumped by the barrier policy so entry
        #: checksums are re-verified at most once per generation.
        self.generation = 0

    # ------------------------------------------------------------------
    # lookup / registration
    # ------------------------------------------------------------------
    def ensure(self, obj: Any, is_base: bool) -> ResidencyEntry:
        with self._lock:
            entry = self._by_id.get(id(obj))
            if entry is not None and entry.obj is obj:
                return entry
            self._serial += 1
            entry = ResidencyEntry(
                f"{self.sid}:{self._serial}", obj, is_base, _size_of(obj)
            )
            self._by_id[id(obj)] = entry
            self._by_key[entry.key] = entry
            return entry

    def get(self, obj: Any) -> Optional[ResidencyEntry]:
        with self._lock:
            entry = self._by_id.get(id(obj))
            if entry is not None and entry.obj is obj:
                return entry
            return None

    def by_key(self, key: str) -> Optional[ResidencyEntry]:
        with self._lock:
            return self._by_key.get(key)

    def entries(self) -> list[ResidencyEntry]:
        with self._lock:
            return list(self._by_key.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_key)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self, entry: ResidencyEntry) -> bool:
        """Re-check a surviving entry's content once per generation.

        Returns ``True`` when the cached copies are still valid.  A
        checksum mismatch means the master object was mutated outside
        any task since the copies were recorded: the entry rolls to a
        new content version with no holders, so the next dispatch
        re-ships current bytes.
        """

        with self._lock:
            if entry.checked_gen == self.generation:
                return True
            entry.checked_gen = self.generation
            if entry.checksum is None or not entry.master_current():
                return True  # nothing trustworthy to compare against
            current = content_checksum(entry.obj)
            if current == entry.checksum:
                return True
            entry.version += 1
            entry.master_version = entry.version
            entry.copies.clear()
            entry.checksum = current
            entry.lost = False
            return False

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def record_copy(self, entry: ResidencyEntry, node: str) -> None:
        with self._lock:
            entry.copies[node] = entry.version
            # First content ship from a current master copy: remember
            # its checksum, or verify() would have nothing to compare
            # against when a later generation re-checks this entry
            # (read-only cached arrays are exactly the ones users are
            # most tempted to mutate between submissions).
            if entry.checksum is None and entry.master_current():
                entry.checksum = content_checksum(entry.obj)
                entry.checked_gen = self.generation

    def commit_write(self, entry: ResidencyEntry, node: str,
                     v_after: int, *, master_too: bool) -> None:
        """A task on *node* produced content version *v_after*."""

        with self._lock:
            entry.version = v_after
            entry.copies = {node: v_after}
            entry.last_writer = node
            entry.lost = False
            entry.nbytes = _size_of(entry.obj)
            if master_too:
                entry.master_version = v_after
                entry.checksum = content_checksum(entry.obj)
                entry.checked_gen = self.generation
            else:
                entry.checksum = None

    def mark_master_current(self, entry: ResidencyEntry) -> None:
        """The master just obtained the current bytes (fetch/ship)."""

        with self._lock:
            entry.master_version = entry.version
            entry.checksum = content_checksum(entry.obj)
            entry.checked_gen = self.generation
            entry.lost = False

    def drop_node(self, node: str) -> list[ResidencyEntry]:
        """Forget every copy on a dead *node*; returns entries whose
        current version is now unrecoverable (sole copy lost while the
        master was stale)."""

        lost: list[ResidencyEntry] = []
        with self._lock:
            for entry in self._by_key.values():
                if entry.copies.pop(node, None) is None:
                    continue
                if not entry.master_current() and not entry.holders():
                    entry.lost = True
                    lost.append(entry)
        return lost

    def evict(self, entries: Iterable[ResidencyEntry]) -> dict[str, list[str]]:
        """Remove *entries*; returns ``{node: [keys...]}`` so the
        caller can tell each agent to drop its copies."""

        by_node: dict[str, list[str]] = {}
        with self._lock:
            for entry in entries:
                if self._by_key.pop(entry.key, None) is None:
                    continue
                cached = self._by_id.get(id(entry.obj))
                if cached is entry:
                    del self._by_id[id(entry.obj)]
                for node in entry.copies:
                    by_node.setdefault(node, []).append(entry.key)
        return by_node

    # ------------------------------------------------------------------
    # placement / telemetry
    # ------------------------------------------------------------------
    def node_bytes(self, objs: Iterable[Any]) -> dict[str, int]:
        """Per-node current-version resident bytes across *objs*."""

        totals: dict[str, int] = {}
        with self._lock:
            for obj in objs:
                entry = self._by_id.get(id(obj))
                if entry is None or entry.obj is not obj:
                    continue
                for node, version in entry.copies.items():
                    if version == entry.version:
                        totals[node] = totals.get(node, 0) + entry.nbytes
        return totals

    def resident_bytes_by_node(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        with self._lock:
            for entry in self._by_key.values():
                for node, version in entry.copies.items():
                    if version == entry.version:
                        totals[node] = totals.get(node, 0) + entry.nbytes
        return totals
