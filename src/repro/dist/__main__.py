"""Run a node agent from the command line.

Usage::

    python -m repro dist agent tcp:127.0.0.1:7200
    python -m repro dist agent tcp:0.0.0.0:0 --slots 4 --processes
    python -m repro dist agent /tmp/repro-agent.sock
    python -m repro dist ping tcp:127.0.0.1:7200
    python -m repro dist stop tcp:127.0.0.1:7200

``agent`` prints its bound address (useful with an ephemeral port 0)
and serves until Ctrl-C/SIGTERM.  One agent per node; the master lists
them as ``SmpssRuntime(backend="cluster", nodes=[...])``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from ..net.frames import recv_frame, send_frame
from ..net.protocol import connect_retry
from .agent import AgentServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro dist",
        description="Node agents for the distributed execution backend.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    agent = sub.add_parser("agent", help="serve one node's execution slots")
    agent.add_argument(
        "address", help="unix-socket path or tcp:HOST:PORT (0 = ephemeral)"
    )
    agent.add_argument(
        "--slots", type=int, default=None,
        help="execution slots to advertise (default: cores - 1)",
    )
    agent.add_argument(
        "--processes", action="store_true",
        help="back each slot with a forked worker process "
        "(for pure-Python task bodies)",
    )
    agent.add_argument("--name", default=None, help="cosmetic node name")
    ping = sub.add_parser("ping", help="ask an agent for its status")
    ping.add_argument("address")
    stop = sub.add_parser("stop", help="shut an agent down cleanly")
    stop.add_argument("address")
    return parser


def _control_roundtrip(address: str, op: dict) -> dict:
    sock = connect_retry(address, timeout=5.0, attempts=3)
    try:
        send_frame(sock, {"k": "hello", "role": "control", "sid": "cli"})
        recv_frame(sock, timeout=5.0)
        send_frame(sock, op)
        reply, _ = recv_frame(sock, timeout=5.0)
        return reply
    finally:
        sock.close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "ping":
        reply = _control_roundtrip(args.address, {"k": "ping"})
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0 if reply.get("k") == "pong" else 1
    if args.command == "stop":
        reply = _control_roundtrip(args.address, {"k": "stop"})
        return 0 if reply.get("k") == "ok" else 1

    server = AgentServer(
        args.address, slots=args.slots, processes=args.processes,
        name=args.name,
    ).start()
    print(f"repro dist agent listening on {server.address} "
          f"({server.slots} slot(s)"
          f"{', process workers' if args.processes else ''})",
          flush=True)
    done = threading.Event()

    def _terminate(signum, frame):  # noqa: ARG001 - signal signature
        done.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    try:
        # A remote `stop` op closes the server from a handler thread;
        # poll for that as well as for our own signals.
        while not done.is_set() and not server.closed:
            done.wait(0.2)
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
