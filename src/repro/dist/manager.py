"""Master-side cluster backend: dispatch, residency, placement, recovery.

:class:`ClusterBackend` is the third execution backend, behind the same
proxy-thread contract as :class:`~repro.mp.executor.ProcessBackend`:
the master keeps the paper's entire task-graph machinery — dependency
tracker, renaming, scheduler, memory limit — byte-identical, and each
worker thread becomes a proxy that forwards the task body to a remote
**node agent** (:mod:`repro.dist.agent`) over one persistent socket per
slot, blocking until the ``done`` frame.

What is genuinely new versus the process backend is the **datum
residency** layer (:mod:`repro.dist.residency`):

* a task's inputs ship only when the target node does not already hold
  their current version — repeat submissions over the same arrays move
  almost nothing (``dist.cache_hits``);
* a task's whole-object outputs stay on the producing node by default;
  the master fetches them home lazily (a consumer dispatched elsewhere,
  :meth:`fetch_version`, or the barrier) — the paper's section-VI
  locality argument, generalised across address spaces;
* the scheduler's placement hook steers each ready task toward the
  node already holding the most input bytes (cf. the Myrmics/COMPSs
  locality schedulers in PAPERS.md), falling back to normal stealing.

Failure contract mirrors the process backend: a dead agent is detected
by its sockets dying; its in-flight tasks are re-dispatched exactly
once to surviving nodes (slots remap, so the proxy threads never
change); resident data that died with the node is re-fetched from the
master copy when current, and otherwise raises
:class:`~repro.dist.encoding.DistDataLossError` — run with
``dist_write_through=True`` when agents are expected to die.
"""

from __future__ import annotations

import pickle
import threading
import uuid
from typing import Any, Optional

import numpy as np

from ..core.invocation import resolve_call_values
from ..core.renaming import StorageKind
from ..net.client import NetClosed, NetTimeout
from ..net.frames import FrameError, recv_frame, send_frame
from ..net.protocol import connect, connect_retry
from .encoding import (
    PROTOCOL,
    AgentLostError,
    DistDataLossError,
    DistSerializationError,
    RemoteTaskError,
    SCALAR_TYPES,
    apply_blob,
    alloc_meta,
    definition_key,
    definition_payload,
    encode_blob,
    slices_from_spec,
    slices_spec,
)
from .residency import ResidencyMap

__all__ = ["ClusterBackend"]

#: Read timeout for control-channel round trips (fetch may move a large
#: array; dispatch channels have NO timeout — tasks take as long as
#: they take, and death is detected by the socket dying, not a clock).
_CONTROL_TIMEOUT = 120.0

_SHIPPABLE = (np.ndarray, list, bytearray)


class _Node:
    """One agent: control socket, advertised slots, death flag."""

    __slots__ = (
        "index", "name", "address", "control", "control_lock", "slots",
        "slot_ids", "pid", "dead", "rr", "tasks_run",
    )

    def __init__(self, index: int, address: str):
        self.index = index
        self.name = f"n{index}"
        self.address = address
        self.control = None
        self.control_lock = threading.Lock()
        self.slots = 0
        self.slot_ids: list[int] = []
        self.pid: Optional[int] = None
        self.dead = False
        #: Round-robin cursor over slot_ids for the placement hook.
        self.rr = 0
        self.tasks_run = 0


class _SlotLink:
    """One dispatch socket: the remote half of one proxy thread.

    Driven by exactly one proxy thread, so it needs no lock; after the
    owning node dies the same thread remaps the link to a survivor
    (``generation`` counts remaps, mirroring mp worker respawns).
    """

    __slots__ = ("slot", "node", "conn", "generation", "sent_defs", "seq")

    def __init__(self, slot: int, node: _Node, conn):
        self.slot = slot
        self.node = node
        self.conn = conn
        self.generation = 1
        self.sent_defs: set = set()
        self.seq = 0


class ClusterBackend:
    """Executes task bodies on remote node agents (see module docstring)."""

    def __init__(self, runtime):
        self._runtime = runtime
        config = runtime.config
        self._addresses = list(config.nodes or ())
        self._connect_timeout = config.dist_connect_timeout
        self._write_through = bool(config.dist_write_through)
        self._trace_on = bool(config.trace)
        self._ring_capacity = config.trace_buffer_size
        self._tracer = runtime.tracer if runtime.tracer else None
        self.sid = uuid.uuid4().hex[:12]
        self._residency = ResidencyMap(self.sid)
        self._nodes: list[_Node] = []
        self._by_name: dict[str, _Node] = {}
        #: slot id -> link; index 0 unused (the main thread never
        #: dispatches remotely under a remote backend).
        self._slots: list[Optional[_SlotLink]] = []
        self._death_lock = threading.Lock()
        self._remap_rr = 0
        self._stopped = False
        self.num_slots = 0
        metrics = runtime.metrics
        self._m_bytes = metrics.counter("dist.bytes_moved")
        self._m_hits = metrics.counter("dist.cache_hits")
        self._m_misses = metrics.counter("dist.cache_misses")
        self._m_deaths = metrics.counter("dist.agent_deaths")
        self._m_redispatch = metrics.counter("dist.redispatched_tasks")
        self._g_resident: dict[str, Any] = {}
        self._g_tasks: dict[str, Any] = {}
        self._g_alive: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._addresses:
            raise TypeError("backend='cluster' needs at least one node")
        self._stopped = False
        metrics = self._runtime.metrics
        slot = 1
        for index, address in enumerate(self._addresses):
            node = _Node(index, address)
            sock = connect_retry(
                address, timeout=self._connect_timeout, attempts=5,
            )
            send_frame(sock, {"k": "hello", "role": "control",
                              "sid": self.sid})
            reply, _ = recv_frame(sock, timeout=self._connect_timeout)
            if reply.get("k") != "hello" or "slots" not in reply:
                sock.close()
                raise ConnectionError(
                    f"{address!r} did not answer like a repro dist agent "
                    f"(got {reply.get('k')!r})"
                )
            sock.settimeout(_CONTROL_TIMEOUT)
            node.control = sock
            node.slots = int(reply["slots"])
            node.pid = reply.get("pid")
            self._nodes.append(node)
            self._by_name[node.name] = node
            for _ in range(node.slots):
                node.slot_ids.append(slot)
                slot += 1
            self._g_resident[node.name] = metrics.gauge(
                "dist.node_resident_bytes", node=node.name)
            self._g_tasks[node.name] = metrics.gauge(
                "dist.node_tasks", node=node.name)
            self._g_alive[node.name] = metrics.gauge(
                "dist.node_alive", node=node.name)
            self._g_alive[node.name].set(1)
        self.num_slots = slot - 1
        self._slots = [None] * (self.num_slots + 1)
        for node in self._nodes:
            for slot_id in node.slot_ids:
                self._slots[slot_id] = _SlotLink(
                    slot_id, node, self._open_dispatch(node, slot_id))

    def _open_dispatch(self, node: _Node, slot: int):
        sock = connect(node.address, timeout=self._connect_timeout)
        send_frame(sock, {
            "k": "hello", "role": "dispatch", "sid": self.sid,
            "slot": slot, "trace": self._trace_on,
            "ring": self._ring_capacity,
        })
        reply, _ = recv_frame(sock, timeout=self._connect_timeout)
        if reply.get("k") != "ok":
            sock.close()
            raise ConnectionError(
                f"agent {node.address!r} refused dispatch slot {slot}"
            )
        sock.settimeout(None)  # tasks take as long as they take
        return sock

    def stop(self) -> None:
        """Release this session on every agent and close all sockets.

        Agents are long-lived daemons shared between runs; stop never
        kills them, it only drops this session's resident data.  Never
        raises — called from runtime shutdown paths.
        """

        if self._stopped:
            return
        self._stopped = True
        for link in self._slots:
            if link is None or link.conn is None:
                continue
            try:
                send_frame(link.conn, {"k": "bye"})
            except Exception:
                pass
            try:
                link.conn.close()
            except Exception:
                pass
            link.conn = None
        for node in self._nodes:
            sock = node.control
            if sock is None:
                continue
            if not node.dead:
                try:
                    send_frame(sock, {"k": "release", "sid": self.sid})
                    recv_frame(sock, timeout=5.0)
                    send_frame(sock, {"k": "bye"})
                except Exception:
                    pass
            try:
                sock.close()
            except Exception:
                pass
            node.control = None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(self, task, slot: int) -> tuple[Optional[BaseException], float]:
        """Execute *task* on the agent behind *slot*; ``(cause, duration)``.

        Same contract as :meth:`ProcessBackend.run`: expected failures
        come back as ``cause`` — :class:`RemoteTaskError` (the body
        raised), :class:`DistSerializationError` (arguments cannot
        cross), :class:`DistDataLossError` (an input's only copy died
        with an agent), :class:`AgentLostError` (two agent deaths on
        one task, or no agents left).
        """

        link = self._slots[slot]
        live = self._runtime.live
        if live is not None:
            live.notify_dispatch(task, slot)
        values = resolve_call_values(task)
        attempts = 0
        while True:
            node = link.node
            if node.dead:
                try:
                    self._remap_slot(link)
                except AgentLostError as exc:
                    return exc, 0.0
                node = link.node
            try:
                msg, commits = self._encode_task(task, values, node)
            except (DistSerializationError, DistDataLossError) as exc:
                return exc, 0.0
            key = definition_key(task.definition)
            if key in link.sent_defs:
                def_payload = None
            else:
                try:
                    def_payload = definition_payload(task.definition)
                except Exception as exc:
                    return (
                        DistSerializationError(
                            f"task {task.name!r}: definition cannot cross "
                            f"to an agent ({exc})"
                        ),
                        0.0,
                    )
            msg["def_key"] = key
            msg["def_payload"] = def_payload
            msg["task_id"] = task.task_id
            msg["name"] = task.name
            try:
                blob = pickle.dumps(msg, protocol=PROTOCOL)
            except Exception as exc:
                return (
                    DistSerializationError(
                        f"task {task.name!r}: arguments are not picklable "
                        f"({exc!r}); use ndarray/list/bytearray data or "
                        f"backend='threads'"
                    ),
                    0.0,
                )
            link.seq += 1
            seq = link.seq
            try:
                send_frame(link.conn, {"k": "task", "seq": seq}, blob)
                link.sent_defs.add(key)
                while True:
                    header, rblob = recv_frame(link.conn)
                    if header.get("k") == "done" and header.get("seq") == seq:
                        break
                reply = pickle.loads(rblob)
            except (NetClosed, NetTimeout, FrameError, ConnectionError,
                    OSError, EOFError) as exc:
                attempts += 1
                self._note_death(node, exc)
                if attempts > 1:
                    return (
                        AgentLostError(
                            f"agent {node.name} ({node.address}) died while "
                            f"running task #{task.task_id} {task.name!r}, "
                            f"which had already been re-dispatched once; "
                            f"giving up"
                        ),
                        0.0,
                    )
                try:
                    self._remap_slot(link)
                except AgentLostError as exc2:
                    return exc2, 0.0
                self._m_redispatch.inc()
                continue
            err = reply.get("err")
            events = reply.get("events")
            if events and self._tracer is not None:
                self._tracer.ingest(events)
            duration = reply.get("duration", 0.0)
            if err is not None:
                return RemoteTaskError(*err), duration
            for pos, sl_spec, meta, payload in reply.get("ret", ()):
                apply_blob(
                    values[pos], meta, payload,
                    None if sl_spec is None else slices_from_spec(sl_spec),
                )
                self._m_bytes.inc(len(payload))
            residency = self._residency
            for entry, v_after, master_too in commits:
                residency.commit_write(
                    entry, node.name, v_after, master_too=master_too)
            node.tasks_run += 1
            self._g_tasks[node.name].set(node.tasks_run)
            return None, duration

    # ------------------------------------------------------------------
    # encoding (the residency decisions happen here)
    # ------------------------------------------------------------------
    def _encode_task(self, task, values: list, node: _Node):
        """Build the task message for *node*; returns ``(msg, commits)``.

        ``commits`` is ``[(entry, v_after, master_too), ...]`` — the
        residency bookkeeping to apply once the agent reports success.
        """

        residency = self._residency
        positions = task.definition.positions
        write_through = self._write_through
        n = len(values)
        specs: list = [None] * n
        ret: list = []
        writes_specs: list = []
        out: list = []
        commits: list = []

        region_positions: set[int] = set()
        whole_writes: dict[int, Any] = {}
        read_positions: set[int] = set()
        for name, version in task.writes:
            pos = positions[name]
            if version.datum.region_mode:
                region_positions.add(pos)
            else:
                whole_writes[pos] = version
        whole_reads: dict[int, Any] = {}
        for name, version in task.reads:
            pos = positions[name]
            read_positions.add(pos)
            if version.datum.region_mode:
                region_positions.add(pos)
            else:
                whole_reads.setdefault(pos, version)

        # -- region-mode positions: ship declared read slices, return
        #    declared write slices; never cached (disjoint regions of
        #    one array may be written concurrently on different nodes,
        #    so no node ever holds "the" current array).
        if region_positions:
            reads_by_pos: dict[int, list] = {}
            writes_by_pos: dict[int, list] = {}
            for access in task.accesses:
                pos = access.position
                if pos < 0:
                    pos = positions[access.name]
                if pos not in region_positions:
                    continue
                value = values[pos]
                if not isinstance(value, np.ndarray):
                    raise DistSerializationError(
                        f"task {task.name!r}: region-mode parameter "
                        f"{access.name!r} has type {type(value).__name__}; "
                        f"the cluster backend ships regions of ndarrays "
                        f"only (use backend='threads')"
                    )
                if access.region is not None:
                    slices = access.region.to_slices()
                else:
                    slices = (slice(None),) * value.ndim
                sl = slices_spec(slices)
                if access.direction.reads:
                    bucket = reads_by_pos.setdefault(pos, [])
                    if sl not in bucket:
                        bucket.append(sl)
                if access.direction.writes:
                    bucket = writes_by_pos.setdefault(pos, [])
                    if sl not in bucket:
                        bucket.append(sl)
            for pos in sorted(region_positions):
                value = values[pos]
                parts = []
                for sl in reads_by_pos.get(pos, ()):
                    chunk = value[slices_from_spec(sl)]
                    meta, payload = encode_blob(chunk)
                    parts.append((sl, meta, payload))
                    self._m_bytes.inc(len(payload))
                specs[pos] = ("g", alloc_meta(value), parts)
                for sl in writes_by_pos.get(pos, ()):
                    ret.append((pos, sl))
                    writes_specs.append((pos, sl))

        # -- whole-object tracked writes: residency-versioned.
        for pos, version in whole_writes.items():
            if specs[pos] is not None:
                continue
            storage = values[pos]
            if not isinstance(storage, _SHIPPABLE):
                raise DistSerializationError(
                    f"task {task.name!r}: written parameter "
                    f"{task.definition.param_names[pos]!r} has type "
                    f"{type(storage).__name__}, which the cluster backend "
                    f"cannot ship; use an ndarray/list/bytearray or "
                    f"backend='threads'"
                )
            entry = residency.ensure(storage, version.storage_is_base())
            residency.verify(entry)
            reads_back = pos in read_positions
            if not reads_back and entry.version == 0 \
                    and version.root.kind is StorageKind.FRESH:
                # Renamed OUTPUT: content is junk, ship the shape only.
                specs[pos] = ("f", entry.key, alloc_meta(storage))
            elif not reads_back:
                # Overwritten in place: old content equally dead.
                specs[pos] = ("f", entry.key, alloc_meta(storage))
            else:
                specs[pos] = self._content_spec(entry, node)
            v_after = entry.version + 1
            out.append((pos, entry.key, v_after))
            writes_specs.append((pos, None))
            if write_through:
                ret.append((pos, None))
            commits.append((entry, v_after, write_through))

        # -- whole-object tracked reads (positions not written).
        for pos, version in whole_reads.items():
            if specs[pos] is not None:
                continue
            storage = values[pos]
            if not isinstance(storage, _SHIPPABLE):
                specs[pos] = ("s", storage)  # read-only copy is safe
                continue
            entry = residency.ensure(storage, version.storage_is_base())
            residency.verify(entry)
            specs[pos] = self._content_spec(entry, node)

        # -- everything else ships inline.
        opaque = self._opaque_positions(task)
        for pos in range(n):
            if specs[pos] is not None:
                continue
            value = values[pos]
            if pos in opaque and not isinstance(value, SCALAR_TYPES):
                raise DistSerializationError(
                    f"task {task.name!r}: opaque parameter "
                    f"{task.definition.param_names[pos]!r} has type "
                    f"{type(value).__name__}; agent-side writes to a "
                    f"pickled copy would be lost silently — declare a "
                    f"direction for it or use backend='threads'"
                )
            specs[pos] = ("s", value)

        msg = {"values": specs, "writes": writes_specs, "ret": ret,
               "out": out}
        return msg, commits

    def _content_spec(self, entry, node: _Node):
        """``("r", ...)`` when *node* holds current content, else ship."""

        if entry.lost:
            raise DistDataLossError(
                f"the only copy of datum {entry.key} died with its node; "
                f"run with dist_write_through=True to survive agent loss"
            )
        if entry.copies.get(node.name) == entry.version:
            self._m_hits.inc()
            return ("r", entry.key, entry.version)
        self._m_misses.inc()
        if not entry.master_current():
            self._fetch_home(entry)
        meta, payload = encode_blob(entry.obj)
        self._m_bytes.inc(len(payload))
        self._residency.record_copy(entry, node.name)
        return ("d", entry.key, entry.version, meta, payload)

    @staticmethod
    def _opaque_positions(task) -> frozenset:
        from ..core.task import Direction

        positions = task.definition.positions
        return frozenset(
            positions[spec.name]
            for spec in task.definition.params
            if spec.direction is Direction.OPAQUE and spec.name in positions
        )

    # ------------------------------------------------------------------
    # residency plumbing (fetch home, barrier, death)
    # ------------------------------------------------------------------
    def fetch_version(self, version) -> None:
        """Make the master copy of *version*'s storage current.

        Installed as ``tracker.residency_fetch`` (the renaming engine
        calls it before cloning a predecessor) and used by
        ``runtime.acquire`` / the barrier.  No-op for region-mode data
        (written home eagerly) and for versions that never materialised
        master-side (they were never dispatched either).
        """

        root = version.root
        if root.kind is StorageKind.INITIAL:
            storage = version.datum.base
        else:
            storage = root._storage
        if storage is None:
            return
        entry = self._residency.get(storage)
        if entry is None:
            return
        if not entry.master_current():
            self._fetch_home(entry)

    def _fetch_home(self, entry) -> None:
        """Pull *entry*'s current bytes from a holder into the master copy."""

        for name in entry.holders():
            node = self._by_name.get(name)
            if node is None or node.dead:
                continue
            try:
                with node.control_lock:
                    send_frame(node.control, {
                        "k": "fetch", "key": entry.key,
                        "version": entry.version,
                        "timeout": _CONTROL_TIMEOUT - 10.0,
                    })
                    header, payload = recv_frame(node.control)
            except (NetClosed, NetTimeout, FrameError, ConnectionError,
                    OSError) as exc:
                self._note_death(node, exc)
                continue
            if not header.get("found"):
                continue
            apply_blob(entry.obj, header["meta"], payload)
            self._m_bytes.inc(len(payload))
            self._residency.mark_master_current(entry)
            return
        raise DistDataLossError(
            f"datum {entry.key}: current version v{entry.version} is on no "
            f"reachable node and the master copy is stale (last writer "
            f"{entry.last_writer}); run with dist_write_through=True to "
            f"survive agent loss"
        )

    def barrier_sync(self) -> None:
        """Residency half of a barrier: all data home, caches pruned.

        Fetches every master-stale datum home (the barrier's write-back
        pass then copies renamed storage into user objects exactly as
        under the threads backend), then evicts everything except
        user-owned base arrays — renamed buffers die with the barrier,
        and the surviving base entries are what makes a *second*
        submission of the same graph cheap (their remote copies are
        still valid unless :meth:`ResidencyMap.verify` catches a
        master-side mutation).
        """

        residency = self._residency
        entries = residency.entries()
        for entry in entries:
            if not entry.master_current():
                self._fetch_home(entry)
        doomed = [
            entry for entry in entries
            if not (entry.is_base
                    and isinstance(entry.obj, (np.ndarray, bytearray)))
        ]
        by_node = residency.evict(doomed)
        for name, keys in by_node.items():
            node = self._by_name.get(name)
            if node is None or node.dead:
                continue
            try:
                with node.control_lock:
                    send_frame(node.control, {"k": "evict", "keys": keys})
                    recv_frame(node.control)
            except (NetClosed, NetTimeout, FrameError, ConnectionError,
                    OSError) as exc:
                self._note_death(node, exc)
        residency.generation += 1
        totals = residency.resident_bytes_by_node()
        for node in self._nodes:
            self._g_resident[node.name].set(totals.get(node.name, 0))

    def _note_death(self, node: _Node, cause) -> None:
        """Record an agent death exactly once; drop its resident copies."""

        with self._death_lock:
            if node.dead:
                return
            node.dead = True
        self._m_deaths.inc()
        self._g_alive[node.name].set(0)
        self._residency.drop_node(node.name)
        sock = node.control
        if sock is not None:
            try:
                sock.close()
            except Exception:
                pass

    def _remap_slot(self, link: _SlotLink) -> None:
        """Point a dead node's slot at a surviving agent (same slot id,
        fresh socket) so its proxy thread keeps draining the scheduler."""

        survivors = [n for n in self._nodes if not n.dead]
        if not survivors:
            raise AgentLostError(
                f"all {len(self._nodes)} agent(s) are gone; cannot re-home "
                f"slot {link.slot}"
            )
        old = link.conn
        if old is not None:
            try:
                old.close()
            except Exception:
                pass
            link.conn = None
        last_exc: Optional[Exception] = None
        for _ in range(len(survivors)):
            node = survivors[self._remap_rr % len(survivors)]
            self._remap_rr += 1
            try:
                conn = self._open_dispatch(node, link.slot)
            except (NetClosed, NetTimeout, FrameError, ConnectionError,
                    OSError) as exc:
                last_exc = exc
                self._note_death(node, exc)
                continue
            link.node = node
            link.conn = conn
            link.generation += 1
            link.sent_defs = set()
            return
        raise AgentLostError(
            f"no surviving agent would accept slot {link.slot}: {last_exc}"
        )

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def placement(self, task) -> Optional[int]:
        """Scheduler hook: the slot of the node holding the most input
        bytes, or ``None`` for default placement.

        Called under the scheduler lock — it only peeks at already-
        materialised storages and the residency map (lock order is
        scheduler → residency, network never happens here).
        """

        objs = []
        for name, version in task.reads:
            if version.datum.region_mode:
                continue
            root = version.root
            if root.kind is StorageKind.INITIAL:
                storage = version.datum.base
            else:
                storage = root._storage
            if storage is not None:
                objs.append(storage)
        for name, version in task.writes:
            if version.datum.region_mode:
                continue
            root = version.root
            if root.kind is StorageKind.INITIAL:
                storage = version.datum.base
                if storage is not None:
                    objs.append(storage)
        if not objs:
            return None
        totals = self._residency.node_bytes(objs)
        if not totals:
            return None
        name = max(totals, key=totals.get)
        if totals[name] <= 0:
            return None
        node = self._by_name.get(name)
        if node is None or node.dead or not node.slot_ids:
            return None
        node.rr += 1
        return node.slot_ids[node.rr % len(node.slot_ids)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def liveness(self) -> list[dict]:
        """Per-slot liveness, same shape as the mp backend's (the
        health watchdog and serve /health consume both identically)."""

        out = []
        for link in self._slots[1:]:
            if link is None:
                continue
            out.append({
                "slot": link.slot,
                "pid": link.node.pid,
                "alive": not link.node.dead,
                "generation": link.generation,
                "node": link.node.name,
            })
        return out

    @property
    def worker_pids(self) -> list[Optional[int]]:
        return [link.node.pid for link in self._slots[1:] if link is not None]

    def nodes_snapshot(self) -> list[dict]:
        """Telemetry for CLI/debugging: one dict per configured node."""

        totals = self._residency.resident_bytes_by_node()
        return [
            {
                "name": node.name, "address": node.address,
                "slots": node.slots, "pid": node.pid,
                "alive": not node.dead, "tasks_run": node.tasks_run,
                "resident_bytes": totals.get(node.name, 0),
            }
            for node in self._nodes
        ]
