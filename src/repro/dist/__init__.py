"""repro.dist — multi-node distributed execution backend.

``SmpssRuntime(backend="cluster", nodes=["tcp:host:port", ...])`` keeps
the paper's master — dependency tracker, renaming, scheduler — exactly
as-is and runs task *bodies* on remote node agents, each started with
``python -m repro dist agent ADDR``.  The interesting machinery is the
datum **residency** layer: inputs ship only when the target node does
not already hold their current version, outputs stay on the producing
node until someone needs them, and the scheduler places each task on
the node holding the most of its input bytes.  See
``docs/distributed.md`` for the topology, the wire protocol, and the
failure semantics.
"""

from .agent import AgentServer
from .encoding import (
    AgentLostError,
    DistDataLossError,
    DistSerializationError,
    RemoteTaskError,
)
from .manager import ClusterBackend
from .residency import ResidencyEntry, ResidencyMap

__all__ = [
    "AgentLostError",
    "AgentServer",
    "ClusterBackend",
    "DistDataLossError",
    "DistSerializationError",
    "RemoteTaskError",
    "ResidencyEntry",
    "ResidencyMap",
]
