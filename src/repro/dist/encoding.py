"""Wire format between the master and node agents.

A task crosses the network as ONE frame (:mod:`repro.net.frames`)
whose payload is a pickled message; the interesting part is how each
call value is encoded.  Unlike the process backend — which ships every
non-arena value with every task — the cluster backend is built around
**datum residency**: content already resident on the target node ships
as a tiny reference, not as bytes.  Five value-spec forms:

``("s", value)``
    Inline: scalars, small untracked objects.  Pickled in place.
``("r", key, version)``
    Resident reference: use the agent-store object under *key*, once
    its content version is at least *version* (a condition wait covers
    the rare case where the producing dispatch is still in flight on a
    sibling slot).
``("d", key, version, meta, payload)``
    Data ship: store ``decode_blob(meta, payload)`` under *key* at
    *version*, then use it.  This is the cache-miss path the
    ``dist.bytes_moved`` counter measures.
``("f", key, meta)``
    Fresh output: allocate storage agent-side from *meta* alone —
    renamed OUTPUT buffers have no content worth moving.
``("g", meta, parts)``
    Region-mode buffer: allocate the full shape, fill only the
    declared read slices from *parts* (``[(slices_spec, meta,
    payload), ...]``).  Region data is never cached (disjoint regions
    of one array may be written concurrently on different nodes, so no
    single node ever holds "the" current array).

Keys are ``"{sid}:{serial}"`` strings — the session id namespaces
multiple masters sharing one agent, and the serial pins the entry even
if Python reuses the object id master-side.

Everything crosses as pickles between trusted processes, the same
security model as :mod:`repro.mp`'s pipes — never expose an agent port
to an untrusted network (see ``docs/distributed.md``).
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, Optional

import numpy as np

from ..mp.encoding import (  # noqa: F401  (re-exported for dist users)
    PROTOCOL,
    RemoteTaskError,
    definition_key,
    definition_payload,
    format_remote_error,
    resolve_definition_func,
)

__all__ = [
    "AgentLostError",
    "DistDataLossError",
    "DistSerializationError",
    "RemoteTaskError",
    "alloc_from_meta",
    "alloc_meta",
    "apply_blob",
    "content_checksum",
    "decode_blob",
    "encode_blob",
    "slices_from_spec",
    "slices_spec",
]

#: Types that may ship inline through an OPAQUE parameter.  Anything
#: richer (an ndarray, a HyperMatrix) would be pickled into a *copy*
#: on the agent, and writes through it silently lost — the same
#: failure mode the mp backend's arena rule guards against.
SCALAR_TYPES = (
    int, float, complex, bool, str, bytes, type(None), tuple, frozenset,
)


class DistSerializationError(TypeError):
    """A task's arguments cannot cross to a node agent safely."""


class AgentLostError(RuntimeError):
    """A node agent died and the task could not be recovered."""


class DistDataLossError(RuntimeError):
    """The only copy of a datum's current version died with its node.

    Only possible in the default lazy-residency mode, where a task's
    outputs stay on the producing node until someone needs them; run
    with ``dist_write_through=True`` when agents are expected to die.
    """


# ---------------------------------------------------------------------------
# blobs
# ---------------------------------------------------------------------------

def encode_blob(obj: Any) -> tuple[dict, bytes]:
    """``(meta, payload)`` for one value's content.

    ndarrays ship as raw C-contiguous bytes plus dtype/shape (no pickle
    framing around the bulk data); everything else pickles.  Structured
    and object dtypes take the pickle path — ``dtype.str`` cannot
    round-trip them.
    """

    if isinstance(obj, np.ndarray) and obj.dtype.names is None \
            and not obj.dtype.hasobject:
        arr = np.ascontiguousarray(obj)
        meta = {"t": "nd", "dtype": arr.dtype.str, "shape": list(arr.shape)}
        return meta, arr.tobytes()
    return {"t": "pkl"}, pickle.dumps(obj, protocol=PROTOCOL)


def decode_blob(meta: dict, payload: bytes) -> Any:
    """Inverse of :func:`encode_blob`; ndarrays come back writable."""

    if meta["t"] == "nd":
        arr = np.frombuffer(payload, dtype=np.dtype(meta["dtype"]))
        return arr.reshape(tuple(meta["shape"])).copy()
    return pickle.loads(payload)


def apply_blob(target: Any, meta: dict, payload: bytes,
               slices: Optional[tuple] = None) -> None:
    """Land returned content in *target* (optionally a region of it)."""

    value = decode_blob(meta, payload)
    if slices is not None:
        target[slices] = value
    elif isinstance(target, np.ndarray):
        target[...] = value
    else:  # list / bytearray
        target[:] = value


def alloc_meta(obj: Any) -> dict:
    """How an agent allocates storage shaped like *obj* locally."""

    if isinstance(obj, np.ndarray):
        return {"t": "nd", "dtype": obj.dtype.str, "shape": list(obj.shape)}
    if isinstance(obj, list):
        return {"t": "list", "n": len(obj)}
    if isinstance(obj, bytearray):
        return {"t": "ba", "n": len(obj)}
    raise DistSerializationError(
        f"cannot describe a fresh {type(obj).__name__} for remote "
        f"allocation"
    )


def alloc_from_meta(meta: dict) -> Any:
    """Agent-side inverse of :func:`alloc_meta`.

    ndarrays allocate zeroed — deterministic across nodes, and the
    declared-region write-back discipline means uninitialised bytes
    are never shipped home anyway.
    """

    if meta["t"] == "nd":
        return np.zeros(tuple(meta["shape"]), dtype=np.dtype(meta["dtype"]))
    if meta["t"] == "list":
        return [None] * meta["n"]
    return bytearray(meta["n"])


# ---------------------------------------------------------------------------
# region slices
# ---------------------------------------------------------------------------

def slices_spec(slices: tuple) -> tuple:
    """JSON/pickle-stable form of a tuple of :class:`slice` objects."""

    return tuple((s.start, s.stop, s.step) for s in slices)


def slices_from_spec(spec) -> tuple:
    return tuple(slice(a, b, c) for a, b, c in spec)


# ---------------------------------------------------------------------------
# content checksums (survivor-cache verification)
# ---------------------------------------------------------------------------

def content_checksum(obj: Any) -> Optional[int]:
    """Cheap adler32 over a value's current content.

    The residency map re-verifies surviving cache entries once per
    barrier generation with this: a user mutating an array *between*
    barriers (outside any task) would otherwise leave remote copies
    silently stale.  ``None`` for types we do not checksum (those are
    never barrier-survivors).
    """

    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            return None
        return zlib.adler32(np.ascontiguousarray(obj).tobytes())
    if isinstance(obj, bytearray):
        return zlib.adler32(bytes(obj))
    return None
