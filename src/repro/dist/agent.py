"""The node agent: one process per node, owning that node's executors.

``python -m repro dist agent ADDR`` starts one of these.  An agent
listens on a single address and serves two kinds of connection, both
speaking the frame protocol (:mod:`repro.net.frames`):

* one **control** connection per master — fetch a resident datum's
  bytes, evict keys, stats, stop;
* one **dispatch** connection per execution slot — a task-loop mirror
  of the mp backend's pipe: the master's proxy thread sends one task
  frame and blocks for the ``done`` frame.

Every dispatch connection is served by its own thread.  In the default
threads mode the task body runs right on that thread (numpy kernels
release the GIL, so slots genuinely overlap); with ``--processes``
each dispatch connection lazily forks a dedicated worker process via
the mp backend's :func:`~repro.mp.worker.worker_main` and relays, so
pure-Python bodies get real cores too.

The **store** is the agent half of the residency protocol: a dict of
``key -> (content_version, object)`` plus a condition variable.  A
task referencing a resident datum (``("r", key, version)``) waits
until the store holds at least that version — covering the window
where the producing task's ``done`` frame has landed on the master but
a sibling slot's consumer frame overtakes the data on this node.

Trace events are recorded with ``thread = global slot index`` on the
same ``perf_counter`` clock as the master (one host in tests; on real
multi-host fleets the merged timeline is per-node-accurate only) and
piggy-back on every ``done`` frame, exactly like mp worker rings.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
from collections import deque
from time import perf_counter
from typing import Any, Optional

import numpy as np

from ..core.tracing import EventKind, TraceEvent
from ..net.client import NetClosed, NetTimeout
from ..net.frames import recv_frame, send_frame
from ..net.protocol import format_address, parse_address
from .encoding import (
    PROTOCOL,
    alloc_from_meta,
    decode_blob,
    encode_blob,
    format_remote_error,
    resolve_definition_func,
    slices_from_spec,
)

__all__ = ["AgentServer"]

#: Seconds a task waits for a resident datum to reach its expected
#: version before failing structurally (dependency ordering makes real
#: waits sub-millisecond; this is a protocol-bug backstop).
STORE_WAIT_TIMEOUT = 60.0


class _AgentStore:
    """Versioned resident-datum store shared by all slots of one agent."""

    def __init__(self):
        self._cv = threading.Condition()
        self._data: dict[str, tuple[int, Any]] = {}

    def put(self, key: str, version: int, obj: Any) -> Any:
        """Record *obj* as *key*'s content at *version*; returns the
        canonical object (an equal-or-newer resident copy wins)."""

        with self._cv:
            cur = self._data.get(key)
            if cur is not None and cur[0] >= version:
                return cur[1]
            self._data[key] = (version, obj)
            self._cv.notify_all()
            return obj

    def get_at_least(self, key: str, version: int,
                     timeout: float = STORE_WAIT_TIMEOUT) -> tuple[int, Any]:
        deadline = perf_counter() + timeout
        with self._cv:
            while True:
                cur = self._data.get(key)
                if cur is not None and cur[0] >= version:
                    return cur
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    have = "nothing" if cur is None else f"v{cur[0]}"
                    raise RuntimeError(
                        f"resident datum {key!r} did not reach version "
                        f"{version} within {timeout:.0f}s (store has {have}); "
                        f"master/agent residency state diverged"
                    )
                self._cv.wait(remaining)

    def evict(self, keys) -> None:
        with self._cv:
            for key in keys:
                self._data.pop(key, None)

    def release(self, prefix: str) -> int:
        with self._cv:
            doomed = [k for k in self._data if k.startswith(prefix)]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def stats(self) -> dict:
        with self._cv:
            nbytes = 0
            for _version, obj in self._data.values():
                if isinstance(obj, np.ndarray):
                    nbytes += int(obj.nbytes)
                elif isinstance(obj, (bytes, bytearray)):
                    nbytes += len(obj)
            return {"entries": len(self._data), "resident_bytes": nbytes}


class _MpFleetWorker:
    """One forked mp worker behind one dispatch connection."""

    def __init__(self, slot: int, trace: bool, ring: int):
        import multiprocessing

        from ..mp.worker import MSG_READY, worker_main

        self._ctx = multiprocessing.get_context("fork")
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main, args=(child, slot, trace, ring),
            name=f"repro-dist-worker-{slot}", daemon=True,
        )
        proc.start()
        child.close()
        self.proc = proc
        self.conn = parent
        self.seq = 0
        self.sent_defs: set = set()
        if not parent.poll(30.0):
            self.close()
            raise RuntimeError(f"dist mp worker for slot {slot} did not start")
        msg = pickle.loads(parent.recv_bytes())
        if msg[0] != MSG_READY:  # pragma: no cover - protocol guard
            self.close()
            raise RuntimeError("dist mp worker bad handshake")

    def run(self, def_key, def_payload, task_id, name, values, wb_specs):
        """Relay one task; returns ``(err, wb_values, duration, events)``."""

        from ..mp.worker import MSG_DONE, MSG_TASK

        self.seq += 1
        payload = None if def_key in self.sent_defs else def_payload
        msg = (MSG_TASK, self.seq, def_key, payload, task_id, name,
               [("v", v) for v in values], wb_specs)
        self.conn.send_bytes(pickle.dumps(msg, protocol=PROTOCOL))
        self.sent_defs.add(def_key)
        reply = pickle.loads(self.conn.recv_bytes())
        if reply[0] != MSG_DONE or reply[1] != self.seq:
            raise EOFError("dist mp worker protocol desync")
        _tag, _seq, err, wb_values, duration, events = reply
        return err, wb_values, duration, events

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass
        proc = self.proc
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stubborn child
                proc.kill()
                proc.join(timeout=2.0)


class AgentServer:
    """One node's agent (see module docstring).

    ``slots`` is how many dispatch slots the agent advertises (default:
    this machine's cores minus one, at least one); ``processes=True``
    backs each slot with a forked mp worker instead of running bodies
    on the dispatch thread.
    """

    def __init__(self, address: str, slots: Optional[int] = None,
                 processes: bool = False, name: Optional[str] = None):
        if slots is None:
            slots = max(1, (os.cpu_count() or 2) - 1)
        if slots < 1:
            raise ValueError("an agent needs at least one slot")
        self.slots = slots
        self.processes = processes
        self.name = name
        self.requested_address = address
        self.address: Optional[str] = None
        self.store = _AgentStore()
        self._listener: Optional[socket.socket] = None
        self._unix_path: Optional[str] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._closing = threading.Event()
        self._func_lock = threading.Lock()
        self._funcs: dict = {}
        #: Tasks completed by this agent (telemetry; racy read is fine).
        self.tasks_run = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AgentServer":
        parsed = parse_address(self.requested_address)
        if parsed[0] == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((parsed[1], parsed[2]))
            host, port = sock.getsockname()[:2]
            self.address = format_address(("tcp", parsed[1], port))
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                os.unlink(parsed[1])
            except OSError:
                pass
            sock.bind(parsed[1])
            self._unix_path = parsed[1]
            self.address = parsed[1]
        sock.listen(64)
        self._listener = sock
        self._closing.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-dist-agent-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    @property
    def closed(self) -> bool:
        """True once a remote ``stop`` op or :meth:`close` tore us down."""

        return self._closing.is_set()

    def close(self) -> None:
        """Shut the agent down: stop accepting, drop every connection."""

        self._closing.set()
        listener = self._listener
        self._listener = None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
            self._unix_path = None

    #: Sudden-death alias used by the failure tests: from the master's
    #: point of view an agent whose sockets all vanish at once is
    #: indistinguishable from a SIGKILLed process.
    kill = close

    def join(self, timeout: Optional[float] = None) -> None:
        thread = self._accept_thread
        if thread is not None:
            thread.join(timeout)

    def __enter__(self) -> "AgentServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._closing.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return
            with self._conn_lock:
                if self._closing.is_set():
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="repro-dist-agent-conn", daemon=True,
            )
            thread.start()

    def _drop_conn(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._conns.discard(conn)
        try:
            conn.close()
        except OSError:
            pass

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            try:
                hello, _ = recv_frame(conn, timeout=30.0)
            except (NetClosed, NetTimeout, ConnectionError):
                return
            if hello.get("k") != "hello":
                return
            conn.settimeout(None)
            role = hello.get("role")
            if role == "control":
                self._control_loop(conn)
            elif role == "dispatch":
                self._dispatch_loop(conn, hello)
        finally:
            self._drop_conn(conn)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _control_loop(self, conn: socket.socket) -> None:
        send_frame(conn, {
            "k": "hello", "slots": self.slots, "pid": os.getpid(),
            "name": self.name, "processes": self.processes,
        })
        store = self.store
        while True:
            try:
                header, _payload = recv_frame(conn)
            except (NetClosed, ConnectionError, OSError):
                return
            kind = header.get("k")
            try:
                if kind == "fetch":
                    self._handle_fetch(conn, header)
                elif kind == "evict":
                    store.evict(header.get("keys", ()))
                    send_frame(conn, {"k": "ok"})
                elif kind == "release":
                    dropped = store.release(str(header.get("sid", "")) + ":")
                    send_frame(conn, {"k": "ok", "dropped": dropped})
                elif kind == "ping":
                    send_frame(conn, {
                        "k": "pong", "slots": self.slots,
                        "pid": os.getpid(), "tasks_run": self.tasks_run,
                        "store": store.stats(),
                    })
                elif kind == "stop":
                    send_frame(conn, {"k": "ok"})
                    # Tear down off-thread: close() waits on nothing,
                    # but it closes *this* socket too.
                    threading.Thread(target=self.close, daemon=True).start()
                    return
                elif kind == "bye":
                    return
                else:
                    send_frame(conn, {"k": "error",
                                      "error": f"unknown control op {kind!r}"})
            except (NetClosed, ConnectionError, OSError):
                return

    def _handle_fetch(self, conn: socket.socket, header: dict) -> None:
        key = header["key"]
        version = int(header.get("version", 0))
        try:
            have_version, obj = self.store.get_at_least(
                key, version, timeout=float(header.get("timeout", 10.0))
            )
        except RuntimeError:
            send_frame(conn, {"k": "data", "found": False, "key": key})
            return
        meta, payload = encode_blob(obj)
        send_frame(conn, {
            "k": "data", "found": True, "key": key,
            "version": have_version, "meta": meta,
        }, payload)

    # ------------------------------------------------------------------
    # dispatch plane
    # ------------------------------------------------------------------
    def _dispatch_loop(self, conn: socket.socket, hello: dict) -> None:
        slot = int(hello.get("slot", 0))
        sid = str(hello.get("sid", ""))
        trace = bool(hello.get("trace"))
        ring = int(hello.get("ring", 1 << 16))
        send_frame(conn, {"k": "ok", "slot": slot})
        events: deque = deque(maxlen=max(ring, 2))
        worker: Optional[_MpFleetWorker] = None
        try:
            while True:
                try:
                    header, payload = recv_frame(conn)
                except (NetClosed, ConnectionError, OSError):
                    return
                kind = header.get("k")
                if kind == "bye":
                    return
                if kind != "task":
                    continue
                if worker is None and self.processes:
                    try:
                        worker = _MpFleetWorker(slot, trace, ring)
                    except Exception as exc:
                        reply = {"err": format_remote_error(exc), "ret": [],
                                 "duration": 0.0, "events": [],
                                 "store": self.store.stats()}
                        send_frame(conn, {"k": "done", "seq": header.get("seq")},
                                   pickle.dumps(reply, protocol=PROTOCOL))
                        continue
                msg = pickle.loads(payload)
                reply = self._run_task(msg, sid, slot, trace, events, worker)
                if worker is not None and reply.pop("_worker_dead", False):
                    worker.close()
                    worker = None
                try:
                    send_frame(conn, {"k": "done", "seq": header.get("seq")},
                               pickle.dumps(reply, protocol=PROTOCOL))
                except (NetClosed, ConnectionError, OSError):
                    return
        finally:
            if worker is not None:
                worker.close()

    def _resolve_func(self, sid: str, def_key, def_payload):
        # Cache key includes the session id: def_key is id()-based on
        # the master, so two masters sharing one agent could collide.
        cache_key = (sid, def_key)
        with self._func_lock:
            func = self._funcs.get(cache_key)
            if func is None:
                if def_payload is None:
                    raise RuntimeError(
                        f"agent has no cached definition for key {def_key!r} "
                        f"and the master sent no payload"
                    )
                func = self._funcs[cache_key] = resolve_definition_func(
                    def_payload
                )
            return func

    def _resolve_values(self, specs: list) -> list:
        store = self.store
        values: list = []
        for spec in specs:
            tag = spec[0]
            if tag == "s":
                values.append(spec[1])
            elif tag == "r":
                _tag, key, version = spec
                values.append(store.get_at_least(key, version)[1])
            elif tag == "d":
                _tag, key, version, meta, payload = spec
                values.append(store.put(key, version,
                                        decode_blob(meta, payload)))
            elif tag == "f":
                _tag, _key, meta = spec
                values.append(alloc_from_meta(meta))
            elif tag == "g":
                _tag, meta, parts = spec
                obj = alloc_from_meta(meta)
                for sl_spec, part_meta, part_payload in parts:
                    obj[slices_from_spec(sl_spec)] = decode_blob(
                        part_meta, part_payload
                    )
                values.append(obj)
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown value spec tag {tag!r}")
        return values

    def _run_task(self, msg: dict, sid: str, slot: int, trace: bool,
                  events: deque, worker: Optional[_MpFleetWorker]) -> dict:
        task_id = msg.get("task_id", -1)
        name = msg.get("name", "")
        err = None
        ret_out: list = []
        duration = 0.0
        worker_dead = False
        clock = perf_counter
        try:
            values = self._resolve_values(msg["values"])
            if worker is not None:
                # mp-fleet mode: the worker records its own start/end
                # events; relay, then land the written values back into
                # the agent-local objects (store copies / allocations).
                wb_specs = [
                    (pos, None if sl is None else slices_from_spec(sl))
                    for pos, sl in msg.get("writes", ())
                ]
                func = None
                try:
                    err, wb_values, duration, wevents = worker.run(
                        msg["def_key"], msg.get("def_payload"), task_id,
                        name, values, wb_specs,
                    )
                except (EOFError, OSError, BrokenPipeError) as exc:
                    worker_dead = True
                    raise RuntimeError(
                        f"agent-local worker for slot {slot} died while "
                        f"running task #{task_id} {name!r}"
                    ) from exc
                if trace and wevents:
                    events.extend(wevents)
                if err is None and wb_values:
                    from ..mp.encoding import apply_writebacks

                    apply_writebacks(wb_specs, wb_values, values)
            else:
                func = self._resolve_func(sid, msg["def_key"],
                                          msg.get("def_payload"))
                if trace:
                    events.append(TraceEvent(
                        time=clock(), kind=EventKind.TASK_START,
                        task_id=task_id, task_name=name, thread=slot,
                    ))
                t0 = clock()
                func(*values)
                duration = clock() - t0
                if trace:
                    events.append(TraceEvent(
                        time=clock(), kind=EventKind.TASK_END,
                        task_id=task_id, task_name=name, thread=slot,
                    ))
            if err is None:
                for pos, key, v_after in msg.get("out", ()):
                    self.store.put(key, v_after, values[pos])
                for pos, sl_spec in msg.get("ret", ()):
                    obj = values[pos]
                    if sl_spec is not None:
                        part = obj[slices_from_spec(sl_spec)]
                        meta, payload = encode_blob(part)
                    else:
                        meta, payload = encode_blob(obj)
                    ret_out.append((pos, sl_spec, meta, payload))
                self.tasks_run += 1
        except BaseException as exc:  # noqa: BLE001 - shipped to master
            err = format_remote_error(exc)
            ret_out = []
            if trace:
                events.append(TraceEvent(
                    time=clock(), kind=EventKind.TASK_END,
                    task_id=task_id, task_name=name, thread=slot,
                    extra=("error",),
                ))
        drained = list(events)
        events.clear()
        reply = {
            "err": err,
            "ret": ret_out,
            "duration": duration,
            "events": drained,
            "store": self.store.stats(),
        }
        if worker_dead:
            reply["_worker_dead"] = True
        return reply
