"""The served session: the local programming model over a socket.

:func:`repro.serve.connect` returns a :class:`ServeSession` whose
surface mirrors the in-process runtime — it sits on the same
:mod:`repro.core.api` stack, so ``@css_task`` calls, ``barrier()``,
``wait_on()`` and the bundled apps all work unchanged.  A driver
moves from local to served execution by changing one line::

    with SmpssRuntime(num_workers=4) as rt:      # local
    with repro.serve.connect(address) as rt:     # served

Submission is deferred-batch: ``@css_task`` calls accumulate client
side, and any synchronisation point (``barrier``, ``wait_on``,
``gather``) ships the whole batch as ONE graph — tasks referenced by
module/qualname (the mp backend's registration rule), tracked data by
value.  The server analyses dependencies, runs the graph on its fleet,
and the ack carries every datum's post-barrier bytes, which the
session writes back into the caller's original arrays — results are
bitwise identical to local execution.

Unlike :class:`~repro.core.runtime.SmpssRuntime`, a session is not
*exclusive*: many sessions may be active concurrently on different
threads of one process (each thread is the main program of its own
submission stream), which is how one client process drives several
tenants at once.
"""

from __future__ import annotations

import getpass
import os
import threading
from typing import Optional

from ..core import api as _api
from ..net.client import Client
from ..net.protocol import encode as wire_encode
from . import protocol as sp
from .errors import GraphRejected, RemoteGraphError, ServeError

__all__ = ["ServeSession", "connect"]

_session_counter = threading.Lock()
_session_serial = 0


def _default_tenant() -> str:
    global _session_serial
    with _session_counter:
        _session_serial += 1
        serial = _session_serial
    try:
        user = getpass.getuser()
    except Exception:  # noqa: BLE001 - environment without a passwd entry
        user = "client"
    return f"{user}-{os.getpid()}-{serial}"


class _Transport(Client):
    """JSON-lines client that keeps structured errors structured.

    The generic :meth:`Client.command` flattens an error to a string;
    the serve protocol ships dict errors (code/status/detail), so the
    session needs the full ack.
    """

    def rpc(self, cmd: str, **fields) -> dict:
        sock = self._sock
        if sock is None:
            raise ServeError("session transport already closed")
        self._seq += 1
        seq = self._seq
        record = {"cmd": cmd, "seq": seq}
        record.update(fields)
        sock.sendall(wire_encode(record))
        while True:
            reply = self._recv_raw(self.timeout)
            if reply.get("ev") == "ack" and reply.get("seq") == seq:
                return reply
            # hellos and notes arrive interleaved; park them.
            self._pending.append(reply)


class ServeSession:
    """One tenant's connection to a task-graph service."""

    #: Served sessions keep no process-global state (no task-id
    #: counter, no forked fleet), so many may be active at once —
    #: see the api stack's exclusivity contract.
    exclusive = False

    def __init__(
        self,
        address: str,
        tenant: Optional[str] = None,
        timeout: float = 120.0,
        constants: Optional[dict] = None,
        connect_timeout: Optional[float] = 10.0,
        connect_attempts: int = 5,
    ):
        self.address = address
        self.tenant = tenant or _default_tenant()
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.connect_attempts = connect_attempts
        self.constants = dict(constants or {})
        self._transport: Optional[_Transport] = None
        self._batch: list[tuple] = []      # (definition, values)
        self._datums: dict[int, tuple] = {}  # id(obj) -> (datum_id, obj)
        self._datum_serial = 0
        self._started = False
        #: Server facts from the open ack (limits, fleet shape).
        self.server_info: dict = {}
        #: Graphs this session has shipped (one per synchronisation).
        self.graphs_submitted = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeSession":
        if self._started:
            raise ServeError("session already started")
        self._transport = _Transport(
            self.address,
            timeout=self.timeout,
            expect_hello=False,
            connect_timeout=self.connect_timeout,
            connect_attempts=self.connect_attempts,
        )
        ack = self._transport.rpc(
            "open", tenant=self.tenant, version=sp.SERVE_PROTOCOL_VERSION
        )
        if not ack.get("ok"):
            error = ack.get("error")
            self._transport.close()
            self._transport = None
            raise ServeError(f"open rejected: {self._message(error)}")
        self.server_info = ack.get("data", {})
        self._started = True
        _api.push_runtime(self)
        return self

    def close(self) -> None:
        if self._started:
            _api.discard_runtime(self)
            self._started = False
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.detach()
        self._batch.clear()
        self._datums.clear()

    def __enter__(self) -> "ServeSession":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None and self._batch:
                # Mirror the local runtime: leaving the block implies
                # the final barrier.
                self.barrier()
        finally:
            self.close()

    # ------------------------------------------------------------------
    # the runtime surface (what the api stack calls)
    # ------------------------------------------------------------------
    def in_task_body(self) -> bool:
        return False

    def submit(self, definition, args: tuple, kwargs: dict):
        """Record one task call; ships at the next synchronisation."""

        if not self._started:
            raise ServeError("session is not started")
        bound = definition._signature.bind(*args, **kwargs)
        bound.apply_defaults()
        values = tuple(
            bound.arguments[name] for name in definition.param_names
        )
        for value in values:
            if sp.is_datum(value):
                self._register(value)
        self._batch.append((definition, values))
        return None

    def barrier(self) -> None:
        """Ship the batch as one graph; write results back; block."""

        self.flush()

    wait_all = barrier

    def acquire(self, obj):
        """``wait_on`` semantics: synchronise, then read *obj* itself.

        The server has already written every datum back by the time
        the run ack lands, so post-flush the base object IS the latest
        version.
        """

        self.flush()
        return obj

    def gather(self, *objs):
        """Synchronise and return the up-to-date objects."""

        self.flush()
        if len(objs) == 1:
            return objs[0]
        return objs

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def _register(self, obj) -> str:
        key = id(obj)
        entry = self._datums.get(key)
        if entry is not None and entry[1] is obj:
            return entry[0]
        datum_id = f"d{self._datum_serial}"
        self._datum_serial += 1
        self._datums[key] = (datum_id, obj)
        return datum_id

    def flush(self) -> None:
        if not self._batch:
            return
        if self._transport is None:
            raise ServeError("session is not started")
        tasks = []
        data: dict[str, dict] = {}
        for definition, values in self._batch:
            ref = sp.definition_ref(definition)
            argspecs = []
            for value in values:
                if sp.is_datum(value):
                    datum_id = self._register(value)
                    if datum_id not in data:
                        data[datum_id] = sp.encode_datum(value)
                    argspecs.append({"d": datum_id})
                else:
                    argspecs.append(sp.encode_value(value))
            tasks.append({"def": ref, "args": argspecs})
        constants = {
            key: sp.encode_value(value)
            for key, value in self.constants.items()
        }
        ack = self._transport.rpc(
            "run", tasks=tasks, data=data, constants=constants
        )
        if not ack.get("ok"):
            # The batch is gone either way: a rejected graph must not
            # re-ship itself on the next barrier.
            self._batch.clear()
            self._datums.clear()
            raise self._error_from(ack.get("error"))
        results = ack.get("data", {}).get("results", {})
        by_id = {did: obj for did, obj in self._datums.values()}
        for datum_id, payload in results.items():
            target = by_id.get(datum_id)
            if target is not None:
                sp.write_back_into(target, payload)
        self.graphs_submitted += 1
        self._batch.clear()
        self._datums.clear()

    # ------------------------------------------------------------------
    # service introspection
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        if self._transport is None:
            raise ServeError("session is not started")
        ack = self._transport.rpc("ping")
        if not ack.get("ok"):
            raise self._error_from(ack.get("error"))
        return ack.get("data", {})

    def service_state(self) -> dict:
        """The daemon's health view (tenants, queue depth, limits)."""

        if self._transport is None:
            raise ServeError("session is not started")
        ack = self._transport.rpc("health")
        if not ack.get("ok"):
            raise self._error_from(ack.get("error"))
        return ack.get("data", {})

    # ------------------------------------------------------------------
    @staticmethod
    def _message(error) -> str:
        if isinstance(error, dict):
            return str(error.get("message", error))
        return str(error)

    @staticmethod
    def _error_from(error) -> ServeError:
        if isinstance(error, dict):
            code = error.get("code")
            if error.get("status") == 429 or code in (
                "graph_too_large", "memory_limit", "queue_full"
            ):
                return GraphRejected.from_wire(error)
            if code == "task_failed":
                return RemoteGraphError(
                    error.get("message", "remote task failed"),
                    remote_traceback=error.get("traceback", ""),
                )
            return ServeError(str(error.get("message", error)))
        return ServeError(str(error))


def connect(
    address: str,
    tenant: Optional[str] = None,
    timeout: float = 120.0,
    constants: Optional[dict] = None,
    connect_timeout: Optional[float] = 10.0,
    connect_attempts: int = 5,
) -> ServeSession:
    """Open a session against a running task-graph daemon.

    Use as a context manager — the session registers on the api stack
    so every ``@css_task`` call inside the block is served::

        with repro.serve.connect("tcp:127.0.0.1:7070") as rt:
            cholesky_hyper(hm)
            rt.barrier()

    *timeout* bounds each read while a graph runs; *connect_timeout*
    and *connect_attempts* bound the initial dial (with exponential
    backoff between attempts), so connecting to a dead or still-
    starting daemon fails in bounded time instead of hanging.
    """

    return ServeSession(
        address,
        tenant=tenant,
        timeout=timeout,
        constants=constants,
        connect_timeout=connect_timeout,
        connect_attempts=connect_attempts,
    )
