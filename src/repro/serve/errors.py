"""Exception surface of the task-graph service.

Structured errors cross the wire as dicts (``code`` + ``status`` +
human message + detail fields) so a client can branch on the *kind* of
failure — admission-control rejections carry HTTP-style ``429`` and
are retryable; task failures carry the remote traceback and are not.
"""

from __future__ import annotations

__all__ = ["ServeError", "GraphRejected", "RemoteGraphError"]


class ServeError(RuntimeError):
    """Any failure of the serve surface (protocol, session, daemon)."""


class GraphRejected(ServeError):
    """Admission control shed this submission (429-style; retryable).

    ``code`` is machine-readable: ``graph_too_large`` (per-tenant graph
    size cap, the paper's §III graph-size blocking condition turned
    into backpressure), ``memory_limit`` (per-tenant bytes cap, §III's
    memory condition), or ``queue_full`` (per-tenant in-flight cap).
    """

    def __init__(self, code: str, message: str, **detail):
        super().__init__(message)
        self.code = code
        self.status = 429
        self.detail = detail

    def to_wire(self) -> dict:
        return {
            "code": self.code,
            "status": self.status,
            "message": str(self),
            **self.detail,
        }

    @classmethod
    def from_wire(cls, error: dict) -> "GraphRejected":
        detail = {
            k: v for k, v in error.items()
            if k not in ("code", "status", "message")
        }
        return cls(
            error.get("code", "rejected"),
            error.get("message", "graph rejected"),
            **detail,
        )


class RemoteGraphError(ServeError):
    """A task body raised on the server; carries the remote rendering."""

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback
