"""Run a task-graph service daemon from the command line.

Usage::

    python -m repro.serve tcp:127.0.0.1:7070
    python -m repro.serve tcp:0.0.0.0:0 --workers 8 --backend processes
    python -m repro.serve /tmp/repro-serve.sock --max-inflight 4

The daemon prints its bound address (useful with an ephemeral port 0)
and serves until Ctrl-C.  ``curl http://HOST:PORT/metrics`` and
``/health`` work against the same port the sessions use.
"""

from __future__ import annotations

import argparse

from .daemon import ServeDaemon
from .engine import ServiceLimits


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve task-graph submissions on one shared fleet.",
    )
    parser.add_argument(
        "address", help="unix-socket path or tcp:HOST:PORT (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="fleet size (default 4)"
    )
    parser.add_argument(
        "--shards", type=int, default=16,
        help="dependency-tracker lock shards (default 16)",
    )
    parser.add_argument(
        "--backend", choices=("threads", "processes"), default="threads",
        help="worker execution backend (default threads)",
    )
    defaults = ServiceLimits()
    parser.add_argument(
        "--max-graph-tasks", type=int, default=defaults.max_graph_tasks,
        help="per-graph task-count admission cap "
        f"(default {defaults.max_graph_tasks})",
    )
    parser.add_argument(
        "--max-tenant-bytes", type=int, default=defaults.max_tenant_bytes,
        help="per-tenant resident datum bytes admission cap "
        f"(default {defaults.max_tenant_bytes})",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=defaults.max_inflight,
        help="per-tenant concurrent graph cap "
        f"(default {defaults.max_inflight})",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    limits = ServiceLimits(
        max_graph_tasks=args.max_graph_tasks,
        max_tenant_bytes=args.max_tenant_bytes,
        max_inflight=args.max_inflight,
    )
    daemon = ServeDaemon(
        args.address,
        workers=args.workers,
        shards=args.shards,
        backend=args.backend,
        limits=limits,
    )
    print(
        f"serving task graphs on {daemon.address} "
        f"({args.workers} {args.backend} workers, {args.shards} shards; "
        "Ctrl-C to stop)",
        flush=True,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
