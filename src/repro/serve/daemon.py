"""The asyncio front door of the task-graph service.

One daemon owns one :class:`~repro.serve.engine.ServeEngine` (the
worker fleet) and accepts any number of concurrent client sessions.
Each connection is a coroutine, so a session awaiting a long graph
never blocks another tenant's submissions — the engine executes jobs
on its own threads and completions are bridged back into the loop
with ``call_soon_threadsafe``.

The wire surface is the shared JSON-lines protocol with the same
first-bytes HTTP sniffing as the exposition endpoint: ``curl
http://host:port/metrics`` (all tenants), ``/metrics/<tenant>`` (one
tenant's series), and ``/health`` (fleet + tenant state as JSON) work
against the same port the sessions use.

Admission control is per tenant and rejection-based (429-style): the
engine's caps turn the paper's §III blocking conditions into
backpressure, and the structured error crosses the wire in the ack so
clients can branch on ``code`` and retry.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Optional

from ..net.protocol import (
    PROTOCOL_VERSION,
    decode,
    encode,
    format_address,
    parse_address,
)
from ..obs.exposition import (
    CONTENT_TYPE,
    build_http_response,
    render_registry,
)
from .engine import ServeEngine, ServiceLimits
from .errors import GraphRejected, ServeError

__all__ = ["ServeDaemon", "filter_page_by_tenant"]


def filter_page_by_tenant(text: str, tenant: str) -> str:
    """Reduce a Prometheus page to one tenant's series.

    Keeps each group's ``# HELP``/``# TYPE`` header only when at least
    one of its series carries ``tenant="<tenant>"``.
    """

    needle = f'tenant="{tenant}"'
    out: list[str] = []
    header: list[str] = []
    for line in text.splitlines():
        if line.startswith("# HELP "):
            header = [line]
            continue
        if line.startswith("# TYPE "):
            header.append(line)
            continue
        if needle in line:
            if header:
                out.extend(header)
                header = []
            out.append(line)
    return "\n".join(out) + "\n"


class _WireError(ServeError):
    """An error that already has its wire shape (e.g. the engine's
    ``task_failed`` dict with the remote traceback) — crosses verbatim."""

    def __init__(self, error: dict):
        super().__init__(str(error.get("message", "graph failed")))
        self.wire = error


class _Connection:
    """Per-connection state: its tenant and its in-flight jobs."""

    __slots__ = ("tenant", "jobs")

    def __init__(self):
        self.tenant: Optional[str] = None
        self.jobs: set = set()


class ServeDaemon:
    """Bind, accept, admit, execute; one fleet, many tenants."""

    def __init__(
        self,
        address: str,
        *,
        workers: int = 4,
        shards: int = 16,
        backend: str = "threads",
        limits: Optional[ServiceLimits] = None,
        metrics=None,
    ):
        self.engine = ServeEngine(
            workers=workers, shards=shards, backend=backend,
            limits=limits, metrics=metrics,
        )
        self._t0 = time.monotonic()
        self._loop = asyncio.new_event_loop()
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop",
            daemon=True,
        )
        self._thread.start()
        self.address = asyncio.run_coroutine_threadsafe(
            self._bind(address), self._loop
        ).result(timeout=10.0)

    async def _bind(self, address: str) -> str:
        parsed = parse_address(address)
        if parsed[0] == "tcp":
            self._server = await asyncio.start_server(
                self._handle_connection, host=parsed[1], port=parsed[2]
            )
            port = self._server.sockets[0].getsockname()[1]
            return format_address(("tcp", parsed[1], port))
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=parsed[1]
        )
        return parsed[1]

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection()
        try:
            buffer = b""
            while len(buffer) < 5:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                buffer += chunk
            if buffer.startswith(b"GET ") or buffer.startswith(b"HEAD "):
                await self._serve_http(reader, writer, buffer)
                return
            # JSON-lines session: deliver the deferred hello.
            writer.write(encode(self._hello()))
            await writer.drain()
            while True:
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    record = decode(line)
                    if record is None:
                        continue
                    if record.get("cmd") == "detach":
                        writer.write(encode({"ev": "bye"}))
                        await writer.drain()
                        return
                    ack = await self._run_command(conn, record)
                    writer.write(encode(ack))
                    await writer.drain()
                chunk = await reader.read(65536)
                if not chunk:
                    return
                buffer += chunk
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # A client gone mid-graph must not stall the fleet or leak
            # its tenant's accounting: abandon whatever it left behind.
            for job in list(conn.jobs):
                self.engine.abandon(job)
            conn.jobs.clear()
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - teardown best effort
                pass

    def _hello(self) -> dict:
        return {
            "service": "repro.serve",
            "version": PROTOCOL_VERSION,
            "workers": self.engine.num_workers,
            "backend": self.engine.backend,
            "shards": len(self.engine.shards),
        }

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    async def _run_command(self, conn: _Connection, record: dict) -> dict:
        ack = {
            "ev": "ack",
            "seq": record.get("seq"),
            "cmd": record.get("cmd"),
        }
        try:
            ack["data"] = await self._dispatch(conn, record)
            ack["ok"] = True
        except GraphRejected as exc:
            ack["ok"] = False
            ack["error"] = exc.to_wire()
        except _WireError as exc:
            ack["ok"] = False
            ack["error"] = exc.wire
        except ServeError as exc:
            ack["ok"] = False
            ack["error"] = {"code": "error", "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 - reported to the client
            ack["ok"] = False
            ack["error"] = {
                "code": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }
        return ack

    async def _dispatch(self, conn: _Connection, record: dict) -> dict:
        cmd = record.get("cmd")
        if cmd == "open":
            tenant = record.get("tenant")
            if not tenant or not isinstance(tenant, str):
                raise ServeError("open requires a tenant name")
            conn.tenant = tenant
            self.engine.tenant(tenant)
            return {
                "tenant": tenant,
                "limits": self.engine.limits.to_wire(),
                "workers": self.engine.num_workers,
                "backend": self.engine.backend,
                "shards": len(self.engine.shards),
            }
        if cmd == "run":
            if conn.tenant is None:
                raise ServeError("run before open: no tenant bound")
            return await self._run_graph(conn, record)
        if cmd == "metrics":
            text = render_registry(self.engine.metrics)
            tenant = record.get("tenant")
            if tenant:
                text = filter_page_by_tenant(text, str(tenant))
            return {"content_type": CONTENT_TYPE, "text": text}
        if cmd == "health":
            return self._health()
        if cmd == "ping":
            return {"service": "repro.serve", "tenant": conn.tenant}
        raise ServeError(f"unknown command {cmd!r}")

    async def _run_graph(self, conn: _Connection, record: dict) -> dict:
        spec = {
            "tasks": record.get("tasks") or [],
            "data": record.get("data") or {},
            "constants": record.get("constants") or {},
        }
        loop = asyncio.get_running_loop()
        # Admission + decode + dependency analysis are CPU work; keep
        # them off the event loop so other tenants' submissions are
        # never queued behind one tenant's big graph.
        job = await loop.run_in_executor(
            None, self.engine.submit_graph, conn.tenant, spec
        )
        conn.jobs.add(job)
        future = loop.create_future()

        def _done(finished_job):
            def _resolve():
                if not future.cancelled():
                    future.set_result(finished_job)
            loop.call_soon_threadsafe(_resolve)

        job.add_done_callback(_done)
        try:
            await future
        finally:
            conn.jobs.discard(job)
        if job.error is not None:
            raise _WireError(job.error)
        return {
            "results": job.results or {},
            "tasks": job.task_count,
            "seconds": job.seconds,
        }

    def _health(self) -> dict:
        state = self.engine.state()
        state["uptime_seconds"] = time.monotonic() - self._t0
        state["service"] = "repro.serve"
        liveness = self.engine.liveness()
        state["worker_liveness"] = liveness
        state["workers_alive"] = sum(1 for w in liveness if w.get("alive"))
        return state

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------
    async def _serve_http(self, reader, writer, buffer: bytes) -> None:
        while b"\r\n\r\n" not in buffer and len(buffer) < 65536:
            chunk = await reader.read(65536)
            if not chunk:
                break
            buffer += chunk
        request_line = buffer.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = request_line.split()
        path = parts[1] if len(parts) > 1 else "/"
        try:
            response = self._http_response(path)
        except Exception as exc:  # noqa: BLE001 - reported to the client
            response = build_http_response(
                "500 Internal Server Error", "text/plain",
                str(exc).encode("utf-8", "replace"),
            )
        writer.write(response)
        await writer.drain()

    def _http_response(self, path: str) -> bytes:
        if path.startswith("/health"):
            body = json.dumps(self._health(), default=str).encode("utf-8")
            return build_http_response("200 OK", "application/json", body)
        if path.startswith("/metrics"):
            text = render_registry(self.engine.metrics)
            rest = path[len("/metrics"):].strip("/")
            if rest:
                tenant = rest.split("/", 1)[0]
                text = filter_page_by_tenant(text, tenant)
            return build_http_response(
                "200 OK", CONTENT_TYPE, text.encode("utf-8")
            )
        return build_http_response(
            "404 Not Found", "text/plain",
            b"routes: /metrics, /metrics/<tenant>, /health",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`close` (CLI mode)."""

        try:
            self._thread.join()
        except KeyboardInterrupt:
            self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

        async def _shut():
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()

        try:
            asyncio.run_coroutine_threadsafe(
                _shut(), self._loop
            ).result(timeout=10.0)
        except Exception:  # noqa: BLE001 - teardown best effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self.engine.shutdown()

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
