"""The shared worker fleet behind the task-graph service.

One engine owns W workers (thread or mp backend) and executes *jobs*:
whole task-graph submissions, each analysed into a private
:class:`~repro.core.sharding.GraphDomain` whose lock stripe is picked
by datum-address hash.  Independent tenants — and independent data
within a tenant — therefore never contend on one tracker lock; only
submissions over colliding stripes serialise their analysis, and the
actual task execution always interleaves freely across the fleet.

Admission control implements the paper's §III blocking conditions as
per-tenant backpressure: where the in-process runtime *blocks* the
main thread on graph-size or renamed-memory limits, a service must
not block one tenant's connection on another tenant's debt — so
over-limit submissions are rejected immediately with a structured,
retryable error (:class:`~repro.serve.errors.GraphRejected`) instead
of growing without bound.

Every counter the engine keeps is labelled by tenant in the ordinary
metrics registry, so the exposition endpoint serves per-tenant pages
with no extra bookkeeping.
"""

from __future__ import annotations

import threading
import traceback
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from types import SimpleNamespace
from typing import Callable, Optional

from ..core.dependencies import TrackerConfig
from ..core.invocation import plan_for, resolve_call_values
from ..core.sharding import DEFAULT_NUM_SHARDS, GraphDomain, ShardSet
from ..obs.metrics import MetricsRegistry
from . import protocol as sp
from .errors import GraphRejected, ServeError

__all__ = ["ServiceLimits", "GraphJob", "ServeEngine"]


@dataclass(frozen=True)
class ServiceLimits:
    """Per-tenant admission-control caps (§III turned into backpressure)."""

    #: Largest accepted graph, in tasks (§III graph-size condition).
    max_graph_tasks: int = 4096
    #: Cap on one tenant's resident submission bytes (§III memory
    #: condition); ``None`` disables the check.
    max_tenant_bytes: Optional[int] = 256 * 1024 * 1024
    #: Graphs one tenant may have queued-or-running at once.
    max_inflight: int = 8

    def to_wire(self) -> dict:
        return {
            "max_graph_tasks": self.max_graph_tasks,
            "max_tenant_bytes": self.max_tenant_bytes,
            "max_inflight": self.max_inflight,
        }


class _TenantState:
    """Admission counters + metric handles for one tenant."""

    __slots__ = (
        "name", "inflight", "bytes_held", "graphs", "rejections",
        "m_submitted", "m_completed", "m_failed", "m_tasks",
        "m_inflight", "m_bytes", "m_seconds",
    )

    def __init__(self, name: str, metrics: MetricsRegistry):
        self.name = name
        self.inflight = 0
        self.bytes_held = 0
        self.graphs = 0
        self.rejections = 0
        self.m_submitted = metrics.counter(
            "serve.graphs_submitted", tenant=name)
        self.m_completed = metrics.counter(
            "serve.graphs_completed", tenant=name)
        self.m_failed = metrics.counter("serve.graphs_failed", tenant=name)
        self.m_tasks = metrics.counter("serve.tasks_executed", tenant=name)
        self.m_inflight = metrics.gauge("serve.inflight_graphs", tenant=name)
        self.m_bytes = metrics.gauge("serve.bytes_held", tenant=name)
        self.m_seconds = metrics.histogram("serve.graph_seconds", tenant=name)


class GraphJob:
    """One accepted submission, from analysis to write-back."""

    __slots__ = (
        "tenant", "domain", "data", "nbytes", "task_count",
        "outstanding", "cancelled", "discard", "finalized",
        "error", "results", "seconds", "done", "_callbacks", "_t0",
    )

    def __init__(self, tenant: _TenantState, domain: GraphDomain,
                 data: dict, nbytes: int, task_count: int):
        self.tenant = tenant
        self.domain = domain
        self.data = data          # datum_id -> server-side object
        self.nbytes = nbytes
        self.task_count = task_count
        self.outstanding = 0      # tasks queued-or-running
        self.cancelled = False
        self.discard = False      # client gone; drop the results
        self.finalized = False
        self.error: Optional[dict] = None
        self.results: Optional[dict] = None
        self.seconds = 0.0
        self.done = threading.Event()
        self._callbacks: list[Callable] = []
        self._t0 = perf_counter()

    def add_done_callback(self, fn: Callable[["GraphJob"], None]) -> None:
        if self.done.is_set():
            fn(self)
        else:
            self._callbacks.append(fn)


class ServeEngine:
    """W workers, one ready queue, S tracker-lock stripes."""

    def __init__(
        self,
        workers: int = 4,
        shards: int = DEFAULT_NUM_SHARDS,
        backend: str = "threads",
        limits: Optional[ServiceLimits] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracker_config: Optional[TrackerConfig] = None,
    ):
        if backend not in ("threads", "processes"):
            raise ValueError(f"unknown backend {backend!r}")
        self.limits = limits or ServiceLimits()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.backend = backend
        self.num_workers = workers
        self.shards = ShardSet(shards)
        self._tracker_config = tracker_config or TrackerConfig()
        self._definitions: dict[tuple, object] = {}
        self._tenants: dict[str, _TenantState] = {}
        self._jobs: set[GraphJob] = set()
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._queue: deque = deque()
        self._stop = False
        self._m_queue_depth = self.metrics.gauge("serve.queue_depth")
        self.metrics.gauge("serve.workers").set(workers)
        self.metrics.gauge("serve.shards").set(shards)
        # ProcessBackend duck-types its owning runtime: it only reads
        # config.trace/trace_buffer_size, tracer, live, and metrics —
        # the engine presents that surface directly.
        self.config = SimpleNamespace(trace=False, trace_buffer_size=64)
        self.tracer = None
        self.live = None
        self._mp = None
        if backend == "processes":
            from ..mp.executor import ProcessBackend

            self._mp = ProcessBackend(self)
            self._mp.start(workers)
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(i,),
                name=f"repro-serve-worker-{i}", daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def tenant(self, name: str) -> _TenantState:
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = _TenantState(name, self.metrics)
                self._tenants[name] = state
            return state

    def tenant_names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def reject(self, tenant_name: str, exc: GraphRejected) -> GraphRejected:
        """Record one shed submission in the tenant's metrics."""

        state = self.tenant(tenant_name)
        with self._lock:
            state.rejections += 1
        self.metrics.counter(
            "serve.graphs_rejected", tenant=tenant_name, reason=exc.code
        ).inc()
        return exc

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_graph(self, tenant_name: str, spec: dict) -> GraphJob:
        """Admit, analyse, and enqueue one graph; returns its job.

        Raises :class:`GraphRejected` (structured, retryable) when the
        tenant is over a cap, :class:`ServeError` on malformed specs.
        """

        tenant = self.tenant(tenant_name)
        task_specs = spec.get("tasks") or []
        data_specs = spec.get("data") or {}
        limits = self.limits

        if len(task_specs) > limits.max_graph_tasks:
            raise self.reject(tenant_name, GraphRejected(
                "graph_too_large",
                f"graph has {len(task_specs)} tasks; tenant cap is "
                f"{limits.max_graph_tasks}",
                tasks=len(task_specs), limit=limits.max_graph_tasks,
            ))

        # Admission sizing happens on the *encoded* payload (cheap b64
        # arithmetic) so an over-budget submission is shed before the
        # server materialises a single byte of it.
        nbytes = sum(
            (len(p.get("b64", "")) * 3) // 4 for p in data_specs.values()
        )
        with self._lock:
            if self._stop:
                raise ServeError("engine is shut down")
            if tenant.inflight >= limits.max_inflight:
                over = GraphRejected(
                    "queue_full",
                    f"tenant {tenant_name!r} already has "
                    f"{tenant.inflight} graphs in flight (cap "
                    f"{limits.max_inflight}); retry after one drains",
                    inflight=tenant.inflight, limit=limits.max_inflight,
                )
            elif (limits.max_tenant_bytes is not None
                    and tenant.bytes_held + nbytes > limits.max_tenant_bytes):
                over = GraphRejected(
                    "memory_limit",
                    f"submission of {nbytes} bytes would put tenant "
                    f"{tenant_name!r} over its {limits.max_tenant_bytes}"
                    f"-byte cap ({tenant.bytes_held} held); retry after "
                    f"in-flight graphs complete",
                    bytes=nbytes, held=tenant.bytes_held,
                    limit=limits.max_tenant_bytes,
                )
            else:
                over = None
                tenant.inflight += 1
                tenant.bytes_held += nbytes
                tenant.graphs += 1
                tenant.m_inflight.set(tenant.inflight)
                tenant.m_bytes.set(tenant.bytes_held)
        if over is not None:
            raise self.reject(tenant_name, over)

        try:
            data = {
                datum_id: sp.decode_datum(payload)
                for datum_id, payload in data_specs.items()
            }
            constants = {
                key: sp.decode_value(value)
                for key, value in (spec.get("constants") or {}).items()
            }
            tasks = [
                self._instantiate(task_spec, data, constants)
                for task_spec in task_specs
            ]
        except Exception:
            with self._lock:
                tenant.inflight -= 1
                tenant.bytes_held -= nbytes
                tenant.m_inflight.set(tenant.inflight)
                tenant.m_bytes.set(tenant.bytes_held)
            raise

        domain = GraphDomain(
            self.shards.shard_for(id(obj) for obj in data.values()),
            tracker_config=self._tracker_config,
        )
        job = GraphJob(tenant, domain, data, nbytes, len(tasks))
        tenant.m_submitted.inc()
        ready = domain.analyze_batch(tasks)
        finalize = False
        with self._cv:
            self._jobs.add(job)
            if not tasks:
                job.finalized = finalize = True
            else:
                job.outstanding = len(ready)
                self._queue.extend((job, task) for task in ready)
                self._m_queue_depth.set(len(self._queue))
                self._cv.notify(len(ready))
        if finalize:
            self._finalize(job)
        return job

    def _instantiate(self, task_spec: dict, data: dict, constants: dict):
        ref = task_spec.get("def")
        if not isinstance(ref, (list, tuple)) or len(ref) != 2:
            raise ServeError(f"malformed task definition ref {ref!r}")
        key = (ref[0], ref[1])
        definition = self._definitions.get(key)
        if definition is None:
            definition = sp.resolve_definition(ref)
            self._definitions[key] = definition
        args = []
        for argspec in task_spec.get("args") or []:
            if "d" in argspec:
                datum_id = argspec["d"]
                if datum_id not in data:
                    raise ServeError(
                        f"task {definition.name!r} references unknown "
                        f"datum {datum_id!r}"
                    )
                args.append(data[datum_id])
            else:
                args.append(sp.decode_value(argspec))
        plan = definition._invocation_plan
        if plan is None:
            plan = plan_for(definition)
        merged = dict(getattr(definition, "constants", None) or {})
        merged.update(constants)
        return plan.instantiate(tuple(args), {}, merged)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker_loop(self, idx: int) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stop:
                    self._cv.wait()
                if self._stop:
                    return
                job, task = self._queue.popleft()
                self._m_queue_depth.set(len(self._queue))
                skip = job.cancelled
            failure: Optional[BaseException] = None
            if not skip:
                if self._mp is not None:
                    try:
                        failure, _duration = self._mp.run(task, idx + 1)
                    except BaseException as exc:  # noqa: BLE001
                        failure = exc
                else:
                    try:
                        values = resolve_call_values(task)
                        task.definition.func(*values)
                    except BaseException as exc:  # noqa: BLE001
                        failure = exc
            self._task_done(job, task, failure=failure, skipped=skip)

    def _task_done(self, job: GraphJob, task, failure, skipped: bool) -> None:
        newly_ready: list = []
        pending = -1
        if failure is not None:
            job.error = job.error or {
                "code": "task_failed",
                "message": (
                    f"task {task.definition.name!r} raised "
                    f"{type(failure).__name__}: {failure}"
                ),
                "task": task.definition.name,
                "traceback": "".join(
                    traceback.format_exception(
                        type(failure), failure, failure.__traceback__
                    )
                ),
            }
        elif not skipped:
            job.tenant.m_tasks.inc()
            newly_ready, pending = job.domain.complete(task)
        finalize = False
        with self._cv:
            if failure is not None or self._stop:
                # A stopping engine has no workers left to run the
                # successors this completion would release.
                job.cancelled = True
            job.outstanding -= 1
            if newly_ready and not job.cancelled:
                job.outstanding += len(newly_ready)
                self._queue.extend((job, t) for t in newly_ready)
                self._m_queue_depth.set(len(self._queue))
                self._cv.notify(len(newly_ready))
            if not job.finalized:
                if job.cancelled:
                    finalize = job.outstanding == 0
                else:
                    finalize = pending == 0
                job.finalized = job.finalized or finalize
        if finalize:
            self._finalize(job)

    def _finalize(self, job: GraphJob) -> None:
        tenant = job.tenant
        if job.error is None and not job.cancelled:
            job.domain.write_back()
            if not job.discard:
                job.results = {
                    datum_id: sp.encode_datum(obj)
                    for datum_id, obj in job.data.items()
                }
            tenant.m_completed.inc()
        else:
            if job.error is None:
                job.error = {
                    "code": "cancelled",
                    "message": "submission abandoned before completion",
                }
            tenant.m_failed.inc()
        job.seconds = perf_counter() - job._t0
        tenant.m_seconds.observe(job.seconds)
        self.shards.release(job.domain.shard)
        with self._lock:
            tenant.inflight -= 1
            tenant.bytes_held -= job.nbytes
            tenant.m_inflight.set(tenant.inflight)
            tenant.m_bytes.set(tenant.bytes_held)
            self._jobs.discard(job)
        job.done.set()
        callbacks, job._callbacks = job._callbacks, []
        for callback in callbacks:
            try:
                callback(job)
            except Exception:  # noqa: BLE001 - observer must not kill worker
                pass

    # ------------------------------------------------------------------
    # cancellation / lifecycle
    # ------------------------------------------------------------------
    def abandon(self, job: GraphJob) -> None:
        """The submitting client is gone: drop the job's results and
        release its tenant accounting without stalling the fleet.

        Tasks already running finish (their effects stay private to
        the job's domain); queued tasks are skipped; the domain — the
        tenant's shard state — is released at finalize as usual.
        """

        finalize = False
        with self._cv:
            job.cancelled = True
            job.discard = True
            if not job.finalized and job.outstanding == 0:
                job.finalized = finalize = True
        if finalize:
            self._finalize(job)

    def shutdown(self) -> None:
        with self._cv:
            self._stop = True
            leftovers = list(self._queue)
            self._queue.clear()
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=10.0)
        if self._mp is not None:
            self._mp.stop()
        # Fail whatever never ran so no waiter hangs on a dead fleet.
        for job, _task in leftovers:
            with self._cv:
                if job.finalized:
                    continue
                job.cancelled = True
                job.error = job.error or {
                    "code": "shutdown",
                    "message": "engine shut down before the graph ran",
                }
                job.finalized = True
            self._finalize(job)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def liveness(self) -> list[dict]:
        """Per-worker liveness for ``/health``.

        Under the process backend this is the mp backend's own per-slot
        view (pid, OS-level alive, respawn generation); under threads
        it reports each worker thread's :meth:`Thread.is_alive`.
        """

        if self._mp is not None:
            return self._mp.liveness()
        return [
            {"slot": i + 1, "alive": thread.is_alive()}
            for i, thread in enumerate(self._threads)
        ]

    def state(self) -> dict:
        with self._lock:
            tenants = {
                name: {
                    "inflight": t.inflight,
                    "bytes_held": t.bytes_held,
                    "graphs": t.graphs,
                    "rejections": t.rejections,
                }
                for name, t in sorted(self._tenants.items())
            }
            queue_depth = len(self._queue)
        return {
            "workers": self.num_workers,
            "backend": self.backend,
            "shards": len(self.shards),
            "queue_depth": queue_depth,
            "limits": self.limits.to_wire(),
            "tenants": tenants,
            "shard_stats": self.shards.stats(),
        }
