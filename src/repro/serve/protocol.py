"""Wire codecs for task-graph submissions.

Rides the same JSON-lines transport as every other repro surface
(:mod:`repro.net`); this module only defines the payload shapes.

A ``run`` command ships one whole graph::

    {"cmd": "run", "seq": N,
     "data":  {datum_id: datum_payload, ...},
     "tasks": [{"def": [module, qualname], "args": [argspec, ...]}, ...]}

and its ack returns every datum's post-barrier bytes::

    {"results": {datum_id: datum_payload, ...},
     "tasks": N, "seconds": s}

Datum payloads are exact: ndarrays ship dtype/shape plus the raw
C-order buffer (base64), so a round trip is bitwise; container types
(list/bytearray/dict) ship pickled.  Task *definitions* are referenced
by module/qualname — the same registration rule as the mp backend —
and resolved server-side to the ``@css_task`` wrapper, whose
``.definition`` carries the full pragma (directions, regions,
priorities) the server's dependency analysis needs.  Scalar arguments
whose JSON rendering round-trips exactly (int/float/bool/str/None) go
inline; every other by-value type (tuple, complex, numpy scalars, ...)
ships pickled.
"""

from __future__ import annotations

import base64
import importlib
import pickle
from typing import Any

import numpy as np

from .errors import ServeError

__all__ = [
    "SERVE_PROTOCOL_VERSION",
    "encode_datum",
    "decode_datum",
    "write_back_into",
    "encode_value",
    "decode_value",
    "datum_nbytes",
    "definition_ref",
    "resolve_definition",
    "is_datum",
]

SERVE_PROTOCOL_VERSION = 1

#: Tracked (shipped-by-reference) container types the session can
#: write results back into in place.  Mirrors the tracker's by-value
#: scalar set from the other side: anything the tracker would track
#: must be one of these to cross the wire.
_DATUM_TYPES = (np.ndarray, list, bytearray, dict)

#: Scalars whose JSON rendering round-trips exactly.
_JSON_EXACT = (bool, int, float, str, type(None))


def is_datum(value: Any) -> bool:
    """Would the dependency tracker track *value* (ship by reference)?"""

    from ..core.dependencies import _SCALAR_TYPES

    return not isinstance(value, _SCALAR_TYPES)


def _b64(raw: bytes) -> str:
    return base64.b64encode(raw).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def encode_datum(obj: Any) -> dict:
    """Exact payload for one tracked datum."""

    if isinstance(obj, np.ndarray):
        return {
            "k": "nd",
            "dtype": obj.dtype.str,
            "shape": list(obj.shape),
            "b64": _b64(obj.tobytes(order="C")),
        }
    if isinstance(obj, (list, bytearray, dict)):
        return {"k": "py", "b64": _b64(pickle.dumps(obj, protocol=4))}
    raise ServeError(
        f"cannot ship tracked datum of type {type(obj).__name__}: the "
        f"serve surface supports ndarray, list, bytearray, and dict "
        f"(results must be writable back in place)"
    )


def decode_datum(payload: dict) -> Any:
    kind = payload.get("k")
    if kind == "nd":
        raw = _unb64(payload["b64"])
        arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        # frombuffer returns a read-only view over the decoded bytes;
        # tasks write into their arrays, so materialise a private copy.
        return arr.reshape(payload["shape"]).copy()
    if kind == "py":
        return pickle.loads(_unb64(payload["b64"]))
    raise ServeError(f"unknown datum payload kind {kind!r}")


def write_back_into(target: Any, payload: dict) -> None:
    """Apply a result payload into the client's original object."""

    value = decode_datum(payload)
    if isinstance(target, np.ndarray):
        target[...] = value
    elif isinstance(target, (list, bytearray)):
        target[:] = value
    elif isinstance(target, dict):
        target.clear()
        target.update(value)
    else:
        raise ServeError(
            f"cannot write result back into {type(target).__name__}"
        )


def datum_nbytes(obj: Any) -> int:
    """Admission-control size estimate for one datum."""

    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, bytearray):
        return len(obj)
    try:
        return len(pickle.dumps(obj, protocol=4))
    except Exception:  # noqa: BLE001 - sizing only; shipping will re-raise
        return 0


def encode_value(value: Any) -> dict:
    """Argspec for one by-value argument."""

    if isinstance(value, _JSON_EXACT):
        # Python's json renders floats with repr (and accepts the
        # NaN/Infinity extensions), so the round trip is exact.
        return {"v": value}
    try:
        return {"p": _b64(pickle.dumps(value, protocol=4))}
    except Exception as exc:  # noqa: BLE001 - reported to the caller
        raise ServeError(
            f"argument of type {type(value).__name__} is not "
            f"serialisable: {exc}"
        ) from exc


def decode_value(spec: dict) -> Any:
    if "v" in spec:
        return spec["v"]
    if "p" in spec:
        return pickle.loads(_unb64(spec["p"]))
    raise ServeError(f"unknown value spec {spec!r}")


def definition_ref(definition) -> list:
    """``[module, qualname]`` for a task importable on the server.

    Same registration rule as the mp backend: the ``@css_task`` must
    live at module scope under its own name, so both sides resolve the
    identical pragma.
    """

    func = definition.func
    module = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", "")
    if not module or "<locals>" in qualname:
        raise ServeError(
            f"task {definition.name!r} is not addressable by "
            f"module/qualname (defined inside a function?); served "
            f"execution requires module-level @css_task definitions"
        )
    return [module, qualname]


def resolve_definition(ref) -> Any:
    """Resolve ``[module, qualname]`` to the full TaskDefinition."""

    module_name, qualname = ref
    try:
        obj: Any = importlib.import_module(module_name)
    except ImportError as exc:
        raise ServeError(
            f"cannot import task module {module_name!r}: {exc}"
        ) from exc
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError as exc:
            raise ServeError(
                f"cannot resolve task {module_name}.{qualname}: {exc}"
            ) from exc
    definition = getattr(obj, "definition", None)
    if definition is None:
        raise ServeError(
            f"{module_name}.{qualname} is not a @css_task (no "
            f".definition attribute)"
        )
    return definition
