"""``repro.serve`` — the task-graph service.

A long-running daemon owns ONE worker fleet (thread or process
backend) and serves task-graph submissions from many concurrent
client sessions.  The programming model is unchanged: a driver swaps
``SmpssRuntime(...)`` for :func:`connect` and every ``@css_task``
call, ``barrier()`` and ``wait_on()`` inside the block is executed by
the service, with results written back bitwise-identically.

Layout:

* :mod:`~repro.serve.daemon` — the asyncio front door (sessions,
  ``/metrics``, ``/metrics/<tenant>``, ``/health`` over one port);
* :mod:`~repro.serve.engine` — the shared fleet: sharded dependency
  tracking (one lock per shard, tenants on different shards never
  contend) and per-tenant admission control (graph-size, memory,
  in-flight caps → 429-style :class:`GraphRejected`);
* :mod:`~repro.serve.session` — the client: deferred-batch submission
  over the JSON-lines wire;
* :mod:`~repro.serve.protocol` — datum/value/task encodings;
* :mod:`~repro.serve.errors` — the structured error taxonomy.

Run a daemon with ``python -m repro serve tcp:127.0.0.1:7070`` and see
``docs/service.md`` for the full tour.
"""

from .daemon import ServeDaemon
from .engine import ServeEngine, ServiceLimits
from .errors import GraphRejected, RemoteGraphError, ServeError
from .session import ServeSession, connect

__all__ = [
    "GraphRejected",
    "RemoteGraphError",
    "ServeDaemon",
    "ServeEngine",
    "ServeError",
    "ServeSession",
    "ServiceLimits",
    "connect",
]
