"""Robust statistics for repeated benchmark runs.

Single benchmark runs are too noisy to gate a PR on; ``repro.bench
--repeat N`` runs each figure N times and aggregates with the median
(robust to one slow outlier run) plus the inter-quartile range as the
spread estimate.  The IQR is what ``repro.bench compare`` feeds its
noise-aware thresholds: a delta only counts as a regression when it
exceeds both the floor threshold and a multiple of the combined spread.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "median",
    "quantile",
    "iqr",
    "aggregate_figures",
    "noise_threshold",
]


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (numpy's default), pure python."""

    if not values:
        raise ValueError("quantile of empty sequence")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def median(values: Sequence[float]) -> float:
    return quantile(values, 0.5)


def iqr(values: Sequence[float]) -> float:
    """Inter-quartile range; 0.0 for fewer than two samples."""

    if len(values) < 2:
        return 0.0
    return quantile(values, 0.75) - quantile(values, 0.25)


def aggregate_figures(figures: Sequence) -> "FigureResult":
    """Collapse repeated runs of one figure into a median figure.

    All inputs must share axes and series labels (they are repeats of
    the same experiment).  The result's series hold per-point medians;
    ``spread`` holds the per-point IQR for each series — the noise
    estimate ``compare`` reads.  Notes/extras/provenance come from the
    first repeat.
    """

    from .harness import FigureResult

    if not figures:
        raise ValueError("aggregate_figures needs at least one figure")
    first = figures[0]
    for other in figures[1:]:
        if list(other.x) != list(first.x):
            raise ValueError(
                f"repeat of {first.figure_id} has mismatched x axis"
            )
        if [s.label for s in other.series] != [s.label for s in first.series]:
            raise ValueError(
                f"repeat of {first.figure_id} has mismatched series"
            )
    agg = FigureResult(
        first.figure_id,
        first.title,
        first.xlabel,
        first.ylabel,
        list(first.x),
        notes=list(first.notes),
        extras=dict(first.extras),
        provenance=dict(first.provenance),
    )
    for si, series in enumerate(first.series):
        columns = [
            [fig.series[si].values[xi] for fig in figures]
            for xi in range(len(first.x))
        ]
        agg.add(series.label, [median(col) for col in columns])
        agg.spread[series.label] = [iqr(col) for col in columns]
    return agg


def noise_threshold(
    baseline: float,
    spread_baseline: float,
    spread_current: float,
    min_rel: float = 0.05,
    noise_k: float = 3.0,
) -> float:
    """Relative change below which a delta is considered noise.

    ``max(min_rel, noise_k * (IQR_baseline + IQR_current) / |baseline|)``
    — a floor for deterministic (simulated) figures whose IQR is zero,
    widened by the observed run-to-run spread when there is any.
    """

    if baseline == 0:
        return float("inf")
    noise = noise_k * (spread_baseline + spread_current) / abs(baseline)
    return max(min_rel, noise)
