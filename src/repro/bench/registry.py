"""The figure registry: which figures exist and how to run them.

``repro.bench`` (the CLI) and ``repro.bench.compare`` (the baseline
gate) both need the same three facts about a figure: the experiment
function that produces it, the reduced quick-mode parameters, and the
canonical baseline filename.  They live here so the compare path never
has to import the CLI module.
"""

from __future__ import annotations

import inspect

from . import experiments as _experiments
from .provenance import collect_provenance
from .stats import aggregate_figures

__all__ = [
    "FIGURES",
    "QUICK_PARAMS",
    "baseline_filename",
    "figure_key_for_baseline",
    "run_figure_once",
    "run_figure_repeated",
]

#: figure key -> experiment function name in :mod:`repro.bench.experiments`.
FIGURES = {
    "fig08": "fig08_cholesky_blocksize",
    "fig11": "fig11_cholesky_scaling",
    "fig12": "fig12_matmul_scaling",
    "fig13": "fig13_strassen_scaling",
    "fig14": "fig14_multisort",
    "fig15": "fig15_nqueens",
    "fig16": "fig16_nqueens_scalability",
    "micro": "micro_submission_throughput",
    "backend": "backend_scaling",
    "service": "service_throughput",
    "dist": "dist_throughput",
}

#: Reduced-scale parameters for ``--quick`` (laptop/CI smoke runs).
QUICK_PARAMS = {
    "fig08": dict(n=1024, block_sizes=(32, 64, 128, 256), cores=8),
    "fig11": dict(n=2048, m=256, threads=(1, 2, 4, 8)),
    "fig12": dict(n=2048, m=512, threads=(1, 2, 4, 8)),
    "fig13": dict(n=2048, m=512, threads=(1, 2, 4, 8)),
    "fig14": dict(n=1 << 18, quicksize=1 << 13, threads=(1, 2, 4, 8)),
    "fig15": dict(n=9, threads=(1, 2, 4, 8)),
    "fig16": dict(n=9, threads=(1, 2, 4, 8)),
    "micro": dict(tasks=1500, inner_repeats=2),
    "backend": dict(n=64, block=32, workers=(1, 2, 4)),
    "service": dict(
        clients=(1, 2), graphs_per_client=5, tasks_per_graph=4, n=24
    ),
    "dist": dict(submissions=3, tiles=4, n=48, nodes=2, slots=2),
}


def baseline_filename(key: str) -> str:
    """``fig11`` -> ``BENCH_fig11_cholesky_scaling.json``."""

    return f"BENCH_{FIGURES[key]}.json"


def figure_key_for_baseline(filename: str) -> str | None:
    """Inverse of :func:`baseline_filename`; None for foreign files."""

    name = filename.rsplit("/", 1)[-1]
    if not (name.startswith("BENCH_") and name.endswith(".json")):
        return None
    stem = name[len("BENCH_"):-len(".json")]
    for key, func_name in FIGURES.items():
        if func_name == stem:
            return key
    return None


def run_figure_once(key: str, quick: bool = False, seed: int | None = None):
    """Run one figure's experiment function and return its FigureResult.

    *seed* is forwarded only to experiment functions that declare a
    ``seed`` parameter (the input-data-dependent figures); the purely
    structural simulations ignore it.
    """

    func = getattr(_experiments, FIGURES[key])
    params = dict(QUICK_PARAMS[key]) if quick else {}
    if seed is not None:
        try:
            accepts_seed = "seed" in inspect.signature(func).parameters
        except (TypeError, ValueError):
            accepts_seed = False
        if accepts_seed:
            params["seed"] = seed
    return func(**params)


def run_figure_repeated(
    key: str,
    quick: bool = False,
    repeats: int = 1,
    seed: int | None = None,
):
    """Run a figure ``repeats`` times, aggregate, stamp provenance.

    The result's series hold per-point medians across the repeats and
    ``spread`` holds the per-point IQR (zero for the deterministic
    simulated figures); ``provenance`` records where the numbers came
    from so the figure is committable as a baseline.
    """

    repeats = max(int(repeats), 1)
    runs = [run_figure_once(key, quick=quick, seed=seed) for _ in range(repeats)]
    fig = aggregate_figures(runs) if len(runs) > 1 else runs[0]
    fig.provenance = collect_provenance(
        repeats=repeats,
        scale="quick" if quick else "paper",
        seed=seed,
        figure=key,
    )
    return fig
