"""Regenerate the paper's figures from the command line.

Usage::

    python -m repro.bench list
    python -m repro.bench fig11
    python -m repro.bench fig14 --quick --chart
    python -m repro.bench all --quick
    python -m repro.bench fig11 --quick --repeat 5 --save out/
    python -m repro.bench compare --baseline benchmarks/baselines --quick

``--repeat N`` runs each figure N times and reports per-point medians
(IQR kept as the spread estimate); ``--save`` stamps a provenance
block (git sha, host, versions, repeat count) into the JSON so the
file is committable as a baseline.  ``compare`` is the CI gate: it
re-runs every figure with a committed baseline and exits non-zero when
a point regresses beyond the noise-aware threshold.  See
``docs/benchmarking.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..obs.metrics import reset_default_metrics
from . import experiments as E
from .registry import FIGURES, QUICK_PARAMS, run_figure_repeated

# Back-compat aliases (pre-registry spelling used by older callers).
_FIGURES = FIGURES
_QUICK_PARAMS = QUICK_PARAMS


def _run_figure(
    key: str,
    quick: bool,
    chart: bool,
    save: str | None = None,
    repeats: int = 1,
    seed: int | None = None,
) -> None:
    # Fresh process-default registry per figure: every runtime the
    # figure spins up publishes its metrics there at shutdown, and the
    # accumulated snapshot lands next to the figure's data files.
    registry = reset_default_metrics()
    start = time.perf_counter()
    fig = run_figure_repeated(key, quick=quick, repeats=repeats, seed=seed)
    elapsed = time.perf_counter() - start
    print(fig.table())
    if chart:
        print()
        print(fig.ascii_chart())
    if save:
        import os

        os.makedirs(save, exist_ok=True)
        path = os.path.join(save, f"{key}.csv")
        fig.save(path)
        fig.save(os.path.join(save, f"{key}.json"))
        metrics_path = os.path.join(save, f"{key}.metrics.json")
        with open(metrics_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "figure": key,
                    "elapsed_seconds": elapsed,
                    "provenance": fig.provenance,
                    "extras": fig.extras,
                    "metrics": registry.snapshot(),
                },
                handle,
                indent=2,
                default=str,
            )
        print(f"  saved {path} / .json / .metrics.json")
    suffix = f", {repeats} repeats" if repeats > 1 else ""
    print(f"  [{elapsed:.1f}s{suffix}]")
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate figures from the SMPSs paper's evaluation.",
    )
    parser.add_argument(
        "target",
        help="figure id (fig08..fig16), 'fig05', 'counts', 'all', "
             "'compare', or 'list'",
    )
    parser.add_argument("--quick", action="store_true", help="reduced scale")
    parser.add_argument("--chart", action="store_true", help="ASCII charts too")
    parser.add_argument("--save", metavar="DIR", help="write CSV/JSON files here")
    parser.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="run each figure N times; report per-point medians with IQR "
             "spread (default 1, or 3 for 'compare')",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed for input-data-dependent figures (recorded in provenance)",
    )
    # compare-only options
    parser.add_argument(
        "--baseline", metavar="DIR",
        help="(compare) directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--figures", metavar="KEYS",
        help="(compare) comma-separated figure keys, default: all baselines",
    )
    parser.add_argument(
        "--min-rel", type=float, default=0.05, metavar="FRAC",
        help="(compare) floor relative threshold (default 0.05)",
    )
    parser.add_argument(
        "--noise-k", type=float, default=3.0, metavar="K",
        help="(compare) IQR multiple added to the threshold (default 3.0)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="(compare) rewrite the baselines from this run instead of gating",
    )
    args = parser.parse_args(argv)

    if args.repeat is not None and args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    repeats = args.repeat or 1

    if args.target == "list":
        print("available: fig05, " + ", ".join(FIGURES)
              + ", counts, all, compare")
        return 0
    if args.target == "compare":
        if not args.baseline:
            print("compare needs --baseline DIR", file=sys.stderr)
            return 2
        from .compare import compare_against_baselines

        return compare_against_baselines(
            args.baseline,
            quick=args.quick,
            repeats=args.repeat or 3,
            seed=args.seed if args.seed is not None else 0,
            min_rel=args.min_rel,
            noise_k=args.noise_k,
            figures=args.figures.split(",") if args.figures else None,
            update=args.update,
        )
    if args.target == "fig05":
        facts = E.fig05_cholesky_graph()
        print(f"Figure 5: {facts['total_tasks']} tasks, {facts['edges']} edges, "
              f"critical path {facts['critical_path']}")
        print(f"  task 51 unlocked by {facts['witness']['task_51_unlocked_by']}")
        return 0
    if args.target == "counts":
        for key, value in E.text_task_counts().items():
            print(f"  {key}: {value}")
        return 0
    if args.target == "all":
        for key in FIGURES:
            _run_figure(key, args.quick, args.chart, args.save,
                        repeats, args.seed)
        return 0
    if args.target in FIGURES:
        _run_figure(args.target, args.quick, args.chart, args.save,
                    repeats, args.seed)
        return 0
    print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
    return 1


if __name__ == "__main__":
    from repro.__main__ import deprecation_note

    deprecation_note("repro.bench", "bench")
    raise SystemExit(main())
