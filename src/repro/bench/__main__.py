"""Regenerate the paper's figures from the command line.

Usage::

    python -m repro.bench list
    python -m repro.bench fig11
    python -m repro.bench fig14 --quick --chart
    python -m repro.bench all --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..obs.metrics import reset_default_metrics
from . import experiments as E

_FIGURES = {
    "fig08": "fig08_cholesky_blocksize",
    "fig11": "fig11_cholesky_scaling",
    "fig12": "fig12_matmul_scaling",
    "fig13": "fig13_strassen_scaling",
    "fig14": "fig14_multisort",
    "fig15": "fig15_nqueens",
    "fig16": "fig16_nqueens_scalability",
}

_QUICK_PARAMS = {
    "fig08": dict(n=1024, block_sizes=(32, 64, 128, 256), cores=8),
    "fig11": dict(n=2048, m=256, threads=(1, 2, 4, 8)),
    "fig12": dict(n=2048, m=512, threads=(1, 2, 4, 8)),
    "fig13": dict(n=2048, m=512, threads=(1, 2, 4, 8)),
    "fig14": dict(n=1 << 18, quicksize=1 << 13, threads=(1, 2, 4, 8)),
    "fig15": dict(n=9, threads=(1, 2, 4, 8)),
    "fig16": dict(n=9, threads=(1, 2, 4, 8)),
}


def _run_figure(key: str, quick: bool, chart: bool, save: str | None = None) -> None:
    func = getattr(E, _FIGURES[key])
    params = _QUICK_PARAMS[key] if quick else {}
    # Fresh process-default registry per figure: every runtime the
    # figure spins up publishes its metrics there at shutdown, and the
    # accumulated snapshot lands next to the figure's data files.
    registry = reset_default_metrics()
    start = time.perf_counter()
    fig = func(**params)
    elapsed = time.perf_counter() - start
    print(fig.table())
    if chart:
        print()
        print(fig.ascii_chart())
    if save:
        import os

        os.makedirs(save, exist_ok=True)
        path = os.path.join(save, f"{key}.csv")
        fig.save(path)
        fig.save(os.path.join(save, f"{key}.json"))
        metrics_path = os.path.join(save, f"{key}.metrics.json")
        with open(metrics_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "figure": key,
                    "elapsed_seconds": elapsed,
                    "extras": fig.extras,
                    "metrics": registry.snapshot(),
                },
                handle,
                indent=2,
                default=str,
            )
        print(f"  saved {path} / .json / .metrics.json")
    print(f"  [{elapsed:.1f}s]")
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate figures from the SMPSs paper's evaluation.",
    )
    parser.add_argument(
        "target",
        help="figure id (fig08..fig16), 'fig05', 'counts', 'all', or 'list'",
    )
    parser.add_argument("--quick", action="store_true", help="reduced scale")
    parser.add_argument("--chart", action="store_true", help="ASCII charts too")
    parser.add_argument("--save", metavar="DIR", help="write CSV/JSON files here")
    args = parser.parse_args(argv)

    if args.target == "list":
        print("available: fig05, " + ", ".join(_FIGURES) + ", counts, all")
        return 0
    if args.target == "fig05":
        facts = E.fig05_cholesky_graph()
        print(f"Figure 5: {facts['total_tasks']} tasks, {facts['edges']} edges, "
              f"critical path {facts['critical_path']}")
        print(f"  task 51 unlocked by {facts['witness']['task_51_unlocked_by']}")
        return 0
    if args.target == "counts":
        for key, value in E.text_task_counts().items():
            print(f"  {key}: {value}")
        return 0
    if args.target == "all":
        _run_figure_all(args.quick, args.chart, args.save)
        return 0
    if args.target in _FIGURES:
        _run_figure(args.target, args.quick, args.chart, args.save)
        return 0
    print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
    return 1


def _run_figure_all(quick: bool, chart: bool, save: str | None = None) -> None:
    for key in _FIGURES:
        _run_figure(key, quick, chart, save)


if __name__ == "__main__":
    raise SystemExit(main())
