"""The continuous-benchmarking gate: current run vs committed baseline.

A baseline is a ``BENCH_<figure>.json`` file (a ``FigureResult``
document with provenance and per-point IQR spread) committed under
``benchmarks/baselines/``.  ``repro.bench compare --baseline <dir>``
re-runs every figure that has a baseline file, compares medians
point-by-point with a noise-aware threshold
(:func:`repro.bench.stats.noise_threshold`), and exits non-zero when
any point regresses beyond it.  Improvements never fail the gate; they
are listed so a PR that speeds something up can say so with numbers.

Direction matters: most figures plot Gflops or speedup (higher is
better), but a time-like ylabel flips the comparison.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .harness import FigureResult
from .registry import (
    FIGURES,
    baseline_filename,
    figure_key_for_baseline,
    run_figure_repeated,
)
from .stats import noise_threshold

__all__ = [
    "PointComparison",
    "FigureComparison",
    "lower_is_better",
    "compare_figures",
    "render_comparison",
    "load_baselines",
    "compare_against_baselines",
]

#: ylabel fragments that mean "smaller numbers are better".
_TIME_LIKE = ("time", "seconds", "second", "latency", "overhead", "(s)")


def lower_is_better(fig: FigureResult) -> bool:
    label = fig.ylabel.lower()
    return any(fragment in label for fragment in _TIME_LIKE)


@dataclass
class PointComparison:
    """One (series, x) point of a baseline-vs-current comparison."""

    series: str
    x: object
    baseline: float
    current: float
    #: relative change, signed so that positive always means *worse*
    rel_worse: float
    #: noise-aware relative threshold for this point
    threshold: float

    @property
    def regressed(self) -> bool:
        return self.rel_worse > self.threshold

    @property
    def improved(self) -> bool:
        return -self.rel_worse > self.threshold


@dataclass
class FigureComparison:
    """All point comparisons of one figure, plus bookkeeping."""

    key: str
    baseline: FigureResult
    current: FigureResult
    points: list[PointComparison]
    #: series/x present on only one side (schema drift, not a gate fail)
    skipped: list[str]

    @property
    def regressions(self) -> list[PointComparison]:
        return [p for p in self.points if p.regressed]

    @property
    def improvements(self) -> list[PointComparison]:
        return [p for p in self.points if p.improved]


def compare_figures(
    key: str,
    baseline: FigureResult,
    current: FigureResult,
    min_rel: float = 0.05,
    noise_k: float = 3.0,
) -> FigureComparison:
    """Point-by-point comparison of two figures with noise thresholds."""

    sign = 1.0 if lower_is_better(baseline) else -1.0
    x_base = list(baseline.x)
    x_cur = list(current.x)
    points: list[PointComparison] = []
    skipped: list[str] = []
    cur_by_label = {s.label: s for s in current.series}
    for series in baseline.series:
        cur = cur_by_label.get(series.label)
        if cur is None:
            skipped.append(f"series {series.label!r} missing from current run")
            continue
        spread_base = baseline.spread.get(series.label, [0.0] * len(x_base))
        spread_cur = current.spread.get(series.label, [0.0] * len(x_cur))
        for bi, x in enumerate(x_base):
            if x not in x_cur:
                skipped.append(f"{series.label} @ {x}: no current point")
                continue
            ci = x_cur.index(x)
            base_v, cur_v = series.values[bi], cur.values[ci]
            if base_v == 0:
                skipped.append(f"{series.label} @ {x}: zero baseline")
                continue
            rel_worse = sign * (cur_v - base_v) / abs(base_v)
            points.append(
                PointComparison(
                    series.label,
                    x,
                    base_v,
                    cur_v,
                    rel_worse,
                    noise_threshold(
                        base_v,
                        spread_base[bi] if bi < len(spread_base) else 0.0,
                        spread_cur[ci] if ci < len(spread_cur) else 0.0,
                        min_rel=min_rel,
                        noise_k=noise_k,
                    ),
                )
            )
    for series in current.series:
        if not any(s.label == series.label for s in baseline.series):
            skipped.append(f"series {series.label!r} new in current run")
    return FigureComparison(key, baseline, current, points, skipped)


def render_comparison(cmp: FigureComparison) -> str:
    """Text report for one figure's comparison."""

    prov = cmp.baseline.provenance
    lines = [f"== {cmp.key}: {cmp.baseline.title} =="]
    if prov:
        lines.append(
            "  baseline: "
            f"sha {str(prov.get('git_sha'))[:12]}  "
            f"host {prov.get('hostname')}  "
            f"python {prov.get('python')}  "
            f"repeats {prov.get('repeats')}  "
            f"scale {prov.get('scale')}  "
            f"recorded {prov.get('timestamp_iso')}"
        )
    direction = "lower is better" if lower_is_better(cmp.baseline) else "higher is better"
    lines.append(f"  ({cmp.baseline.ylabel}; {direction})")
    for p in sorted(cmp.points, key=lambda p: -p.rel_worse):
        if p.regressed:
            verdict = "REGRESSED"
        elif p.improved:
            verdict = "improved"
        else:
            verdict = "ok"
        delta_pct = (p.current - p.baseline) / abs(p.baseline) * 100.0
        lines.append(
            f"  {verdict:9s} {p.series:28s} @ {str(p.x):>6s}: "
            f"{p.baseline:10.3f} -> {p.current:<10.3f} "
            f"({delta_pct:+.1f}%, threshold {p.threshold * 100:.1f}%)"
        )
    for note in cmp.skipped:
        lines.append(f"  skipped: {note}")
    n_reg, n_imp = len(cmp.regressions), len(cmp.improvements)
    lines.append(
        f"  {len(cmp.points)} points: {n_reg} regressed, "
        f"{n_imp} improved, {len(cmp.points) - n_reg - n_imp} within noise"
    )
    return "\n".join(lines)


def load_baselines(baseline_dir: str) -> dict[str, tuple[str, FigureResult]]:
    """Figure key -> (path, FigureResult) for every baseline file."""

    out: dict[str, tuple[str, FigureResult]] = {}
    if not os.path.isdir(baseline_dir):
        return out
    for name in sorted(os.listdir(baseline_dir)):
        key = figure_key_for_baseline(name)
        if key is None:
            continue
        path = os.path.join(baseline_dir, name)
        out[key] = (path, FigureResult.load(path))
    return out


def compare_against_baselines(
    baseline_dir: str,
    quick: bool = True,
    repeats: int = 3,
    seed: int | None = 0,
    min_rel: float = 0.05,
    noise_k: float = 3.0,
    figures: list[str] | None = None,
    update: bool = False,
    echo=print,
) -> int:
    """Run the gate; returns the process exit code.

    Without ``figures``, every figure with a baseline file in
    *baseline_dir* is gated.  With ``update=True`` the (re)run figures
    are written back as the new baselines instead of being gated —
    that is how the first baselines get recorded.
    """

    baselines = load_baselines(baseline_dir)
    keys = figures if figures else sorted(baselines)
    if not keys:
        echo(f"no BENCH_*.json baselines in {baseline_dir!r} "
             "(record some with --update --figures fig11,fig12)")
        return 1
    unknown = [k for k in keys if k not in FIGURES]
    if unknown:
        echo(f"unknown figure keys: {', '.join(unknown)}")
        return 2

    failed = False
    for key in keys:
        current = run_figure_repeated(key, quick=quick, repeats=repeats, seed=seed)
        if update:
            os.makedirs(baseline_dir, exist_ok=True)
            path = os.path.join(baseline_dir, baseline_filename(key))
            current.save(path)
            echo(f"recorded baseline {path} "
                 f"(repeats={repeats}, scale={'quick' if quick else 'paper'})")
            continue
        if key not in baselines:
            echo(f"{key}: no baseline file in {baseline_dir!r}; skipping")
            failed = True
            continue
        path, baseline = baselines[key]
        base_scale = baseline.provenance.get("scale")
        cur_scale = "quick" if quick else "paper"
        if base_scale and base_scale != cur_scale:
            echo(f"WARNING: {key} baseline recorded at scale "
                 f"{base_scale!r} but comparing at {cur_scale!r}")
        cmp = compare_figures(
            key, baseline, current, min_rel=min_rel, noise_k=noise_k
        )
        echo(render_comparison(cmp))
        echo("")
        if cmp.regressions:
            failed = True
    return 1 if failed else 0
