"""Run provenance: the self-description block stored with benchmark data.

A committed baseline is only trustworthy if it says where it came from.
Every ``FigureResult`` saved by ``repro.bench`` (and every
``*.metrics.json`` next to it) carries a provenance block: schema
version, git commit, host, interpreter and numpy versions, timestamp,
repeat count and scale.  ``repro.bench compare`` prints the baseline's
provenance so a CI failure names the commit it is being judged against.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time

__all__ = ["SCHEMA_VERSION", "collect_provenance", "git_revision"]

#: Bump when the saved-figure JSON layout changes incompatibly.
SCHEMA_VERSION = "repro.bench/1"


def git_revision(cwd: str | None = None) -> str | None:
    """The current commit sha, or None outside a git checkout."""

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _numpy_version() -> str | None:
    try:
        import numpy

        return numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep today
        return None


def collect_provenance(
    repeats: int = 1,
    scale: str = "paper",
    seed: int | None = None,
    **extra,
) -> dict:
    """Assemble the provenance dict for one benchmark run.

    Every value is JSON-safe.  *extra* keys (figure name, parameter
    overrides, ...) are merged in verbatim.
    """

    now = time.time()
    prov = {
        "schema": SCHEMA_VERSION,
        "git_sha": git_revision(),
        "hostname": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": _numpy_version(),
        "timestamp": now,
        "timestamp_iso": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)
        ),
        "repeats": int(repeats),
        "scale": scale,
    }
    if seed is not None:
        prov["seed"] = int(seed)
    prov.update(extra)
    return prov
