"""One entry point per figure of the paper's evaluation (section VI).

Defaults reproduce the paper's parameters where computationally
feasible on a laptop-class machine; Figure 8 defaults to a 4096x4096
matrix — the size the paper's own quoted task counts (374,272 at 32x32
blocks; 49,920 at 64x64) correspond to — with the full 8192 reachable
via ``n=8192``.  See EXPERIMENTS.md for paper-vs-measured notes.
"""

from __future__ import annotations

import time

import numpy as np

from ..apps import cholesky, matmul, multisort, nqueens, strassen
from ..blas.hypermatrix import HyperMatrix
from ..core import SmpssRuntime, barrier, css_task
from ..core.recorder import record_program
from ..sim import (
    ALTIX_32,
    CostModel,
    MachineConfig,
    forkjoin_cholesky_time,
    forkjoin_matmul_time,
    run_static,
    simulate_program,
)
from ..sim.baselines import (
    build_multisort_dag,
    build_nqueens_dag,
    queens_node_cost_for_granularity,
    scheduler_for_model,
    sequential_nqueens_time,
)
from .harness import FigureResult

__all__ = [
    "fig05_cholesky_graph",
    "fig08_cholesky_blocksize",
    "fig11_cholesky_scaling",
    "fig12_matmul_scaling",
    "fig13_strassen_scaling",
    "fig14_multisort",
    "fig15_nqueens",
    "fig16_nqueens_scalability",
    "backend_scaling",
    "micro_submission_throughput",
    "text_task_counts",
    "THREAD_SWEEP",
]

#: The x ticks of Figures 11-16.
THREAD_SWEEP = (1, 2, 4, 8, 12, 16, 24, 32)


def _sym_hyper(n_blocks: int) -> HyperMatrix:
    """A hyper-matrix of 1x1 placeholder blocks (simulation only)."""

    hm = HyperMatrix(n_blocks, 1, np.float32)
    for i in range(n_blocks):
        for j in range(n_blocks):
            hm[i, j] = np.zeros((1, 1), np.float32)
    return hm


# ---------------------------------------------------------------------------
# Figure 5 — the 6x6 Cholesky task graph
# ---------------------------------------------------------------------------

def fig05_cholesky_graph(n_blocks: int = 6) -> dict:
    """Reproduce the Figure 5 DAG and its headline properties.

    Returns counts, the early-parallelism witness ("after running tasks
    1 and 6, the runtime is able to start executing task 51"), and the
    GraphViz text.
    """

    hm = _sym_hyper(n_blocks)
    prog = record_program(cholesky.cholesky_hyper, hm, execute="skip")
    graph = prog.graph
    expected = cholesky.hyper_task_count(n_blocks)

    witness = {}
    if n_blocks == 6:
        t51 = graph.get(51)
        preds = sorted(p.task_id for p in t51.predecessors)
        # Task 51's only predecessor is task 6, which itself depends on
        # task 1 — so tasks {1, 6} suffice to unlock it.
        transitive = set(preds)
        for p in list(t51.predecessors):
            transitive.update(q.task_id for q in p.predecessors)
        witness = {
            "task_51_name": t51.name,
            "task_51_direct_preds": preds,
            "task_51_unlocked_by": sorted(transitive | set(preds)),
        }

    return {
        "total_tasks": prog.task_count,
        "expected_total": expected["total"],
        "tasks_by_name": dict(graph.stats.tasks_by_name),
        "expected_by_name": {k: v for k, v in expected.items() if k != "total"},
        "edges": graph.stats.total_edges,
        "critical_path": graph.critical_path_length(),
        "witness": witness,
        "dot": graph.to_dot(),
    }


# ---------------------------------------------------------------------------
# Figure 8 — Cholesky Gflops vs block size
# ---------------------------------------------------------------------------

def fig08_cholesky_blocksize(
    n: int = 4096,
    block_sizes=(32, 64, 128, 256, 512, 1024),
    cores: int = 32,
    libraries=("goto", "mkl"),
) -> FigureResult:
    machine = ALTIX_32.with_cores(cores)
    fig = FigureResult(
        "Figure 8",
        f"Cholesky on {cores} cores, {n}x{n} single floats, varying block size",
        "block",
        "Gflops",
        list(block_sizes),
    )
    algorithmic_flops = n ** 3 / 3
    for library in libraries:
        values = []
        for m in block_sizes:
            res = _simulate_cholesky_flat(n, m, machine, library)
            values.append(res.gflops(algorithmic_flops))
            fig.extras[(library, m)] = {
                "tasks": res.tasks_executed,
                "utilisation": round(res.utilisation, 3),
            }
        fig.add(f"SMPSs + {library.capitalize()} tiles", values)
    fig.notes.append(
        f"theoretical peak {machine.peak_gflops:.1f} Gflops (top of the paper's chart)"
    )
    fig.notes.append(
        "small blocks: main-thread task management dominates; large "
        "blocks: parallelism starvation (section VI)"
    )
    return fig


def _simulate_cholesky_flat(n, m, machine: MachineConfig, library: str):
    a_flat = np.empty((n, n), np.float32)  # bodies never run: no init
    cost = CostModel(machine, library=library, block_size=m)
    return simulate_program(
        cholesky.cholesky_flat, a_flat, m, machine=machine, cost_model=cost
    )


# ---------------------------------------------------------------------------
# Figure 11 — Cholesky Gflops vs threads, vs threaded Goto/MKL
# ---------------------------------------------------------------------------

def fig11_cholesky_scaling(
    n: int = 8192,
    m: int = 256,
    threads=THREAD_SWEEP,
) -> FigureResult:
    fig = FigureResult(
        "Figure 11",
        f"Cholesky {n}x{n} single floats, block {m}, varying threads",
        "threads",
        "Gflops",
        list(threads),
    )
    flops = n ** 3 / 3
    for library in ("goto", "mkl"):
        threaded = [
            flops / forkjoin_cholesky_time(n, t, library, ALTIX_32.with_cores(t)) / 1e9
            for t in threads
        ]
        fig.add(f"Threaded {library.capitalize()}", threaded)
        smpss = []
        for t in threads:
            machine = ALTIX_32.with_cores(t)
            res = _simulate_cholesky_flat(n, m, machine, library)
            smpss.append(res.gflops(flops))
        fig.add(f"SMPSs + {library.capitalize()} tiles", smpss)
    fig.add("Peak", [ALTIX_32.core_peak_flops * t / 1e9 for t in threads])
    fig.notes.append(
        "threaded MKL plateaus ~4 threads, threaded Goto ~10; SMPSs "
        "scales to 32 (the paper's headline result)"
    )
    return fig


# ---------------------------------------------------------------------------
# Figure 12 — matrix multiplication with on-demand copies vs threads
# ---------------------------------------------------------------------------

def fig12_matmul_scaling(
    n: int = 8192,
    m: int = 1024,
    threads=THREAD_SWEEP,
) -> FigureResult:
    fig = FigureResult(
        "Figure 12",
        f"Matmul (on-demand block copies) {n}x{n} single floats, block {m}",
        "threads",
        "Gflops",
        list(threads),
    )
    flops = 2.0 * n ** 3
    for library in ("goto", "mkl"):
        threaded = [
            flops / forkjoin_matmul_time(n, t, library, ALTIX_32.with_cores(t)) / 1e9
            for t in threads
        ]
        fig.add(f"Threaded {library.capitalize()}", threaded)
        smpss = []
        for t in threads:
            machine = ALTIX_32.with_cores(t)
            cost = CostModel(machine, library=library, block_size=m)
            a = np.empty((n, n), np.float32)
            b = np.empty((n, n), np.float32)
            c = np.empty((n, n), np.float32)
            res = simulate_program(
                matmul.matmul_flat, a, b, c, m, machine=machine, cost_model=cost
            )
            smpss.append(res.gflops(flops))
        fig.add(f"SMPSs + {library.capitalize()} tiles", smpss)
    fig.add("Peak", [ALTIX_32.core_peak_flops * t / 1e9 for t in threads])
    fig.notes.append(
        "SMPSs shows the staircase response of a fixed block size "
        "(starvation at thread counts that do not divide the chains); "
        "threaded BLAS is smooth (section VI.B)"
    )
    return fig


# ---------------------------------------------------------------------------
# Figure 13 — Strassen vs threads
# ---------------------------------------------------------------------------

def fig13_strassen_scaling(
    n: int = 8192,
    m: int = 512,
    threads=THREAD_SWEEP,
) -> FigureResult:
    n_blocks = n // m
    fig = FigureResult(
        "Figure 13",
        f"Strassen {n}x{n} single floats, {n_blocks}x{n_blocks} blocks of {m}",
        "threads",
        "Gflops",
        list(threads),
    )
    # "The Gflops figures have been calculated using Strassen's formula"
    flops = strassen.strassen_flops(n_blocks, m)
    for library in ("goto", "mkl"):
        values = []
        for t in threads:
            machine = ALTIX_32.with_cores(t)
            cost = CostModel(machine, library=library, block_size=m)
            a = _sym_hyper(n_blocks)
            b = _sym_hyper(n_blocks)
            c = _sym_hyper(n_blocks)
            res = simulate_program(
                strassen.strassen_multiply, a, b, c,
                machine=machine, cost_model=cost,
            )
            values.append(res.gflops(flops))
        fig.add(f"SMPSs + {library.capitalize()} tiles", values)
    fig.add("Peak", [ALTIX_32.core_peak_flops * t / 1e9 for t in threads])
    fig.notes.append(
        "smoother than Figure 12 (less linearised graph allows more "
        "stealing) but lower Gflops: renaming allocations plus "
        "bandwidth-bound additions (section VI.C)"
    )
    return fig


# ---------------------------------------------------------------------------
# Figure 14 — Multisort speedup vs threads
# ---------------------------------------------------------------------------

def fig14_multisort(
    n: int = 2 ** 22,
    quicksize: int = 32768,
    threads=THREAD_SWEEP,
    seed: int = 0,
) -> FigureResult:
    fig = FigureResult(
        "Figure 14",
        f"Multisort of {n} elements (quicksize {quicksize})",
        "threads",
        "speedup vs sequential",
        list(threads),
    )
    # Deterministic input: the recursion topology itself is
    # data-independent, but seeding keeps repeated/CI runs bitwise
    # reproducible (uninitialised np.empty memory is not).
    rng = np.random.default_rng(seed)
    # Sequential reference: the same algorithm, no task overheads.
    seq_time = build_multisort_dag(n, quicksize, "seq").total_work

    for model in ("cilk", "omp"):
        template = build_multisort_dag(n, quicksize, model)
        values = []
        for t in threads:
            machine = ALTIX_32.with_cores(t)
            res = run_static(
                template.build(),
                machine,
                CostModel(machine, block_size=1),
                scheduler_for_model(model),
            )
            values.append(seq_time / res.makespan)
        fig.add({"cilk": "Cilk", "omp": "OMP3 tasks"}[model], values)

    values = []
    for t in threads:
        machine = ALTIX_32.with_cores(t)
        data = rng.random(n, dtype=np.float32)
        tmp = np.zeros(n, np.float32)
        res = simulate_program(
            multisort.multisort_recursive_merge_topology,
            data, tmp, quicksize,
            machine=machine,
            cost_model=CostModel(machine, block_size=1),
        )
        values.append(seq_time / res.makespan)
    fig.add("SMPSs", values)
    fig.notes.append("all three scale similarly, SMPSs slightly ahead (section VI.D)")
    return fig


# ---------------------------------------------------------------------------
# Figures 15 and 16 — N Queens
# ---------------------------------------------------------------------------

def _nqueens_times(n: int, task_levels: int, threads) -> dict[str, list[float]]:
    # The N Queens input is just the board size, so Figures 15/16 are
    # fully deterministic — nothing to seed (noted for the --repeat /
    # baseline-gate workflow, which assumes repeats are comparable).
    # Virtual per-node cost derived from the paper's ~250 us task
    # granularity guidance (section I) so overhead-to-work ratios stay
    # faithful at Python-searchable board sizes.
    node_cost = queens_node_cost_for_granularity(n, task_levels)
    times: dict[str, list[float]] = {"_node_cost": node_cost}  # type: ignore[dict-item]
    for model in ("cilk", "omp"):
        template = build_nqueens_dag(n, task_levels, model, node_cost)
        times[model] = []
        for t in threads:
            machine = ALTIX_32.with_cores(t)
            res = run_static(
                template.build(),
                machine,
                CostModel(machine, block_size=1),
                scheduler_for_model(model),
            )
            times[model].append(res.makespan)
    times["smpss"] = []
    for t in threads:
        machine = ALTIX_32.with_cores(t)
        res = simulate_program(
            nqueens.nqueens_smpss_count, n, task_levels,
            machine=machine,
            cost_model=CostModel(machine, block_size=1, queens_node_cost=node_cost),
            execute_bodies=True,
        )
        times["smpss"].append(res.makespan)
    return times


_LABELS = {"cilk": "Cilk", "omp": "OMP3 tasks", "smpss": "SMPSs"}


def fig15_nqueens(
    n: int = 12, task_levels: int = 4, threads=THREAD_SWEEP
) -> FigureResult:
    fig = FigureResult(
        "Figure 15",
        f"N Queens (n={n}) speedup vs the sequential program",
        "threads",
        "speedup vs sequential",
        list(threads),
    )
    times = _nqueens_times(n, task_levels, threads)
    seq_time = sequential_nqueens_time(n, times["_node_cost"])
    for model in ("cilk", "omp", "smpss"):
        fig.add(_LABELS[model], [seq_time / t for t in times[model]])
    fig.extras["times"] = times
    fig.extras["sequential_time"] = seq_time
    fig.notes.append(
        "SMPSs exceeds 1 at one thread (renaming realigns data; no "
        "hand duplication); Cilk/OMP pay the per-spawn array copy"
    )
    return fig


def fig16_nqueens_scalability(
    n: int = 12, task_levels: int = 4, threads=THREAD_SWEEP
) -> FigureResult:
    fig = FigureResult(
        "Figure 16",
        f"N Queens (n={n}) scalability vs 1 thread of the same model",
        "threads",
        "speedup vs 1 thread",
        list(threads),
    )
    times = _nqueens_times(n, task_levels, threads)
    for model in ("cilk", "omp", "smpss"):
        base = times[model][0]
        fig.add(_LABELS[model], [base / t for t in times[model]])
    fig.notes.append(
        "normalised per model, all three scale similarly (the paper's "
        "point about comparing against duplication-artifact sequential "
        "versions)"
    )
    return fig


# ---------------------------------------------------------------------------
# Section VI prose: task counts
# ---------------------------------------------------------------------------

def text_task_counts() -> dict:
    """The quoted task counts, from formula and from recorded graphs."""

    out = {
        "flat_cholesky_T(128)": cholesky.flat_task_count(128)["total"],
        "flat_cholesky_T(64)": cholesky.flat_task_count(64)["total"],
        "paper_quote_32x32": 374_272,
        "paper_quote_64x64": 49_920,
        "matmul_N3_formula": matmul.dense_task_count(16),
    }
    # Validate the formulas against actually recorded graphs (small N).
    for n_blocks in (4, 6, 8):
        hm = _sym_hyper(n_blocks)
        prog = record_program(cholesky.cholesky_hyper, hm, execute="skip")
        out[f"recorded_hyper_N{n_blocks}"] = prog.task_count
        out[f"formula_hyper_N{n_blocks}"] = cholesky.hyper_task_count(n_blocks)["total"]
    a = np.empty((64, 64), np.float32)
    prog = record_program(cholesky.cholesky_flat, a, 8, execute="skip")
    out["recorded_flat_N8"] = prog.task_count
    out["formula_flat_N8"] = cholesky.flat_task_count(8)["total"]
    return out


# ---------------------------------------------------------------------------
# Microbenchmark: submission throughput of the fast-path engine
# ---------------------------------------------------------------------------

@css_task("inout(a)")
def _micro_chain_task(a):  # noqa: ARG001 - empty body: measures the runtime
    pass


@css_task("input(src) output(dst)")
def _micro_fan_task(src, dst):  # noqa: ARG001
    pass


def _python_speed_mops(iters: int = 150_000, repeats: int = 3) -> float:
    """Host calibration: Mops/s of a fixed pure-Python dict/loop probe.

    The submission hot path is interpreter-bound (attribute access,
    dict lookups, function calls), so its throughput on a given host
    tracks this probe.  Dividing tasks/sec by the probe rate gives a
    host-portable number that a committed baseline can gate.
    """

    d: dict = {}
    get = d.get
    best = 0.0
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        acc = 0
        for i in range(iters):
            d[i & 1023] = i
            acc += get(i & 1023, 0)
        dt = time.perf_counter() - t0
        best = max(best, iters / dt / 1e6)
    return best


def _submission_rate_once(variant: str, tasks: int, num_workers: int) -> float:
    """tasks/sec for one run of an empty-body submission stream."""

    if variant == "chain-1":
        a = np.zeros(64, np.float32)
        with SmpssRuntime(num_workers=num_workers):
            t0 = time.perf_counter()
            for _ in range(tasks):
                _micro_chain_task(a)
            barrier()
            dt = time.perf_counter() - t0
    elif variant == "fanout-64":
        src = np.zeros(64, np.float32)
        dsts = [np.zeros(64, np.float32) for _ in range(64)]
        with SmpssRuntime(num_workers=num_workers):
            t0 = time.perf_counter()
            for i in range(tasks):
                _micro_fan_task(src, dsts[i & 63])
            barrier()
            dt = time.perf_counter() - t0
    else:  # pragma: no cover - registry keeps variants in sync
        raise ValueError(f"unknown variant {variant!r}")
    return tasks / dt


def micro_submission_throughput(
    tasks: int = 4000,
    inner_repeats: int = 3,
    num_workers: int = 2,
) -> FigureResult:
    """Submission throughput (tasks/sec) of empty-body task streams.

    Not a paper figure: this gates the runtime's own task_add overhead
    (the cost section VI's block-size discussion is about) through the
    same baseline machinery as the figure benchmarks.  Two dependency
    shapes: ``chain-1`` (every task inout on one datum — a pure serial
    chain) and ``fanout-64`` (one shared input, 64 round-robin outputs
    — wide with renaming).  The gated series is normalised by
    :func:`_python_speed_mops` so a baseline recorded on one host
    remains meaningful on another; raw tasks/sec land in ``extras``.
    """

    variants = ["chain-1", "fanout-64"]
    mops = _python_speed_mops()
    rates = {
        v: max(
            _submission_rate_once(v, tasks, num_workers)
            for _ in range(max(inner_repeats, 1))
        )
        for v in variants
    }
    fig = FigureResult(
        "Microbench",
        f"Task submission throughput, empty bodies "
        f"(n={tasks}, {num_workers} workers)",
        "dependency shape",
        "normalised throughput (tasks per Mop of host Python)",
        variants,
    )
    fig.add("smpss runtime", [rates[v] / mops for v in variants])
    fig.extras["tasks_per_second"] = {v: rates[v] for v in variants}
    fig.extras["calibration_mops"] = mops
    fig.extras["tasks"] = tasks
    fig.extras["num_workers"] = num_workers
    fig.notes.append(
        "raw: "
        + ", ".join(f"{v} {rates[v]:,.0f} tasks/s" for v in variants)
        + f"; host probe {mops:.1f} Mops/s"
    )
    return fig


# ---------------------------------------------------------------------------
# backend_scaling — threads vs processes on pure-Python kernels
# ---------------------------------------------------------------------------
#
# The figure the paper cannot show but its design implies: with task
# bodies that never release the GIL, the threaded backend is capped at
# 1x whatever the worker count, while the process backend (repro.mp)
# scales with cores.  Kernels below are deliberate pure-Python loops
# (tolist in, scalar arithmetic, assign back); every accumulation chain
# is an inout dependency chain, so execution order per block is fixed by
# the graph and results are bitwise identical across backends and
# worker counts — asserted on every run.

@css_task("input(a, b) inout(c)")
def _py_gemm_t(a, b, c):
    """c += a @ b, pure-Python inner loops (holds the GIL throughout)."""

    al, bl, cl = a.tolist(), b.tolist(), c.tolist()
    inner = len(bl)
    cols = len(bl[0])
    for ai, ci in zip(al, cl):
        for k in range(inner):
            aik = ai[k]
            if aik != 0.0:
                bk = bl[k]
                for j in range(cols):
                    ci[j] += aik * bk[j]
    c[...] = cl


@css_task("input(a, b) inout(c)")
def _py_gemm_nt_t(a, b, c):
    """c -= a @ b.T, pure-Python (the Cholesky trailing update)."""

    al, bl, cl = a.tolist(), b.tolist(), c.tolist()
    inner = len(al[0])
    for ai, ci in zip(al, cl):
        for j, bj in enumerate(bl):
            s = 0.0
            for k in range(inner):
                s += ai[k] * bj[k]
            ci[j] -= s
    c[...] = cl


@css_task("inout(a)")
def _py_potrf_t(a):
    """Unblocked lower Cholesky of one tile, pure-Python."""

    al = a.tolist()
    n = len(al)
    for j in range(n):
        s = al[j][j]
        row_j = al[j]
        for k in range(j):
            s -= row_j[k] * row_j[k]
        d = s ** 0.5
        row_j[j] = d
        for i in range(j + 1, n):
            row_i = al[i]
            s = row_i[j]
            for k in range(j):
                s -= row_i[k] * row_j[k]
            row_i[j] = s / d
    for i in range(n):
        for j in range(i + 1, n):
            al[i][j] = 0.0
    a[...] = al


@css_task("input(l) inout(b)")
def _py_trsm_t(l, b):
    """b := b @ inv(l).T for a lower-triangular tile l, pure-Python."""

    ll, bl = l.tolist(), b.tolist()
    n = len(ll)
    for row in bl:
        for j in range(n):
            s = row[j]
            lj = ll[j]
            for k in range(j):
                s -= row[k] * lj[k]
            row[j] = s / lj[j]
    b[...] = bl


@css_task("input(a) inout(c)")
def _py_syrk_t(a, c):
    """c -= a @ a.T (full tile, keeps the kernel simple), pure-Python."""

    al, cl = a.tolist(), c.tolist()
    inner = len(al[0])
    for ai, ci in zip(al, cl):
        for j, aj in enumerate(al):
            s = 0.0
            for k in range(inner):
                s += ai[k] * aj[k]
            ci[j] -= s
    c[...] = cl


def _block_views(matrix, block: int):
    """Stable tile views, created once — the dependency tracker keys
    data by object identity, so every submission must reuse these."""

    nb = matrix.shape[0] // block
    return [
        [
            matrix[i * block:(i + 1) * block, j * block:(j + 1) * block]
            for j in range(nb)
        ]
        for i in range(nb)
    ]


def _submit_blocked_matmul(av, bv, cv) -> None:
    nb = len(av)
    for i in range(nb):
        for j in range(nb):
            for k in range(nb):
                _py_gemm_t(av[i][k], bv[k][j], cv[i][j])


def _submit_blocked_cholesky(wv) -> None:
    nb = len(wv)
    for k in range(nb):
        _py_potrf_t(wv[k][k])
        for i in range(k + 1, nb):
            _py_trsm_t(wv[k][k], wv[i][k])
        for i in range(k + 1, nb):
            _py_syrk_t(wv[i][k], wv[i][i])
            for j in range(k + 1, i):
                _py_gemm_nt_t(wv[i][k], wv[j][k], wv[i][j])


def _timed_run(submit, backend: str, workers: int) -> float:
    """One timed pass: runtime startup (thread spawn / process fork)
    excluded, submission + execution + barrier included."""

    with SmpssRuntime(
        num_workers=workers, backend=backend, rename_inout=False
    ) as rt:
        t0 = time.perf_counter()
        submit()
        rt.barrier()
        return time.perf_counter() - t0


def backend_scaling(
    n: int = 192,
    block: int = 48,
    workers: tuple = (1, 2, 4),
    seed: int = 0,
) -> FigureResult:
    """Threads vs processes at 1/2/4 workers on pure-Python kernels.

    Series are speedups over the 1-worker threaded run of the same app
    (higher is better).  On a single-core host both backends flatline
    near 1x (processes slightly below: pipe round-trips cost more than
    a thread handoff) — the committed baseline records whatever the
    recording host could honestly measure, and ``extras['cpu_count']``
    says what that was.
    """

    import os as _os

    from ..mp.arena import SharedArena

    if n % block != 0:
        raise ValueError("n must be a multiple of block")
    rng = np.random.default_rng(seed)
    times: dict = {}
    with SharedArena() as arena:
        # matmul operands; cholesky gets a well-conditioned SPD matrix.
        a = arena.array(rng.standard_normal((n, n)))
        b = arena.array(rng.standard_normal((n, n)))
        c = arena.zeros((n, n))
        spd = rng.standard_normal((n, n))
        spd = spd @ spd.T + n * np.eye(n)
        work = arena.zeros((n, n))
        av, bv, cv = _block_views(a, block), _block_views(b, block), _block_views(c, block)
        wv = _block_views(work, block)

        apps = {
            "matmul": (
                lambda: _submit_blocked_matmul(av, bv, cv),
                lambda: c.__setitem__(..., 0.0),
                c,
            ),
            "cholesky": (
                lambda: _submit_blocked_cholesky(wv),
                lambda: work.__setitem__(..., spd),
                work,
            ),
        }
        for app, (submit, reset, out) in apps.items():
            snapshots: dict = {}
            for w in workers:
                for backend in ("threads", "processes"):
                    reset()
                    times[(app, backend, w)] = _timed_run(submit, backend, w)
                    snapshots[(backend, w)] = out.copy()
                if not np.array_equal(
                    snapshots[("threads", w)], snapshots[("processes", w)]
                ):
                    raise AssertionError(
                        f"{app}: backends disagree bitwise at {w} workers"
                    )
            if app == "cholesky":
                factor = np.tril(snapshots[("threads", workers[0])])
                if not np.allclose(factor @ factor.T, spd, atol=1e-8 * n):
                    raise AssertionError("cholesky kernels produced a wrong factor")

    fig = FigureResult(
        "Backend scaling",
        f"Pure-Python kernels, threads vs processes (n={n}, block={block})",
        "workers",
        "speedup vs 1-worker threads (higher is better)",
        list(workers),
    )
    for app in ("matmul", "cholesky"):
        base = times[(app, "threads", workers[0])]
        for backend in ("threads", "processes"):
            fig.add(
                f"{app} {backend}",
                [base / times[(app, backend, w)] for w in workers],
            )
    fig.extras["seconds"] = {
        f"{app}/{backend}/{w}": times[(app, backend, w)]
        for (app, backend, w) in times
    }
    fig.extras["cpu_count"] = _os.cpu_count()
    fig.extras["n"] = n
    fig.extras["block"] = block
    fig.notes.append(
        f"host cpu_count={_os.cpu_count()}; bitwise backend parity asserted "
        f"per worker count; startup (fork/spawn) excluded from timings"
    )
    return fig


# ---------------------------------------------------------------------------
# Service throughput (PR 9): concurrent tenants on one shared fleet
# ---------------------------------------------------------------------------

@css_task("input(a, b) inout(c)")
def _service_gemm_t(a, b, c):
    c += a @ b


def service_throughput(
    clients: tuple = (1, 2, 4),
    graphs_per_client: int = 12,
    tasks_per_graph: int = 8,
    n: int = 48,
    workers: int = 4,
    shards: int = 16,
    seed: int = 0,
) -> FigureResult:
    """Graphs/sec served at N concurrent client sessions.

    One :class:`~repro.serve.ServeDaemon` (W thread workers, S tracker
    shards) serves every point; each client thread opens its own
    tenant session and submits ``graphs_per_client`` graphs of
    ``tasks_per_graph`` independent gemm tasks over its own data, so
    tenants share nothing but the fleet.  Series: absolute graphs/sec
    (higher is better) and the throughput ratio over the 1-client run
    — the ratio is the portable sharding-decontention signal, the
    absolute number is host-bound.  Every client verifies its results
    against a sequential oracle, so throughput never counts wrong
    answers.
    """

    import os as _os
    import threading as _threading

    from ..serve import ServeDaemon, connect as _serve_connect

    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal((n, n))
    b0 = rng.standard_normal((n, n))
    oracle = np.zeros((n, n))
    for _ in range(tasks_per_graph):
        oracle += a0 @ b0

    throughput: list[float] = []
    with ServeDaemon(
        "tcp:127.0.0.1:0", workers=workers, shards=shards
    ) as daemon:
        for num_clients in clients:
            errors: list = []
            start_gate = _threading.Event()

            def run_client(index: int) -> None:
                try:
                    a, b = a0.copy(), b0.copy()
                    c = np.zeros((n, n))
                    with _serve_connect(
                        daemon.address, tenant=f"bench-{num_clients}-{index}"
                    ) as rt:
                        start_gate.wait(30.0)
                        for _ in range(graphs_per_client):
                            c[...] = 0.0
                            for _ in range(tasks_per_graph):
                                _service_gemm_t(a, b, c)
                            rt.barrier()
                    if not np.allclose(c, oracle):
                        raise AssertionError(
                            f"client {index}: served result diverged"
                        )
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            threads = [
                _threading.Thread(target=run_client, args=(i,))
                for i in range(num_clients)
            ]
            for thread in threads:
                thread.start()
            t0 = time.perf_counter()
            start_gate.set()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - t0
            if errors:
                raise errors[0]
            throughput.append(num_clients * graphs_per_client / elapsed)

    fig = FigureResult(
        "Service throughput",
        f"Concurrent tenants on one {workers}-worker fleet "
        f"({shards} tracker shards, gemm n={n})",
        "concurrent clients",
        "graphs/sec (higher is better)",
        list(clients),
    )
    fig.add("graphs/sec", throughput)
    fig.add(
        "throughput vs 1 client",
        [t / throughput[0] for t in throughput],
    )
    fig.extras["cpu_count"] = _os.cpu_count()
    fig.extras["workers"] = workers
    fig.extras["shards"] = shards
    fig.notes.append(
        f"host cpu_count={_os.cpu_count()}; every client's results "
        f"verified against the sequential oracle before counting"
    )
    return fig


# ---------------------------------------------------------------------------
# Distributed throughput (PR 10): residency cache over repeat submissions
# ---------------------------------------------------------------------------

@css_task("input(a, b) output(c)")
def _dist_mul_t(a, b, c):
    np.multiply(a, b, out=c)


@css_task("input(c) inout(acc)")
def _dist_accum_t(c, acc):
    acc += c


def dist_throughput(
    submissions: int = 4,
    tiles: int = 8,
    n: int = 96,
    nodes: int = 2,
    slots: int = 2,
    seed: int = 0,
) -> FigureResult:
    """Bytes shipped and tasks/sec per repeat submission on a cluster.

    Two localhost node agents serve one master; the workload multiplies
    ``tiles`` fixed input pairs and accumulates, ``submissions`` times
    in a row inside one session.  The first submission pays to ship
    every input to the nodes; later ones reference the resident copies
    (``dist.cache_hits``), so the per-submission ``dist.bytes_moved``
    delta must drop — that drop is the figure, and the experiment
    asserts it outright along with a numpy oracle on the final result.
    Absolute tasks/sec is host- and loopback-bound; the bytes series is
    the portable signal.
    """

    import os as _os

    from ..dist import AgentServer

    rng = np.random.default_rng(seed)
    A = [rng.standard_normal((n, n)) for _ in range(tiles)]
    B = [rng.standard_normal((n, n)) for _ in range(tiles)]
    oracle = np.zeros((n, n))
    for a, b in zip(A, B):
        oracle += a * b

    servers = [
        AgentServer("tcp:127.0.0.1:0", slots=slots).start()
        for _ in range(nodes)
    ]
    bytes_per_sub: list[float] = []
    hits_per_sub: list[float] = []
    rate_per_sub: list[float] = []
    try:
        with SmpssRuntime(
            backend="cluster", nodes=[s.address for s in servers]
        ) as rt:
            m = rt.metrics
            acc = None
            for _ in range(submissions):
                b0 = m.counter("dist.bytes_moved").value
                h0 = m.counter("dist.cache_hits").value
                t0 = time.perf_counter()
                acc = np.zeros((n, n))
                for a, b in zip(A, B):
                    c = np.empty((n, n))
                    _dist_mul_t(a, b, c)
                    _dist_accum_t(c, acc)
                rt.barrier()
                elapsed = time.perf_counter() - t0
                bytes_per_sub.append(
                    (m.counter("dist.bytes_moved").value - b0) / 1e6
                )
                hits_per_sub.append(m.counter("dist.cache_hits").value - h0)
                rate_per_sub.append(2 * tiles / elapsed)
            if not np.allclose(acc, oracle):
                raise AssertionError("cluster result diverged from oracle")
    finally:
        for server in servers:
            server.close()

    if not all(b < bytes_per_sub[0] for b in bytes_per_sub[1:]):
        raise AssertionError(
            f"residency cache bought nothing: bytes/submission "
            f"{bytes_per_sub}"
        )

    fig = FigureResult(
        "Distributed residency throughput",
        f"{nodes} localhost agents x {slots} slots, {tiles} gemm tiles "
        f"(n={n}) per submission",
        "submission",
        "MB shipped (lower is better)",
        list(range(1, submissions + 1)),
    )
    fig.add("MB moved", bytes_per_sub)
    fig.add("cache hits", hits_per_sub)
    fig.add("tasks/sec", rate_per_sub)
    fig.extras["cpu_count"] = _os.cpu_count()
    fig.extras["nodes"] = nodes
    fig.extras["slots"] = slots
    fig.notes.append(
        f"host cpu_count={_os.cpu_count()}; final accumulator verified "
        f"against the numpy oracle; submissions after the first must "
        f"ship fewer bytes (asserted)"
    )
    return fig
