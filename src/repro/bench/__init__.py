"""Benchmark harness: regenerates every figure of the paper (section VI).

:mod:`repro.bench.experiments` has one entry point per figure; each
returns a :class:`repro.bench.harness.FigureResult` whose ``table()``
prints the same rows/series the paper plots.  The pytest-benchmark
drivers in ``benchmarks/`` call these entry points.
"""

from .harness import FigureResult, Series
from . import experiments

__all__ = ["FigureResult", "Series", "experiments"]
