"""Benchmark harness: regenerates every figure of the paper (section VI).

:mod:`repro.bench.experiments` has one entry point per figure; each
returns a :class:`repro.bench.harness.FigureResult` whose ``table()``
prints the same rows/series the paper plots.  The pytest-benchmark
drivers in ``benchmarks/`` call these entry points.

On top of the figures sits the continuous-benchmarking layer
(``docs/benchmarking.md``): :mod:`~repro.bench.registry` knows how to
run each figure (with ``--repeat`` aggregation and provenance),
:mod:`~repro.bench.stats` supplies the robust statistics and
noise-aware thresholds, and :mod:`~repro.bench.compare` gates a run
against the committed baselines under ``benchmarks/baselines/``.
"""

from .compare import compare_against_baselines, compare_figures
from .harness import FigureResult, Series
from .provenance import SCHEMA_VERSION, collect_provenance
from .registry import run_figure_once, run_figure_repeated
from .stats import aggregate_figures, iqr, median, noise_threshold, quantile
from . import experiments

__all__ = [
    "FigureResult",
    "Series",
    "experiments",
    "SCHEMA_VERSION",
    "collect_provenance",
    "run_figure_once",
    "run_figure_repeated",
    "aggregate_figures",
    "median",
    "quantile",
    "iqr",
    "noise_threshold",
    "compare_figures",
    "compare_against_baselines",
]
