"""Result containers and text rendering for the figure benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Series", "FigureResult"]


@dataclass
class Series:
    """One line of a figure: a label and y-values over the shared x axis."""

    label: str
    values: list[float]

    def at(self, x_axis: Sequence, x) -> float:
        return self.values[list(x_axis).index(x)]


@dataclass
class FigureResult:
    """One regenerated figure: axes, series, and provenance notes."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    x: list
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: free-form extras (task counts, utilisations, ...) — not
    #: serialised (keys may be tuples)
    extras: dict = field(default_factory=dict)
    #: run provenance (git sha, host, versions, repeats) — see
    #: :func:`repro.bench.provenance.collect_provenance`
    provenance: dict = field(default_factory=dict)
    #: per-series per-point spread (IQR across ``--repeat`` runs),
    #: filled by :func:`repro.bench.stats.aggregate_figures`
    spread: dict = field(default_factory=dict)

    def add(self, label: str, values: Sequence[float]) -> Series:
        if len(values) != len(self.x):
            raise ValueError(
                f"series {label!r} has {len(values)} points for "
                f"{len(self.x)} x values"
            )
        s = Series(label, [float(v) for v in values])
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure_id}")

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def table(self) -> str:
        """Aligned text table: x column + one column per series."""

        headers = [self.xlabel] + [s.label for s in self.series]
        rows = []
        for i, x in enumerate(self.x):
            row = [_fmt(x)] + [_fmt(s.values[i]) for s in self.series]
            rows.append(row)
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
            for c in range(len(headers))
        ]
        lines = [
            f"{self.figure_id}: {self.title}",
            f"  [{self.ylabel}]",
            "  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
            "  " + "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  " + "  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def ascii_chart(self, height: int = 16, width: int = 60) -> str:
        """A rough terminal plot of every series (one glyph each)."""

        if not self.series or not self.x:
            return "(empty figure)"
        ys = [v for s in self.series for v in s.values]
        y_min, y_max = min(ys + [0.0]), max(ys)
        if y_max <= y_min:
            y_max = y_min + 1.0
        grid = [[" "] * width for _ in range(height)]
        glyphs = "*o+x#@%&"
        for si, s in enumerate(self.series):
            glyph = glyphs[si % len(glyphs)]
            for xi, v in enumerate(s.values):
                col = int(xi / max(len(self.x) - 1, 1) * (width - 1))
                row = height - 1 - int(
                    (v - y_min) / (y_max - y_min) * (height - 1)
                )
                grid[row][col] = glyph
        lines = [f"{self.figure_id}: {self.title}  ({self.ylabel})"]
        lines += ["  |" + "".join(row) for row in grid]
        lines.append("  +" + "-" * width)
        legend = "   ".join(
            f"{glyphs[i % len(glyphs)]}={s.label}" for i, s in enumerate(self.series)
        )
        lines.append("   " + legend)
        return "\n".join(lines)


    def to_csv(self) -> str:
        """Comma-separated values: header row + one row per x value."""

        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow([self.xlabel] + [s.label for s in self.series])
        for i, x in enumerate(self.x):
            writer.writerow([x] + [s.values[i] for s in self.series])
        return buffer.getvalue()

    def to_json(self) -> str:
        """JSON document with axes, series, notes, provenance, spread."""

        import json

        doc = {
            "figure_id": self.figure_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "x": list(self.x),
            "series": {s.label: s.values for s in self.series},
            "notes": list(self.notes),
        }
        if self.provenance:
            doc["provenance"] = self.provenance
        if self.spread:
            doc["spread"] = self.spread
        return json.dumps(doc, indent=2)

    @classmethod
    def from_dict(cls, doc: dict) -> "FigureResult":
        """Rebuild a figure from its :meth:`to_json` document."""

        fig = cls(
            doc["figure_id"],
            doc.get("title", ""),
            doc.get("xlabel", "x"),
            doc.get("ylabel", "y"),
            list(doc.get("x", [])),
            notes=list(doc.get("notes", [])),
            provenance=dict(doc.get("provenance", {})),
            spread={k: list(v) for k, v in doc.get("spread", {}).items()},
        )
        for label, values in doc.get("series", {}).items():
            fig.add(label, values)
        return fig

    @classmethod
    def load(cls, path: str) -> "FigureResult":
        """Load a figure saved as JSON (the inverse of ``save``)."""

        import json

        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: str) -> None:
        """Write the figure to *path* (.csv or .json by extension)."""

        if path.endswith(".json"):
            payload = self.to_json()
        elif path.endswith(".csv"):
            payload = self.to_csv()
        else:
            payload = self.table() + "\n"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.3g}"
    return str(v)
