"""The translator: ``#pragma css`` comments -> runtime calls.

Recognised pragmas (each must be the only content of its line, aside
from indentation; a trailing ``\\`` continues the pragma on the next
comment line, as in the paper's Figure 7):

* ``#pragma css task [clause...]`` — must be followed by a ``def`` at
  the same indentation (decorator lines may intervene).  Translated to
  an ``@css_task("clauses")`` decorator.
* ``#pragma css barrier`` — translated to a runtime barrier call.
* ``#pragma css wait on(expr)`` — translated to an acquire of *expr*
  (fine-grained wait; the runtime analogue of CellSs' wait-on).
* ``#pragma css start`` / ``#pragma css finish`` — no-ops retained for
  source compatibility with SMPSs programs (the Python runtime scopes
  execution with context managers instead).

The pragma clause list itself is validated with the real parser at
translation time, so malformed pragmas fail with line numbers *before*
the program runs — like a compiler should.
"""

from __future__ import annotations

import re
import sys
import types
from dataclasses import dataclass
from typing import Optional

from ..core.pragma import PragmaError, parse_pragma

__all__ = [
    "CompileError",
    "translate_source",
    "compile_annotated",
    "load_annotated_module",
    "iter_task_pragmas",
    "iter_sync_pragmas",
]

#: Injected prelude — deliberately a SINGLE line so user code shifts by
#: exactly one line in tracebacks.  ``wait on`` binds the first-class
#: :func:`repro.core.api.wait_on` (traced + in-task-body aware), not an
#: inline lambda.
_PRELUDE = (
    "from repro.core.api import css_task as __css_task__, "
    "barrier as __css_barrier__, current_runtime as __css_runtime__, "
    "wait_on as __css_wait_on__\n"
)

_PRAGMA_RE = re.compile(
    r"^(?P<indent>\s*)#\s*pragma\s+css\s+(?P<kind>task|barrier|wait|start|finish)"
    r"\b(?P<rest>.*)$"
)
_COMMENT_CONT_RE = re.compile(r"^\s*#(?P<body>.*)$")
_DEF_RE = re.compile(r"^(?P<indent>\s*)(?:async\s+)?def\s+\w+")
_DECORATOR_RE = re.compile(r"^\s*@")
_WAIT_ON_RE = re.compile(r"^\s*on\s*\((?P<expr>.+)\)\s*$")

#: Trailing lint suppression on a pragma (or continuation) line.  It is
#: resolved by :mod:`repro.check.suppress`, not pragma payload — without
#: this strip a ``# css: ignore[...]`` on a pragma line would reach the
#: clause parser and fail on the ``#``.
_IGNORE_COMMENT_RE = re.compile(r"#\s*css:\s*ignore(?:\[[^\]]*\])?\s*$")


def _strip_suppression(text: str) -> str:
    return _IGNORE_COMMENT_RE.sub("", text).rstrip()


class CompileError(SyntaxError):
    """A malformed ``#pragma css`` annotation."""

    def __init__(self, message: str, line: int, filename: str = "<annotated>"):
        super().__init__(f"{filename}:{line}: {message}")
        self.lineno = line
        self.filename = filename


@dataclass
class _Pragma:
    kind: str
    payload: str
    indent: str
    first_line: int
    last_line: int


def _collect_pragma(lines: list[str], idx: int, filename: str) -> Optional[_Pragma]:
    """Parse the pragma starting at *idx*, following continuations."""

    match = _PRAGMA_RE.match(lines[idx])
    if match is None:
        return None
    kind = match.group("kind")
    payload = _strip_suppression(match.group("rest").strip())
    last = idx
    # The paper writes multi-line pragmas with a trailing backslash;
    # each continuation is again a comment line.
    while payload.endswith("\\"):
        payload = payload[:-1].rstrip()
        last += 1
        if last >= len(lines):
            raise CompileError(
                "pragma continuation at end of file", idx + 1, filename
            )
        cont = _COMMENT_CONT_RE.match(lines[last])
        if cont is None:
            raise CompileError(
                "pragma continuation must be a comment line", last + 1, filename
            )
        payload += " " + _strip_suppression(cont.group("body").strip())
    return _Pragma(
        kind=kind,
        payload=payload,
        indent=match.group("indent"),
        first_line=idx + 1,  # 1-based
        last_line=last + 1,  # 1-based, inclusive
    )


def _def_line(lines: list[str], start: int, indent: str) -> Optional[int]:
    """1-based line of the ``def`` governed by a task pragma, or ``None``."""

    i = start
    while i < len(lines):
        line = lines[i]
        if not line.strip() or line.strip().startswith("#"):
            i += 1
            continue
        if _DECORATOR_RE.match(line):
            i += 1
            continue
        match = _DEF_RE.match(line)
        if match and match.group("indent") == indent:
            return i + 1
        break
    return None


def _find_def(lines: list[str], start: int, indent: str, filename: str, pragma_line: int) -> None:
    """Validate that a task pragma is followed by a matching ``def``."""

    if _def_line(lines, start, indent) is None:
        raise CompileError(
            "'#pragma css task' must be followed by a function definition "
            "at the same indentation",
            pragma_line,
            filename,
        )


def iter_task_pragmas(source: str, filename: str = "<annotated>"):
    """Yield ``(payload, pragma_line, def_line)`` per ``#pragma css task``.

    The clause *payload* is returned raw (not validated); *def_line* is
    ``None`` when no function definition follows at the pragma's
    indentation.  Used by the :mod:`repro.check` linter to associate
    pragma-comment annotations with the functions they govern without
    translating the source.  Raises :class:`CompileError` only for a
    dangling continuation at end of file.
    """

    lines = source.split("\n")
    i = 0
    while i < len(lines):
        pragma = _collect_pragma(lines, i, filename)
        if pragma is None:
            i += 1
            continue
        if pragma.kind == "task":
            yield (
                pragma.payload,
                pragma.first_line,
                _def_line(lines, pragma.last_line, pragma.indent),
            )
        i = pragma.last_line


def iter_sync_pragmas(source: str, filename: str = "<annotated>"):
    """Yield ``(kind, payload, line)`` per synchronisation pragma.

    Covers ``barrier`` and ``wait`` (not ``task``); *payload* is raw.
    Used by the :mod:`repro.check` linter to validate synchronisation
    pragmas — a ``barrier`` with arguments or a ``wait`` without a
    well-formed ``on(expression)`` — without translating the source.
    """

    lines = source.split("\n")
    i = 0
    while i < len(lines):
        pragma = _collect_pragma(lines, i, filename)
        if pragma is None:
            i += 1
            continue
        if pragma.kind in ("barrier", "wait"):
            yield pragma.kind, pragma.payload, pragma.first_line
        i = pragma.last_line


def translate_source(source: str, filename: str = "<annotated>") -> str:
    """Translate annotated Python source to standard Python source.

    Line numbers of user code are preserved exactly: every pragma line
    is *replaced* (by the decorator / call it denotes, or by a comment
    marker), never inserted or deleted, and the injected prelude lives
    on the (single) new first line.
    """

    lines = source.split("\n")
    out: list[str] = []
    i = 0
    while i < len(lines):
        pragma = _collect_pragma(lines, i, filename)
        if pragma is None:
            out.append(lines[i])
            i += 1
            continue

        blanks = pragma.last_line - pragma.first_line
        if pragma.kind == "task":
            try:
                parse_pragma(pragma.payload)
            except PragmaError as exc:
                raise CompileError(
                    f"invalid task pragma: {exc}", pragma.first_line, filename
                ) from exc
            _find_def(lines, pragma.last_line, pragma.indent, filename,
                      pragma.first_line)
            escaped = pragma.payload.replace("\\", "\\\\").replace('"', '\\"')
            out.append(f'{pragma.indent}@__css_task__("{escaped}")')
        elif pragma.kind == "barrier":
            if pragma.payload:
                raise CompileError(
                    "'#pragma css barrier' takes no arguments",
                    pragma.first_line, filename,
                )
            out.append(f"{pragma.indent}__css_barrier__()")
        elif pragma.kind == "wait":
            match = _WAIT_ON_RE.match(pragma.payload)
            if match is None:
                raise CompileError(
                    "expected '#pragma css wait on(expression)'",
                    pragma.first_line, filename,
                )
            out.append(f"{pragma.indent}__css_wait_on__({match.group('expr')})")
        else:  # start / finish: source-compatibility no-ops
            out.append(f"{pragma.indent}# css {pragma.kind} (no-op in Python)")

        # Keep continuation lines as blanks to preserve numbering.
        out.extend([""] * blanks)
        i = pragma.last_line

    body = "\n".join(out)
    return _PRELUDE + body


def compile_annotated(
    source: str, module_name: str = "css_program", filename: str = "<annotated>"
) -> types.ModuleType:
    """Translate and execute annotated source; returns the module."""

    translated = translate_source(source, filename)
    module = types.ModuleType(module_name)
    module.__file__ = filename
    code = compile(translated, filename, "exec")
    exec(code, module.__dict__)
    return module


def load_annotated_module(path: str, module_name: Optional[str] = None) -> types.ModuleType:
    """Load a ``.py`` file containing ``#pragma css`` annotations."""

    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    name = module_name or path.rsplit("/", 1)[-1].removesuffix(".py")
    module = compile_annotated(source, name, filename=path)
    sys.modules.setdefault(name, module)
    return module
