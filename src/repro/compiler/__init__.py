"""Source-to-source translation of ``#pragma css``-annotated programs.

The paper's programming environment "consists of a source-to-source
compiler and a supporting runtime library.  The compiler translates C
code with the aforementioned annotations into standard C99 code with
calls to the supporting runtime library."

This package is the Python analogue: it translates Python source whose
functions are annotated with ``#pragma css task ...`` *comments* (the
exact clause grammar of the paper) into standard Python that calls the
:mod:`repro.core` runtime — so a file written as a plain sequential
program, annotated only with comments, runs in parallel unmodified.

    #pragma css task input(a, b) inout(c)
    def sgemm_t(a, b, c):
        c += a @ b

    ...
    #pragma css barrier

Use :func:`translate_source` for text-to-text translation,
:func:`compile_annotated` / :func:`load_annotated_module` to get a live
module, or ``python -m repro.compiler in.py -o out.py`` from a shell.
"""

from .translate import (
    CompileError,
    compile_annotated,
    iter_task_pragmas,
    load_annotated_module,
    translate_source,
)

__all__ = [
    "CompileError",
    "compile_annotated",
    "iter_task_pragmas",
    "load_annotated_module",
    "translate_source",
]
