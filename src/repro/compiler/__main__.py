"""Command-line source-to-source translator.

Usage::

    python -m repro.compiler annotated.py            # print translation
    python -m repro.compiler annotated.py -o out.py  # write translation
    python -m repro.compiler annotated.py --run      # translate and exec
"""

from __future__ import annotations

import argparse
import sys

from .translate import CompileError, compile_annotated, translate_source


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler",
        description="Translate #pragma css annotated Python to runtime calls.",
    )
    parser.add_argument("input", help="annotated source file")
    parser.add_argument("-o", "--output", help="write translated source here")
    parser.add_argument(
        "--run", action="store_true",
        help="execute the translated module (its __name__ is '__main__')",
    )
    args = parser.parse_args(argv)

    with open(args.input, encoding="utf-8") as handle:
        source = handle.read()
    try:
        if args.run:
            compile_annotated(source, "__main__", filename=args.input)
            return 0
        translated = translate_source(source, filename=args.input)
    except CompileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(translated)
    else:
        sys.stdout.write(translated)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
