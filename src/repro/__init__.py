"""repro — a Python reproduction of SMP superscalar (SMPSs).

Reproduces "A Dependency-Aware Task-Based Programming Environment for
Multi-Core Architectures" (Perez, Badia, Labarta; IEEE Cluster 2008):
a task-based programming model with run-time dependency analysis,
register-style renaming, and a locality-aware work-stealing scheduler,
plus the machinery to regenerate every figure of the paper's
evaluation.  See README.md and DESIGN.md.

Quickstart::

    import numpy as np
    from repro import css_task, SmpssRuntime

    @css_task("input(a, b) inout(c)")
    def sgemm_t(a, b, c):
        c += a @ b

    A, B, C = (np.ones((64, 64), np.float32) for _ in range(3))
    with SmpssRuntime(num_workers=3) as rt:
        sgemm_t(A, B, C)
        rt.barrier()
"""

from .core import (
    CentralQueueScheduler,
    DependencyError,
    Direction,
    EdgeKind,
    InvocationError,
    PragmaError,
    RecordingRuntime,
    Region,
    RegionError,
    Representant,
    RepresentantTable,
    RuntimeConfig,
    SmpssRuntime,
    SmpssScheduler,
    TaskExecutionError,
    TaskGraph,
    Tracer,
    barrier,
    css_task,
    current_runtime,
    parse_pragma,
    record_program,
    wait_on,
)
from .mp import SharedArena, arena_array

__version__ = "1.0.0"

__all__ = [
    "CentralQueueScheduler",
    "DependencyError",
    "Direction",
    "EdgeKind",
    "InvocationError",
    "PragmaError",
    "RecordingRuntime",
    "Region",
    "RegionError",
    "Representant",
    "RepresentantTable",
    "RuntimeConfig",
    "SharedArena",
    "SmpssRuntime",
    "SmpssScheduler",
    "TaskExecutionError",
    "TaskGraph",
    "Tracer",
    "arena_array",
    "barrier",
    "css_task",
    "current_runtime",
    "parse_pragma",
    "record_program",
    "wait_on",
    "__version__",
]


def __getattr__(name: str):
    """Keep the top-level namespace deliberate.

    ``repro`` re-exports a curated surface (``__all__``); anything else
    must be imported from its home submodule.  Guessed names fail fast
    with a pointer instead of silently resolving to a submodule that an
    earlier import happened to load.
    """

    import difflib

    hints = difflib.get_close_matches(name, __all__, n=1)
    hint = f" (did you mean {hints[0]!r}?)" if hints else ""
    raise AttributeError(
        f"module 'repro' has no attribute {name!r}{hint}; the public "
        f"surface is repro.__all__ — submodule internals live under "
        f"repro.core / repro.sim / repro.obs / repro.bench / repro.check"
    )
