"""Critical-path and utilisation analysis of traces and graphs.

The questions the paper answers by staring at Paraver timelines
(Figures 6-7: scheduler locality; Figure 8: the small-block runtime-
overhead wall) are computed here directly:

* makespan breakdown — per-thread busy/idle time, utilisation;
* locality hit-rate — the fraction of tasks executed by the thread
  that released their last input dependency, i.e. how often the
  section III "own ready list" policy actually captured reuse;
* T₁/T∞ — work and span of the recorded DAG, with the greedy-scheduler
  bounds that sandwich any achievable makespan;
* per-task-type duration summaries.

Works over a live :class:`~repro.core.tracing.Tracer` (threaded or
virtual time) or over an exported Chrome trace JSON (the
``python -m repro.obs report trace.json`` path), so post-mortem
analysis does not need the producing process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..core.analysis import greedy_bounds, work_and_span
from ..core.tracing import EventKind, TraceEvent

__all__ = [
    "ThreadUsage",
    "TraceReport",
    "analyze_tracer",
    "analyze_events",
    "load_chrome_trace",
    "render_report",
    "runtime_report",
]


@dataclass
class ThreadUsage:
    """One thread's share of the makespan."""

    thread: int
    busy: float = 0.0
    tasks: int = 0
    steals: int = 0

    def idle(self, makespan: float) -> float:
        return max(makespan - self.busy, 0.0)


@dataclass
class TraceReport:
    """Everything the analyzer derives from one trace."""

    makespan: float = 0.0
    total_tasks: int = 0
    total_busy: float = 0.0
    threads: dict[int, ThreadUsage] = field(default_factory=dict)
    #: Tasks released by a worker completion (locality candidates) and
    #: the subset executed by that same releasing thread.
    locality_candidates: int = 0
    locality_hits: int = 0
    steals: int = 0
    renames: int = 0
    barrier_time: float = 0.0
    dropped_events: int = 0
    #: name -> {count, total, mean, min, max} (seconds)
    task_types: dict[str, dict] = field(default_factory=dict)
    #: Work/span of the recorded DAG, when a kept graph was supplied.
    work: Optional[float] = None
    span: Optional[float] = None
    bound_lower: Optional[float] = None
    bound_upper: Optional[float] = None

    @property
    def utilisation(self) -> float:
        n = len(self.threads)
        if not n or self.makespan <= 0:
            return 0.0
        return self.total_busy / (n * self.makespan)

    @property
    def locality_rate(self) -> float:
        if not self.locality_candidates:
            return 0.0
        return self.locality_hits / self.locality_candidates

    def busy_time_by_thread(self) -> dict[int, float]:
        return {tid: usage.busy for tid, usage in self.threads.items()}


def analyze_events(
    events: list[TraceEvent],
    num_threads: Optional[int] = None,
    dropped_events: int = 0,
) -> TraceReport:
    """Build a :class:`TraceReport` from a normalised event list."""

    report = TraceReport(dropped_events=dropped_events)
    starts: dict[int, TraceEvent] = {}
    released_by: dict[int, int] = {}  # task_id -> unlocking thread
    barrier_enter: Optional[float] = None
    t_min, t_max = None, None
    type_times: dict[str, list[float]] = {}
    for event in events:
        kind = event.kind
        if kind == EventKind.TASK_READY:
            if event.thread >= 0:
                released_by[event.task_id] = event.thread
        elif kind == EventKind.TASK_START:
            starts[event.task_id] = event
        elif kind == EventKind.TASK_END:
            begin = starts.pop(event.task_id, None)
            if begin is None:
                continue
            duration = event.time - begin.time
            usage = report.threads.setdefault(
                event.thread, ThreadUsage(event.thread)
            )
            usage.busy += duration
            usage.tasks += 1
            report.total_tasks += 1
            report.total_busy += duration
            type_times.setdefault(event.task_name, []).append(duration)
            t_min = begin.time if t_min is None else min(t_min, begin.time)
            t_max = event.time if t_max is None else max(t_max, event.time)
            releaser = released_by.get(event.task_id)
            if releaser is not None:
                report.locality_candidates += 1
                if releaser == event.thread:
                    report.locality_hits += 1
        elif kind == EventKind.STEAL:
            report.steals += 1
            usage = report.threads.setdefault(
                event.thread, ThreadUsage(event.thread)
            )
            usage.steals += 1
        elif kind == EventKind.RENAME:
            report.renames += 1
        elif kind == EventKind.BARRIER_ENTER:
            barrier_enter = event.time
        elif kind == EventKind.BARRIER_EXIT:
            if barrier_enter is not None:
                report.barrier_time += event.time - barrier_enter
                barrier_enter = None
    if t_min is not None and t_max is not None:
        report.makespan = t_max - t_min
    if num_threads is not None:
        for tid in range(num_threads):
            report.threads.setdefault(tid, ThreadUsage(tid))
    report.threads = dict(sorted(report.threads.items()))
    report.task_types = {
        name: {
            "count": len(times),
            "total": sum(times),
            "mean": sum(times) / len(times),
            "min": min(times),
            "max": max(times),
        }
        for name, times in sorted(type_times.items())
    }
    return report


def analyze_tracer(
    tracer,
    graph=None,
    num_threads: Optional[int] = None,
    cores: Optional[int] = None,
) -> TraceReport:
    """Analyze a live tracer; *graph* (kept) adds work/span bounds."""

    report = analyze_events(
        tracer.events,
        num_threads=num_threads,
        dropped_events=getattr(tracer, "dropped_events", 0),
    )
    if graph is not None and len(graph):
        weights = {
            name: summary["mean"] for name, summary in report.task_types.items()
        }
        if weights:
            weight = lambda task: weights.get(task.name, 0.0)  # noqa: E731
        else:
            weight = lambda _task: 1.0  # noqa: E731
        report.work, report.span, _ = work_and_span(graph, weight)
        p = cores or num_threads or len(report.threads) or 1
        report.bound_lower, report.bound_upper = greedy_bounds(
            report.work, report.span, p
        )
    return report


# ---------------------------------------------------------------------------
# Chrome trace loading (the ``python -m repro.obs report`` path)
# ---------------------------------------------------------------------------

_INSTANT_NAME_TO_KIND = {
    "task_added": EventKind.TASK_ADDED,
    "task_ready": EventKind.TASK_READY,
    "edge_added": EventKind.EDGE_ADDED,
    "steal": EventKind.STEAL,
    "rename": EventKind.RENAME,
    "barrier_enter": EventKind.BARRIER_ENTER,
    "barrier_exit": EventKind.BARRIER_EXIT,
    "write_back": EventKind.WRITE_BACK,
}


def load_chrome_trace(source) -> list[TraceEvent]:
    """Rebuild normalised events from a Chrome trace JSON.

    *source* is a path, a file object, or an already-parsed dict.
    Inverse of :func:`repro.obs.export.to_chrome_trace` — timestamps
    come back in seconds.
    """

    if isinstance(source, dict):
        doc = source
    elif hasattr(source, "read"):
        doc = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    records = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    events: list[TraceEvent] = []
    for rec in records:
        ph = rec.get("ph")
        if ph not in ("B", "E", "i", "I"):
            continue  # metadata and counters
        args = rec.get("args", {})
        time_s = float(rec.get("ts", 0.0)) / 1e6
        task_id = int(args.get("task_id", -1))
        tid = int(rec.get("tid", 0))
        if ph == "B":
            kind, thread, name = EventKind.TASK_START, tid, rec.get("name", "")
        elif ph == "E":
            kind, thread, name = EventKind.TASK_END, tid, rec.get("name", "")
        else:
            kind = _INSTANT_NAME_TO_KIND.get(rec.get("name"))
            if kind is None:
                continue
            # Instants carry the semantic thread (e.g. the releasing
            # thread of a ready event, -1 for "at submission") in args.
            thread = int(args.get("thread", tid))
            name = ""
        events.append(
            TraceEvent(
                time=time_s, kind=kind, task_id=task_id,
                task_name=name, thread=thread,
            )
        )
    events.sort(key=lambda e: e.time)
    return events


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_report(report: TraceReport, title: str = "trace report") -> str:
    """Human-readable text summary of a :class:`TraceReport`."""

    lines = [f"== {title} =="]
    lines.append(
        f"makespan {_fmt_s(report.makespan)}  tasks {report.total_tasks}  "
        f"utilisation {report.utilisation * 100:.1f}%"
    )
    lines.append(
        f"steals {report.steals}  renames {report.renames}  "
        f"barrier time {_fmt_s(report.barrier_time)}"
    )
    if report.locality_candidates:
        lines.append(
            f"locality hit-rate {report.locality_rate * 100:.1f}% "
            f"({report.locality_hits}/{report.locality_candidates} tasks ran "
            "on the thread that released their last input)"
        )
    if report.dropped_events:
        lines.append(
            f"WARNING: {report.dropped_events} events dropped "
            "(ring buffers overflowed; raise trace_buffer_size)"
        )
    if report.work is not None and report.span is not None:
        par = report.work / report.span if report.span else 0.0
        lines.append(
            f"T1 (work) {_fmt_s(report.work)}  "
            f"Tinf (span) {_fmt_s(report.span)}  "
            f"inherent parallelism {par:.1f}"
        )
        if report.bound_lower is not None:
            lines.append(
                f"greedy bounds: {_fmt_s(report.bound_lower)} <= makespan "
                f"<= {_fmt_s(report.bound_upper)}"
            )
    if report.threads:
        lines.append("per-thread:")
        for tid, usage in report.threads.items():
            idle = usage.idle(report.makespan)
            pct = (
                usage.busy / report.makespan * 100 if report.makespan > 0 else 0.0
            )
            lines.append(
                f"  thr {tid:2d}: busy {_fmt_s(usage.busy)} ({pct:5.1f}%)  "
                f"idle {_fmt_s(idle)}  tasks {usage.tasks:5d}  "
                f"steals {usage.steals}"
            )
    if report.task_types:
        lines.append("per task type:")
        for name, summary in report.task_types.items():
            lines.append(
                f"  {name:16s} count {summary['count']:6d}  "
                f"total {_fmt_s(summary['total'])}  "
                f"mean {_fmt_s(summary['mean'])}  "
                f"max {_fmt_s(summary['max'])}"
            )
    return "\n".join(lines)


def runtime_report(runtime, title: str = "runtime report") -> str:
    """Text summary for a runtime instance (threaded or simulated).

    Uses whatever the runtime has: a truthy tracer yields the full
    per-thread/locality analysis; a kept graph adds T₁/T∞ bounds; the
    metrics registry contributes analysis/barrier overhead lines.
    """

    tracer = getattr(runtime, "tracer", None)
    graph = getattr(runtime, "graph", None)
    keep = graph is not None and getattr(graph, "keep_finished", False)
    cores = getattr(runtime, "num_threads", None)
    if cores is None:
        machine = getattr(runtime, "machine", None)
        cores = machine.cores if machine is not None else None
    if tracer:
        report = analyze_tracer(
            tracer,
            graph=graph if keep else None,
            num_threads=cores,
            cores=cores,
        )
        text = render_report(report, title=title)
    else:
        text = f"== {title} ==\n(no trace recorded; run with trace=True)"
    metrics = getattr(runtime, "metrics", None)
    if metrics is not None and len(metrics):
        lines = ["metrics:"]
        snap = metrics.snapshot()
        for name in ("analysis_seconds", "barrier_wait_seconds"):
            value = snap.get(name)
            if isinstance(value, dict) and "count" in value:
                lines.append(
                    f"  {name}: count {value['count']}  "
                    f"mean {_fmt_s(value['mean'])}  max {_fmt_s(value['max'])}"
                )
        depth = snap.get("ready_queue_depth")
        if isinstance(depth, dict) and depth.get("count"):
            lines.append(
                f"  ready_queue_depth: mean {depth['mean']:.1f}  "
                f"max {depth['max']:.0f}"
            )
        for name, value in snap.items():
            if name.startswith("renaming."):
                lines.append(f"  {name}: {value}")
        scheduler_bits = [
            f"{key.split('.', 1)[1]}={value}"
            for key, value in snap.items()
            if key.startswith("scheduler.") and not isinstance(value, dict)
        ]
        if scheduler_bits:
            lines.append("  scheduler: " + "  ".join(scheduler_bits))
        quantile_lines = _task_duration_quantiles(metrics)
        if quantile_lines:
            lines.append("  task duration p50/p95/p99:")
            lines.extend(quantile_lines)
        if len(lines) > 1:
            text += "\n" + "\n".join(lines)
        backend = _backend_health_lines(runtime, snap)
        if backend:
            text += "\nbackend health:\n" + "\n".join(backend)
    return text


def _task_duration_quantiles(metrics) -> list[str]:
    """Per-task-type p50/p95/p99 lines from the live histogram objects.

    Quantiles need the histogram's raw buffer and bucket tallies, not
    the folded snapshot — so this reads the registry's metric objects
    directly (:meth:`HistogramMetric.quantile`).
    """

    from .metrics import HistogramMetric

    lines = []
    for metric in metrics:
        if (
            not isinstance(metric, HistogramMetric)
            or metric.name != "task_duration_seconds"
        ):
            continue
        labels = dict(metric.labels)
        task = labels.get("task", "<all>")
        p50, p95, p99 = (metric.quantile(q) for q in (0.5, 0.95, 0.99))
        if p50 is None:
            continue
        lines.append(
            f"    {task}: {_fmt_s(p50)} / {_fmt_s(p95)} / {_fmt_s(p99)}"
        )
    return sorted(lines)


def _backend_health_lines(runtime, snap: dict) -> list[str]:
    """The "backend health" report section.

    Surfaces the mp robustness counters (worker deaths, redispatches —
    recorded since the process backend landed, but never shown) plus
    worker liveness and any health-watchdog findings.
    """

    lines = []
    deaths = snap.get("mp.worker_deaths")
    redispatched = snap.get("mp.redispatched_tasks")
    if deaths is not None or redispatched is not None:
        mp = getattr(runtime, "_mp", None)
        alive_bit = ""
        if mp is not None:
            liveness = mp.liveness()
            alive = sum(1 for w in liveness if w["alive"])
            alive_bit = f"  workers alive: {alive}/{len(liveness)}"
        lines.append(
            f"  mp: worker_deaths={deaths or 0}  "
            f"redispatched_tasks={redispatched or 0}{alive_bit}"
        )
    monitor = getattr(runtime, "health", None)
    if monitor is not None:
        sample = monitor.last_sample
        age = sample.get("last_completion_age")
        age_bit = f"  last_completion_age={age:.2f}s" if age is not None else ""
        lines.append(
            f"  watchdog: findings={len(monitor.findings)}"
            f"{age_bit}  interval={monitor.interval}s"
        )
        for finding in monitor.findings[-5:]:
            lines.append(
                f"    [{finding.severity}] {finding.kind}: {finding.message}"
            )
    return lines
