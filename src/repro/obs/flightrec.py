"""Flight recorder: bounded recent-history ring, dumped on anomaly.

Long-running programs cannot afford ``trace=True`` (an event object per
scheduler operation, rings sized for whole runs) yet are exactly the
runs where a wedge three hours in must be diagnosable.  The flight
recorder is the always-on middle ground:

* the runtime appends **one plain tuple per completed task** to a
  bounded ``deque`` — ``(task_id, name, thread, end_time, duration)``.
  No ``TraceEvent`` construction and no locking at all: the append is
  GIL-atomic, each worker is the only writer of its ``busy`` slot, and
  the ring discards oldest-first, so memory is O(capacity) regardless
  of run length;
* the health watchdog appends **periodic metrics snapshots** to a
  second, smaller ring on its own thread (off the hot path entirely);
* :meth:`FlightRecorder.dump` reconstructs Chrome-trace ``B``/``E``
  pairs from the completion tuples (via the regular
  :func:`repro.obs.export.to_chrome_trace`) and writes the ring, the
  metrics history, the current wait graph (DOT) and any findings next
  to each other — one directory visit explains the last N seconds of a
  run that never had tracing on.

When the run *does* have tracing on, the dump prefers the real
tracer's events (richer: ready/steal/barrier instants); the completion
ring is still recorded in the metrics JSON either way.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import deque
from types import SimpleNamespace
from typing import Optional

from ..core.tracing import EventKind, TraceEvent

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded rings of recent completions and metrics snapshots.

    *capacity* bounds the completion ring (tuples, so ~100 bytes each);
    *snapshot_capacity* bounds the metrics-snapshot ring the watchdog
    feeds.  ``note_task`` is the only method on the runtime's hot path
    and runs with no lock held: ``deque.append`` is GIL-atomic,
    ``busy[thread]`` has the calling worker as its only writer, and
    the ``last_completion``/``completions`` scalars tolerate the rare
    lost race (they feed telemetry, not scheduling decisions — the
    watchdog detects progress via ``runtime.tasks_executed``).
    Everything else runs on watchdog/exposition threads and tolerates
    racy reads.
    """

    def __init__(self, num_threads: int, capacity: int = 4096,
                 snapshot_capacity: int = 64):
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._snapshots: deque = deque(maxlen=snapshot_capacity)
        #: Cumulative busy seconds per thread index (0 = main), the
        #: source for utilization-since-last-scrape gauges.
        self.busy = [0.0] * num_threads
        #: perf_counter of the most recent completion (0.0 = none yet).
        self.last_completion = 0.0
        #: Total completions noted (monotonic, unlike the bounded ring).
        self.completions = 0
        #: Dump serial number (suffixes filenames so repeated anomalies
        #: in one process never overwrite each other).
        self._dump_seq = 0

    # ------------------------------------------------------------------
    # hot path (called by the runtime's completion path, lock-free)
    # ------------------------------------------------------------------
    def note_task(self, task_id: int, name: str, thread: int,
                  end_time: float, duration: float) -> None:
        self._ring.append((task_id, name, thread, end_time, duration))
        if 0 <= thread < len(self.busy):
            self.busy[thread] += duration
        self.last_completion = end_time
        self.completions += 1

    # ------------------------------------------------------------------
    # watchdog side
    # ------------------------------------------------------------------
    def note_snapshot(self, snapshot: dict) -> None:
        """Record one periodic metrics/health sample (watchdog thread)."""

        self._snapshots.append(snapshot)

    def events(self) -> list[TraceEvent]:
        """Reconstruct ``TASK_START``/``TASK_END`` pairs from the ring.

        Start times are ``end_time - duration`` — exact for the task
        body itself, which is all the completion tuples ever claimed to
        record.
        """

        out = []
        for task_id, name, thread, end, duration in list(self._ring):
            out.append(TraceEvent(time=end - duration,
                                  kind=EventKind.TASK_START,
                                  task_id=task_id, task_name=name,
                                  thread=thread))
            out.append(TraceEvent(time=end, kind=EventKind.TASK_END,
                                  task_id=task_id, task_name=name,
                                  thread=thread))
        return out

    def recent(self, n: Optional[int] = None) -> list[tuple]:
        """The newest *n* completion tuples (all, if ``None``)."""

        items = list(self._ring)
        return items if n is None else items[-n:]

    def snapshots(self) -> list[dict]:
        """The retained watchdog snapshots, oldest first."""

        return list(self._snapshots)

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------
    def dump(self, directory: Optional[str] = None, *, runtime=None,
             findings: Optional[list] = None,
             reason: str = "manual") -> dict:
        """Write the flight-recorder state to *directory*; return paths.

        Files (``<stem>`` is ``flight-<pid>-<seq>``):

        * ``<stem>.trace.json``  — Chrome trace (Perfetto-loadable) of
          the completion ring, or of the real tracer when tracing is on;
        * ``<stem>.metrics.json`` — current registry snapshot, the
          watchdog's snapshot history, the raw completion ring, and the
          dump's reason/findings;
        * ``<stem>.waitgraph.dot`` — the current wait graph with blocked
          tasks annotated (only when *runtime* is given and has pending
          tasks).

        *directory* ``None`` falls back to the system temp directory —
        an anomaly dump must never fail because nobody configured a
        path.  Exceptions from individual writers are contained: a dump
        triggered *because* the runtime is wedged must not take the
        watchdog down with it.
        """

        from .export import to_chrome_trace  # local: avoid import cycle

        if directory is None:
            directory = tempfile.gettempdir()
        os.makedirs(directory, exist_ok=True)
        self._dump_seq += 1
        stem = f"flight-{os.getpid()}-{self._dump_seq}"
        paths = {"reason": reason, "directory": directory}

        tracer = getattr(runtime, "tracer", None) if runtime else None
        source = tracer if (tracer and getattr(tracer, "events", None)) \
            else SimpleNamespace(events=self.events())
        # Every file lands via write-to-temp + rename, so a concurrent
        # reader (or a monitoring agent watching the directory) never
        # sees a half-written document.
        trace_path = os.path.join(directory, f"{stem}.trace.json")
        try:
            with open(trace_path + ".tmp", "w", encoding="utf-8") as handle:
                json.dump(to_chrome_trace(source), handle)
            os.replace(trace_path + ".tmp", trace_path)
            paths["trace"] = trace_path
        except Exception as exc:  # noqa: BLE001 - diagnostic best effort
            paths["trace_error"] = str(exc)

        metrics_path = os.path.join(directory, f"{stem}.metrics.json")
        payload = {
            "reason": reason,
            "wall_time": time.time(),
            "completions": self.completions,
            "busy_seconds": list(self.busy),
            "ring": [list(item) for item in self._ring],
            "snapshots": list(self._snapshots),
            "findings": [
                f.as_dict() if hasattr(f, "as_dict") else f
                for f in (findings or [])
            ],
        }
        registry = getattr(runtime, "metrics", None) if runtime else None
        if registry is not None:
            try:
                payload["metrics"] = registry.snapshot()
            except Exception as exc:  # noqa: BLE001
                payload["metrics_error"] = str(exc)
        try:
            with open(metrics_path + ".tmp", "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, default=str)
            os.replace(metrics_path + ".tmp", metrics_path)
            paths["metrics"] = metrics_path
        except Exception as exc:  # noqa: BLE001
            paths["metrics_error"] = str(exc)

        if runtime is not None:
            from .health import wait_graph_dot  # local: avoid cycle

            dot_path = os.path.join(directory, f"{stem}.waitgraph.dot")
            try:
                dot = wait_graph_dot(runtime)
                if dot is not None:
                    with open(
                        dot_path + ".tmp", "w", encoding="utf-8"
                    ) as handle:
                        handle.write(dot)
                        handle.write("\n")
                    os.replace(dot_path + ".tmp", dot_path)
                    paths["waitgraph"] = dot_path
            except Exception as exc:  # noqa: BLE001
                paths["waitgraph_error"] = str(exc)
        return paths
