"""Differential trace analysis: what got slower between two runs, and why.

The paper's evaluation is entirely comparative — SMPSs against serial
and fork-join baselines, across block sizes and thread counts — and
TEMANEJO-style debugging of these runtimes is comparative too: you
stare at the run that regressed *next to* the run that did not.  This
module is that workflow over the artifacts the repo already produces:

* **trace diff** (`diff_traces`) — two event lists (live tracers or
  exported Chrome trace JSONs) become a makespan-delta attribution:
  per-task-type duration shifts with bootstrap confidence intervals
  over the per-task samples, the critical-path change (which task
  types entered or left the chain that ends at the makespan), and a
  scheduler-behaviour diff (steals, locality hit-rate, utilisation,
  barrier time);
* **metrics diff** (`diff_metrics`) — two ``*.metrics.json`` snapshots
  become per-series deltas (queue depths, analysis overhead, renames);
* **figure diff** (`diff_figures`) — two saved ``FigureResult`` JSONs
  become per-series per-point deltas, the form ``repro.bench compare``
  gates on;
* **task-graph diff** (`diff_task_graphs`) — a ``repro.staticgraph``
  skeleton (``python -m repro.check flow --format json``) against a
  ``repro.recording`` document (or any two of either) becomes a
  task/edge/stream delta: the static analyser's predicted graph held
  against the one the recording runtime actually built;
* **side-by-side exports** — one Chrome trace with run A and run B as
  two processes (`write_diff_chrome_trace`), and a DOT rendering of
  both critical chains with entered/left nodes highlighted
  (`write_diff_dot`).

The critical chain is reconstructed from the trace alone: walking back
from the last-finishing task, each step follows the ``task_ready``
event's releasing thread to the task whose completion on that thread
released the dependency.  No kept graph is needed, so the diff works on
any two exported traces.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.tracing import EventKind, TraceEvent
from .analyze import TraceReport, analyze_events

__all__ = [
    "ChainLink",
    "TypeDelta",
    "BehaviorDelta",
    "CriticalChainDiff",
    "TraceDiff",
    "MetricDelta",
    "FigurePointDelta",
    "GraphDiff",
    "collect_task_durations",
    "critical_chain",
    "bootstrap_mean_delta",
    "diff_traces",
    "diff_metrics",
    "diff_figures",
    "diff_task_graphs",
    "render_trace_diff",
    "render_metrics_diff",
    "render_figure_diff",
    "render_graph_diff",
    "diff_chrome_trace",
    "write_diff_chrome_trace",
    "diff_to_dot",
    "write_diff_dot",
]


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------

def collect_task_durations(events: Sequence[TraceEvent]) -> dict[str, list[float]]:
    """Per-task-type duration samples (seconds) from an event list."""

    starts: dict[int, TraceEvent] = {}
    samples: dict[str, list[float]] = {}
    for event in events:
        if event.kind == EventKind.TASK_START:
            starts[event.task_id] = event
        elif event.kind == EventKind.TASK_END:
            begin = starts.pop(event.task_id, None)
            if begin is not None:
                samples.setdefault(event.task_name, []).append(
                    event.time - begin.time
                )
    return samples


@dataclass(frozen=True)
class ChainLink:
    """One task on the reconstructed critical chain."""

    task_id: int
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def critical_chain(events: Sequence[TraceEvent]) -> list[ChainLink]:
    """The dependency chain that ends at the makespan, from events only.

    Walk back from the last-finishing task: its ``task_ready`` event
    names the thread whose completion released its last input
    dependency; the latest task ending on that thread at or before the
    ready time is the predecessor.  A task ready at submission
    (releasing thread ``-1``) terminates the walk.  Returned first to
    last, so ``chain[-1].end`` is the makespan's right edge.
    """

    intervals: dict[int, ChainLink] = {}
    ready: dict[int, tuple[float, int]] = {}
    starts: dict[int, TraceEvent] = {}
    for event in events:
        if event.kind == EventKind.TASK_START:
            starts[event.task_id] = event
        elif event.kind == EventKind.TASK_END:
            begin = starts.pop(event.task_id, None)
            if begin is not None:
                intervals[event.task_id] = ChainLink(
                    event.task_id, event.task_name, begin.time, event.time
                )
        elif event.kind == EventKind.TASK_READY:
            ready[event.task_id] = (event.time, event.thread)
    if not intervals:
        return []
    ends_by_thread: dict[int, list[tuple[float, int]]] = {}
    end_thread: dict[int, int] = {}
    for event in events:
        if event.kind == EventKind.TASK_END and event.task_id in intervals:
            end_thread[event.task_id] = event.thread
    for task_id, link in intervals.items():
        thread = end_thread.get(task_id, -1)
        ends_by_thread.setdefault(thread, []).append((link.end, task_id))
    for entries in ends_by_thread.values():
        entries.sort()

    span = max(l.end for l in intervals.values()) - min(
        l.start for l in intervals.values()
    )
    eps = span * 1e-9 + 1e-12

    current = max(intervals.values(), key=lambda l: l.end)
    chain = [current]
    visited = {current.task_id}
    while True:
        released = ready.get(current.task_id)
        if released is None or released[1] < 0:
            break
        entries = ends_by_thread.get(released[1])
        if not entries:
            break
        idx = bisect_right(entries, (released[0] + eps, float("inf"))) - 1
        predecessor = None
        while idx >= 0:
            _end, task_id = entries[idx]
            if task_id not in visited:
                predecessor = intervals[task_id]
                break
            idx -= 1
        if predecessor is None:
            break
        chain.append(predecessor)
        visited.add(predecessor.task_id)
        current = predecessor
    chain.reverse()
    return chain


def bootstrap_mean_delta(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap CI for ``mean(b) - mean(a)``; deterministic given *seed*.

    Resamples each side with replacement ``n_boot`` times and returns
    the percentile interval of the mean differences.
    """

    import numpy as np

    a = np.asarray(list(samples_a), dtype=float)
    b = np.asarray(list(samples_b), dtype=float)
    if not len(a) or not len(b):
        raise ValueError("bootstrap needs non-empty samples on both sides")
    rng = np.random.default_rng(seed)
    means_a = a[rng.integers(0, len(a), size=(n_boot, len(a)))].mean(axis=1)
    means_b = b[rng.integers(0, len(b), size=(n_boot, len(b)))].mean(axis=1)
    deltas = np.sort(means_b - means_a)
    alpha = (1.0 - confidence) / 2.0
    lo = deltas[int(alpha * (n_boot - 1))]
    hi = deltas[int((1.0 - alpha) * (n_boot - 1))]
    return float(lo), float(hi)


# ---------------------------------------------------------------------------
# the trace diff
# ---------------------------------------------------------------------------

@dataclass
class TypeDelta:
    """One task type's contribution to the makespan delta."""

    name: str
    count_a: int
    count_b: int
    total_a: float
    total_b: float
    mean_a: float
    mean_b: float
    #: bootstrap CI on mean_b - mean_a (None when a side has no samples)
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None

    @property
    def delta_total(self) -> float:
        return self.total_b - self.total_a

    @property
    def delta_mean(self) -> float:
        return self.mean_b - self.mean_a

    @property
    def significant(self) -> bool:
        """True when the CI excludes zero (or a side is new/gone)."""

        if self.ci_low is None or self.ci_high is None:
            return self.delta_total != 0.0
        return self.ci_low > 0.0 or self.ci_high < 0.0


@dataclass
class BehaviorDelta:
    """One scheduler-behaviour number, before and after."""

    name: str
    a: float
    b: float
    unit: str = ""

    @property
    def delta(self) -> float:
        return self.b - self.a


@dataclass
class CriticalChainDiff:
    """Composition change of the makespan-ending dependency chain."""

    chain_a: list[ChainLink]
    chain_b: list[ChainLink]
    #: task types with more instances on B's chain than A's (count delta)
    entered: dict[str, int] = field(default_factory=dict)
    #: task types with fewer instances on B's chain (count delta)
    left: dict[str, int] = field(default_factory=dict)
    #: per-type time spent on the chain, A and B
    time_on_chain_a: dict[str, float] = field(default_factory=dict)
    time_on_chain_b: dict[str, float] = field(default_factory=dict)

    @property
    def length_a(self) -> float:
        return sum(l.duration for l in self.chain_a)

    @property
    def length_b(self) -> float:
        return sum(l.duration for l in self.chain_b)


@dataclass
class TraceDiff:
    """Everything `diff_traces` derives from two runs."""

    report_a: TraceReport
    report_b: TraceReport
    types: list[TypeDelta]
    chain: CriticalChainDiff
    behavior: list[BehaviorDelta]

    @property
    def makespan_delta(self) -> float:
        return self.report_b.makespan - self.report_a.makespan

    def top_regressors(self, n: int = 3) -> list[TypeDelta]:
        """Task types ranked by total-busy-time growth."""

        return sorted(self.types, key=lambda t: -t.delta_total)[:n]


def _chain_diff(
    events_a: Sequence[TraceEvent], events_b: Sequence[TraceEvent]
) -> CriticalChainDiff:
    chain_a = critical_chain(events_a)
    chain_b = critical_chain(events_b)
    counts_a = Counter(l.name for l in chain_a)
    counts_b = Counter(l.name for l in chain_b)
    entered = {
        name: counts_b[name] - counts_a.get(name, 0)
        for name in counts_b
        if counts_b[name] > counts_a.get(name, 0)
    }
    left = {
        name: counts_a[name] - counts_b.get(name, 0)
        for name in counts_a
        if counts_a[name] > counts_b.get(name, 0)
    }
    time_a: dict[str, float] = {}
    for link in chain_a:
        time_a[link.name] = time_a.get(link.name, 0.0) + link.duration
    time_b: dict[str, float] = {}
    for link in chain_b:
        time_b[link.name] = time_b.get(link.name, 0.0) + link.duration
    return CriticalChainDiff(
        chain_a, chain_b, entered, left, time_a, time_b
    )


def diff_traces(
    events_a: Sequence[TraceEvent],
    events_b: Sequence[TraceEvent],
    n_boot: int = 2000,
    seed: int = 0,
) -> TraceDiff:
    """Attribute the makespan delta between two runs' event lists."""

    report_a = analyze_events(list(events_a))
    report_b = analyze_events(list(events_b))
    samples_a = collect_task_durations(events_a)
    samples_b = collect_task_durations(events_b)

    types: list[TypeDelta] = []
    for name in sorted(set(samples_a) | set(samples_b)):
        a = samples_a.get(name, [])
        b = samples_b.get(name, [])
        ci_low = ci_high = None
        if a and b and n_boot > 0:
            ci_low, ci_high = bootstrap_mean_delta(
                a, b, n_boot=n_boot, seed=seed
            )
        types.append(
            TypeDelta(
                name=name,
                count_a=len(a),
                count_b=len(b),
                total_a=sum(a),
                total_b=sum(b),
                mean_a=sum(a) / len(a) if a else 0.0,
                mean_b=sum(b) / len(b) if b else 0.0,
                ci_low=ci_low,
                ci_high=ci_high,
            )
        )
    types.sort(key=lambda t: -abs(t.delta_total))

    behavior = [
        BehaviorDelta("utilisation", report_a.utilisation, report_b.utilisation, "%"),
        BehaviorDelta(
            "locality hit-rate", report_a.locality_rate, report_b.locality_rate, "%"
        ),
        BehaviorDelta("steals", report_a.steals, report_b.steals),
        BehaviorDelta("renames", report_a.renames, report_b.renames),
        BehaviorDelta(
            "barrier time", report_a.barrier_time, report_b.barrier_time, "s"
        ),
        BehaviorDelta("tasks", report_a.total_tasks, report_b.total_tasks),
        BehaviorDelta("threads", len(report_a.threads), len(report_b.threads)),
    ]
    return TraceDiff(
        report_a=report_a,
        report_b=report_b,
        types=types,
        chain=_chain_diff(events_a, events_b),
        behavior=behavior,
    )


# ---------------------------------------------------------------------------
# metrics snapshot diff
# ---------------------------------------------------------------------------

@dataclass
class MetricDelta:
    name: str
    a: Optional[float]
    b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a


def _flatten_metrics(snapshot: dict) -> dict[str, float]:
    """Flatten a ``MetricsRegistry.snapshot()`` into scalar series.

    Histogram dicts contribute their ``count``/``mean``/``max``;
    labelled series keep their ``name{label}`` spelling.
    """

    flat: dict[str, float] = {}

    def emit(name: str, value) -> None:
        if isinstance(value, dict):
            if "count" in value and "mean" in value:  # histogram snapshot
                flat[f"{name}.count"] = float(value["count"])
                flat[f"{name}.mean"] = float(value["mean"])
                if value.get("max") is not None:
                    flat[f"{name}.max"] = float(value["max"])
            else:  # labelled series: {label_repr: value-or-histogram}
                for label, sub in value.items():
                    emit(f"{name}{{{label}}}", sub)
        else:
            try:
                flat[name] = float(value)
            except (TypeError, ValueError):
                pass

    for key, value in snapshot.items():
        emit(key, value)
    return flat


def diff_metrics(snapshot_a: dict, snapshot_b: dict) -> list[MetricDelta]:
    """Per-series deltas of two metrics snapshots, biggest movers first."""

    flat_a = _flatten_metrics(snapshot_a)
    flat_b = _flatten_metrics(snapshot_b)
    out = [
        MetricDelta(name, flat_a.get(name), flat_b.get(name))
        for name in sorted(set(flat_a) | set(flat_b))
    ]

    def magnitude(d: MetricDelta) -> float:
        if d.delta is None:
            return float("inf")  # appeared/vanished series first
        base = abs(d.a) if d.a else 1.0
        return abs(d.delta) / base

    out.sort(key=magnitude, reverse=True)
    return out


# ---------------------------------------------------------------------------
# figure JSON diff
# ---------------------------------------------------------------------------

@dataclass
class FigurePointDelta:
    series: str
    x: object
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def pct(self) -> float:
        return self.delta / abs(self.a) * 100.0 if self.a else float("inf")


def diff_figures(doc_a: dict, doc_b: dict) -> list[FigurePointDelta]:
    """Per-series per-point deltas of two saved figure documents.

    Accepts the dict form of ``FigureResult.to_json`` (or a
    ``FigureResult`` itself); only series labels and x values present
    in both figures are compared.
    """

    def as_doc(doc) -> dict:
        if hasattr(doc, "to_json"):
            return json.loads(doc.to_json())
        return doc

    doc_a, doc_b = as_doc(doc_a), as_doc(doc_b)
    x_a, x_b = list(doc_a.get("x", [])), list(doc_b.get("x", []))
    common_x = [x for x in x_a if x in x_b]
    out: list[FigurePointDelta] = []
    for label, values_a in doc_a.get("series", {}).items():
        values_b = doc_b.get("series", {}).get(label)
        if values_b is None:
            continue
        for x in common_x:
            out.append(
                FigurePointDelta(
                    label, x,
                    float(values_a[x_a.index(x)]),
                    float(values_b[x_b.index(x)]),
                )
            )
    return out


# ---------------------------------------------------------------------------
# task-graph diff (static skeleton vs recording)
# ---------------------------------------------------------------------------

@dataclass
class GraphDiff:
    """Structural delta between two task-graph documents.

    Task identity is positional: both ``repro.staticgraph`` (the flow
    checker's skeleton) and ``repro.recording`` documents number tasks
    from 1 in submission order, so task *i* in A corresponds to task
    *i* in B and every divergence is attributable to a concrete
    submission.
    """

    tasks_a: int
    tasks_b: int
    #: (task_id, name_in_a, name_in_b) where the same position differs.
    name_mismatches: list[tuple[int, str, str]]
    #: tasks present only in the longer document, as (id, name).
    extra_a: list[tuple[int, str]]
    extra_b: list[tuple[int, str]]
    #: edges as (pred, succ, kind) present on one side only.
    edges_only_a: list[tuple[int, int, str]]
    edges_only_b: list[tuple[int, int, str]]
    #: same (pred, succ) pair, different dependence kind.
    kind_changes: list[tuple[int, int, str, str]]
    edges_a: int
    edges_b: int
    barriers_a: int
    barriers_b: int
    waits_a: int
    waits_b: int
    #: rename counts; recordings do not carry one (None).
    renames_a: Optional[int]
    renames_b: Optional[int]
    truncated_a: bool
    truncated_b: bool

    @property
    def identical(self) -> bool:
        """True when tasks, edges, and stream sync events all match."""

        return not (
            self.name_mismatches or self.extra_a or self.extra_b
            or self.edges_only_a or self.edges_only_b or self.kind_changes
            or self.barriers_a != self.barriers_b
            or self.waits_a != self.waits_b
        )


def _graph_doc(doc: dict) -> dict:
    # `python -m repro.check flow --format json` wraps the skeleton in
    # {"findings": [...], "graph": {...}}; unwrap transparently.
    inner = doc.get("graph")
    if isinstance(inner, dict) and "tasks" in inner:
        return inner
    return doc


def diff_task_graphs(doc_a: dict, doc_b: dict) -> GraphDiff:
    """Diff two task-graph documents — static skeleton and/or recording.

    Accepts any mix of ``repro.staticgraph`` documents (from
    ``python -m repro.check flow --format json``, wrapper tolerated)
    and ``repro.recording`` documents
    (:meth:`RecordedProgram.to_json_dict`).  The two formats share the
    ``tasks``/``edges``/``stream`` array layout precisely so that the
    flow checker's prediction can be held against what the recording
    runtime actually built: a clean diff validates the static
    analysis, and any divergence points at the first submission whose
    dependences the abstract interpreter got wrong.
    """

    doc_a, doc_b = _graph_doc(doc_a), _graph_doc(doc_b)

    def labels(doc) -> list[tuple[int, str]]:
        out = []
        for row in doc.get("tasks", []):
            tid, name = int(row[0]), str(row[1])
            if len(row) > 2 and row[2]:
                name += " [hp]"
            out.append((tid, name))
        return out

    tasks_a, tasks_b = labels(doc_a), labels(doc_b)
    by_id_a, by_id_b = dict(tasks_a), dict(tasks_b)
    mismatches = [
        (tid, by_id_a[tid], by_id_b[tid])
        for tid in sorted(set(by_id_a) & set(by_id_b))
        if by_id_a[tid] != by_id_b[tid]
    ]
    extra_a = [(t, n) for t, n in tasks_a if t not in by_id_b]
    extra_b = [(t, n) for t, n in tasks_b if t not in by_id_a]

    def edge_map(doc) -> dict[tuple[int, int], str]:
        return {
            (int(p), int(s)): str(kind)
            for p, s, kind in doc.get("edges", [])
        }

    ea, eb = edge_map(doc_a), edge_map(doc_b)
    edges_only_a = sorted((p, s, k) for (p, s), k in ea.items()
                          if (p, s) not in eb)
    edges_only_b = sorted((p, s, k) for (p, s), k in eb.items()
                          if (p, s) not in ea)
    kind_changes = sorted(
        (p, s, ea[p, s], eb[p, s])
        for (p, s) in set(ea) & set(eb)
        if ea[p, s] != eb[p, s]
    )

    def stream_counts(doc) -> tuple[int, int]:
        barriers = waits = 0
        for event in doc.get("stream", []):
            if event and event[0] == "barrier":
                barriers += 1
            elif event and event[0] == "wait":
                waits += 1
        return barriers, waits

    barriers_a, waits_a = stream_counts(doc_a)
    barriers_b, waits_b = stream_counts(doc_b)

    def renames(doc) -> Optional[int]:
        value = doc.get("renames")
        return None if value is None else int(value)

    return GraphDiff(
        tasks_a=len(tasks_a), tasks_b=len(tasks_b),
        name_mismatches=mismatches, extra_a=extra_a, extra_b=extra_b,
        edges_only_a=edges_only_a, edges_only_b=edges_only_b,
        kind_changes=kind_changes, edges_a=len(ea), edges_b=len(eb),
        barriers_a=barriers_a, barriers_b=barriers_b,
        waits_a=waits_a, waits_b=waits_b,
        renames_a=renames(doc_a), renames_b=renames(doc_b),
        truncated_a=bool(doc_a.get("truncated")),
        truncated_b=bool(doc_b.get("truncated")),
    )


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _fmt_s(seconds: float) -> str:
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    if seconds >= 1.0:
        return f"{sign}{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{sign}{seconds * 1e3:.2f}ms"
    return f"{sign}{seconds * 1e6:.1f}us"


def _pct(new: float, old: float) -> str:
    if not old:
        return "n/a"
    return f"{(new - old) / abs(old) * 100.0:+.1f}%"


def render_trace_diff(
    diff: TraceDiff, label_a: str = "A", label_b: str = "B"
) -> str:
    """Human-readable attribution report for a :class:`TraceDiff`."""

    ra, rb = diff.report_a, diff.report_b
    lines = [f"== trace diff: {label_a} -> {label_b} =="]
    lines.append(
        f"makespan {_fmt_s(ra.makespan)} -> {_fmt_s(rb.makespan)}  "
        f"({_fmt_s(diff.makespan_delta)}, {_pct(rb.makespan, ra.makespan)})"
    )
    lines.append("")
    lines.append("per task type (sorted by |delta total busy|):")
    lines.append(
        "  type              count A->B      mean A -> mean B        "
        "delta mean (95% CI)       delta total"
    )
    for t in diff.types:
        if t.ci_low is not None:
            ci = f"[{_fmt_s(t.ci_low)}, {_fmt_s(t.ci_high)}]"
            mark = " *" if t.significant else ""
        else:
            ci = "(new)" if not t.count_a else "(gone)"
            mark = " *"
        lines.append(
            f"  {t.name:16s} {t.count_a:5d}->{t.count_b:<5d} "
            f"{_fmt_s(t.mean_a):>10s} -> {_fmt_s(t.mean_b):<10s} "
            f"{_fmt_s(t.delta_mean):>10s} {ci:24s} "
            f"{_fmt_s(t.delta_total):>10s}{mark}"
        )
    lines.append("  (* = significant: CI excludes 0, or type appeared/vanished)")

    chain = diff.chain
    lines.append("")
    lines.append("critical path (trace-reconstructed chain to the makespan):")
    lines.append(
        f"  {label_a}: {len(chain.chain_a)} tasks, {_fmt_s(chain.length_a)}"
        f"   {label_b}: {len(chain.chain_b)} tasks, {_fmt_s(chain.length_b)}"
        f"   ({_fmt_s(chain.length_b - chain.length_a)})"
    )
    if chain.entered:
        parts = ", ".join(f"{n} x{c}" for n, c in sorted(chain.entered.items()))
        lines.append(f"  entered the path: {parts}")
    if chain.left:
        parts = ", ".join(f"{n} x{c}" for n, c in sorted(chain.left.items()))
        lines.append(f"  left the path:    {parts}")
    if not chain.entered and not chain.left:
        lines.append("  composition unchanged")
    on_chain = sorted(
        set(chain.time_on_chain_a) | set(chain.time_on_chain_b)
    )
    for name in on_chain:
        a = chain.time_on_chain_a.get(name, 0.0)
        b = chain.time_on_chain_b.get(name, 0.0)
        lines.append(
            f"  time on path: {name:16s} {_fmt_s(a):>10s} -> {_fmt_s(b):<10s}"
            f" ({_fmt_s(b - a)})"
        )

    lines.append("")
    lines.append("scheduler behaviour:")
    for b in diff.behavior:
        if b.unit == "%":
            lines.append(
                f"  {b.name:18s} {b.a * 100:6.1f}% -> {b.b * 100:6.1f}%"
                f"  ({(b.b - b.a) * 100:+.1f} pts)"
            )
        elif b.unit == "s":
            lines.append(
                f"  {b.name:18s} {_fmt_s(b.a):>9s} -> {_fmt_s(b.b):<9s}"
                f"  ({_fmt_s(b.delta)})"
            )
        else:
            lines.append(
                f"  {b.name:18s} {b.a:9.0f} -> {b.b:<9.0f}  ({b.delta:+.0f})"
            )
    return "\n".join(lines)


def render_metrics_diff(
    deltas: list[MetricDelta],
    label_a: str = "A",
    label_b: str = "B",
    limit: int = 40,
) -> str:
    lines = [f"== metrics diff: {label_a} -> {label_b} =="]
    shown = 0
    for d in deltas:
        if d.a is not None and d.b is not None and d.a == d.b:
            continue
        if shown >= limit:
            lines.append(f"  ... ({len(deltas) - shown} more series)")
            break
        a = "absent" if d.a is None else f"{d.a:g}"
        b = "absent" if d.b is None else f"{d.b:g}"
        suffix = "" if d.delta is None else f"  ({d.delta:+g})"
        lines.append(f"  {d.name:44s} {a:>12s} -> {b:<12s}{suffix}")
        shown += 1
    if shown == 0:
        lines.append("  (no series changed)")
    return "\n".join(lines)


def render_figure_diff(
    deltas: list[FigurePointDelta],
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    lines = [f"== figure diff: {label_a} -> {label_b} =="]
    if not deltas:
        lines.append("  (no comparable series/points)")
        return "\n".join(lines)
    for d in deltas:
        lines.append(
            f"  {d.series:28s} @ {str(d.x):>6s}: {d.a:10.3f} -> {d.b:<10.3f}"
            f" ({d.pct:+.1f}%)"
        )
    return "\n".join(lines)


def render_graph_diff(
    diff: GraphDiff,
    label_a: str = "A",
    label_b: str = "B",
    limit: int = 25,
) -> str:
    lines = [f"== task-graph diff: {label_a} -> {label_b} =="]
    lines.append(f"  tasks:    {diff.tasks_a} -> {diff.tasks_b}")
    lines.append(f"  edges:    {diff.edges_a} -> {diff.edges_b}")
    lines.append(
        f"  barriers: {diff.barriers_a} -> {diff.barriers_b}"
        f"    waits: {diff.waits_a} -> {diff.waits_b}"
    )
    if diff.renames_a is not None or diff.renames_b is not None:
        fmt = lambda r: "n/a" if r is None else str(r)  # noqa: E731
        lines.append(
            f"  renames:  {fmt(diff.renames_a)} -> {fmt(diff.renames_b)}"
        )
    for side, flag in ((label_a, diff.truncated_a),
                       (label_b, diff.truncated_b)):
        if flag:
            lines.append(f"  note: {side} is a truncated skeleton "
                         "(analysis budget hit)")

    def section(title: str, rows: list[str]) -> None:
        if not rows:
            return
        lines.append(f"  {title} ({len(rows)}):")
        lines.extend(f"    {row}" for row in rows[:limit])
        if len(rows) > limit:
            lines.append(f"    ... ({len(rows) - limit} more)")

    section("tasks renamed", [
        f"#{tid}: {a} -> {b}" for tid, a, b in diff.name_mismatches
    ])
    section(f"tasks only in {label_a}", [
        f"#{tid} {name}" for tid, name in diff.extra_a
    ])
    section(f"tasks only in {label_b}", [
        f"#{tid} {name}" for tid, name in diff.extra_b
    ])
    section(f"edges only in {label_a}", [
        f"{p} -> {s} [{k}]" for p, s, k in diff.edges_only_a
    ])
    section(f"edges only in {label_b}", [
        f"{p} -> {s} [{k}]" for p, s, k in diff.edges_only_b
    ])
    section("edge kind changed", [
        f"{p} -> {s}: {ka} -> {kb}" for p, s, ka, kb in diff.kind_changes
    ])
    if diff.identical:
        lines.append("  task graphs are structurally identical")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# side-by-side exports
# ---------------------------------------------------------------------------

class _EventHolder:
    """Duck-typed tracer for :func:`repro.obs.export.to_chrome_trace`."""

    def __init__(self, events):
        self.events = list(events)


def diff_chrome_trace(
    events_a: Sequence[TraceEvent],
    events_b: Sequence[TraceEvent],
    label_a: str = "run A",
    label_b: str = "run B",
) -> dict:
    """One Chrome trace document with the two runs as two processes.

    Open at ui.perfetto.dev: process 1 is run A, process 2 is run B,
    both starting at ``ts == 0`` so the timelines align for visual
    comparison.
    """

    from .export import to_chrome_trace

    doc_a = to_chrome_trace(_EventHolder(events_a), pid=1)
    doc_b = to_chrome_trace(_EventHolder(events_b), pid=2)
    records = []
    for doc, pid, label in ((doc_a, 1, label_a), (doc_b, 2, label_b)):
        for rec in doc["traceEvents"]:
            if rec.get("ph") == "M" and rec.get("name") == "process_name":
                rec = dict(rec, args={"name": label})
            records.append(rec)
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.diff", "runs": [label_a, label_b]},
    }


def write_diff_chrome_trace(
    events_a, events_b, path: str, label_a: str = "run A", label_b: str = "run B"
) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(diff_chrome_trace(events_a, events_b, label_a, label_b), handle)
    return path


def diff_to_dot(
    diff: TraceDiff, label_a: str = "run A", label_b: str = "run B"
) -> str:
    """Both critical chains as one DOT graph (clusters A and B).

    Task types that *entered* the path in B are salmon, types that
    *left* it (present only on A's chain) are lightblue, unchanged
    types grey — a TEMANEJO-style picture of what the scheduler/graph
    change did to the path.
    """

    entered = set(diff.chain.entered)
    left = set(diff.chain.left)

    def colour(name: str, side: str) -> str:
        if side == "b" and name in entered:
            return "salmon"
        if side == "a" and name in left:
            return "lightblue"
        return "lightgrey"

    lines = ["digraph critical_path_diff {", "  node [style=filled];",
             "  rankdir=LR;"]
    for side, label, chain in (
        ("a", label_a, diff.chain.chain_a),
        ("b", label_b, diff.chain.chain_b),
    ):
        lines.append(f"  subgraph cluster_{side} {{")
        lines.append(f'    label="{label}";')
        previous = None
        for link in chain:
            node = f"{side}{link.task_id}"
            lines.append(
                f'    {node} [label="{link.name}\\n{link.task_id} '
                f'({_fmt_s(link.duration)})", '
                f"fillcolor={colour(link.name, side)}];"
            )
            if previous is not None:
                lines.append(f"    {previous} -> {node};")
            previous = node
        lines.append("  }")
    lines.append(
        '  legend [shape=box, label="salmon: entered path\\n'
        'lightblue: left path\\ngrey: unchanged"];'
    )
    lines.append("}")
    return "\n".join(lines)


def write_diff_dot(diff: TraceDiff, path: str, **kwargs) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(diff_to_dot(diff, **kwargs))
        handle.write("\n")
    return path
