"""A small process-local metrics registry (counters, gauges, histograms).

The paper's authors diagnosed their runtime with Paraver traces
(section VII.A); traces answer *when* questions, but the recurring
*how much* questions — per-task-type durations, analysis overhead,
barrier wait, steal/rename counts, ready-queue depths, renaming memory
footprint — want aggregates that survive when full tracing is off.
This registry is that aggregate layer: the runtimes own one each and
publish into a process-wide default registry on shutdown, which the
benchmark harness snapshots into a ``*.metrics.json`` next to each
figure file.

Design notes:

* metrics are keyed by ``(name, sorted labels)``, Prometheus-style, so
  ``registry.histogram("task_duration_seconds", task="sgemm_t")`` and
  the same name with ``task="strsm_t"`` are separate series;
* lookup returns the *same* object every time — hot paths cache the
  returned metric and pay one attribute increment per event;
* histograms bucket by power of two (``math.frexp`` exponent), cheap
  enough for per-task observation and sufficient for the order-of-
  magnitude questions (is analysis 1us or 100us?) the paper's section
  VI block-size discussion turns on.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Iterator, Optional

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "default_metrics",
    "reset_default_metrics",
]


class CounterMetric:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class GaugeMetric:
    """A value that goes up and down (queue depth, live bytes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def snapshot(self):
        return self.value


class HistogramMetric:
    """Count/sum/min/max plus power-of-two buckets.

    Bucket keys are the binary exponent of the observed value
    (``frexp(v)[1]``): values in ``[2**(k-1), 2**k)`` land in bucket
    ``k``.  Negative and zero observations land in a single underflow
    bucket (key ``None`` in the snapshot).

    Aggregation is *deferred*: :meth:`observe` only appends to a raw
    buffer (a single C-level list append — histograms sit on the
    runtime's per-task hot path), and the tallies are folded in when
    they are read, or whenever the buffer reaches a bounded size, so
    memory stays O(1) amortised on long runs.  Like the registry
    itself, a single histogram is not internally locked — the owning
    runtime serialises updates to it.
    """

    __slots__ = ("name", "labels", "buckets", "_count", "_sum", "_min", "_max", "_raw")

    #: Fold the raw buffer into the tallies at this many pending
    #: observations (bounds memory; amortises the fold to O(1)/observe).
    _FOLD_AT = 4096

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.buckets: dict = {}
        self._raw: list = []

    def observe(self, value) -> None:
        raw = self._raw
        raw.append(value)
        if len(raw) >= self._FOLD_AT:
            self._fold()

    def _fold(self) -> None:
        raw = self._raw
        if not raw:
            return
        self._raw = []
        self._count += len(raw)
        self._sum += sum(raw)
        lo = min(raw)
        hi = max(raw)
        if lo < self._min:
            self._min = lo
        if hi > self._max:
            self._max = hi
        buckets = self.buckets
        frexp = math.frexp
        get = buckets.get
        for value in raw:
            key = frexp(value)[1] if value > 0 else None
            buckets[key] = get(key, 0) + 1

    @property
    def count(self) -> int:
        self._fold()
        return self._count

    @property
    def sum(self) -> float:
        self._fold()
        return self._sum

    @property
    def min(self) -> float:
        self._fold()
        return self._min

    @property
    def max(self) -> float:
        self._fold()
        return self._max

    @property
    def mean(self) -> float:
        self._fold()
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float):
        """Nearest-rank q-quantile over everything observed so far.

        The estimate merges two populations *without* folding the raw
        buffer: the not-yet-folded observations contribute their exact
        values, and each already-folded bucket contributes its count at
        the bucket's upper bound (``2**k`` for bucket *k*; the
        underflow bucket at ``0.0``).  While nothing has been folded —
        fewer than ``_FOLD_AT`` observations, the common case for
        per-task-type duration series — the result is therefore the
        exact nearest-rank quantile; after folding it is conservative
        (an upper bound) within the power-of-two bucket width, i.e.
        at most 2x the true value.

        Returns ``None`` on an empty histogram.
        """

        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q!r}")
        total = self._count + len(self._raw)
        if total == 0:
            return None
        rank = max(1, math.ceil(q * total))
        points = [
            (0.0 if key is None else 2.0 ** key, n)
            for key, n in self.buckets.items()
        ]
        points.extend((value, 1) for value in self._raw)
        points.sort(key=lambda p: p[0])
        seen = 0
        for value, n in points:
            seen += n
            if seen >= rank:
                return value
        return points[-1][0]

    def merge(self, other: "HistogramMetric") -> None:
        """Fold *other*'s tallies into this histogram (for absorb)."""

        other._fold()
        self._fold()
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for key, n in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + n

    def snapshot(self) -> dict:
        self._fold()
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": {
                ("underflow" if k is None else f"<2^{k}"): n
                for k, n in sorted(
                    self.buckets.items(),
                    key=lambda kv: (-math.inf if kv[0] is None else kv[0]),
                )
            },
        }


def _labels_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Factory and container for named metrics.

    Not internally locked on the metric hot paths — the owning runtime
    serialises updates the same way it serialises its graph (threaded
    backend: under the runtime lock; simulator/recorder: single
    threaded).  Registration and merging take a lock so concurrent
    first-touch from two threads stays safe.
    """

    def __init__(self):
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()

    # -- factories ---------------------------------------------------------
    def _get(self, cls, name: str, labels: dict):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, key[1])
                    self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> CounterMetric:
        return self._get(CounterMetric, name, labels)

    def gauge(self, name: str, **labels) -> GaugeMetric:
        return self._get(GaugeMetric, name, labels)

    def histogram(self, name: str, **labels) -> HistogramMetric:
        return self._get(HistogramMetric, name, labels)

    def timer(self, name: str, **labels) -> "_Timer":
        """``with registry.timer("analysis_seconds"):`` observes the
        elapsed wall-clock into the named histogram."""

        return _Timer(self.histogram(name, **labels))

    # -- ingestion ---------------------------------------------------------
    def ingest_scheduler_stats(self, stats, prefix: str = "scheduler") -> None:
        """Mirror a :class:`~repro.core.scheduler.SchedulerStats` into
        gauges, including the per-thread breakdowns."""

        for key, value in stats.as_dict().items():
            if isinstance(value, dict):
                for thread, count in value.items():
                    self.gauge(f"{prefix}.{key}", thread=thread).set(count)
            else:
                self.gauge(f"{prefix}.{key}").set(value)

    # -- introspection -----------------------------------------------------
    def __iter__(self) -> Iterator:
        return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """Nested plain-data form: ``{name: {label_repr: value}}``.

        Unlabelled metrics collapse to ``{name: value}``.
        """

        out: dict = {}
        with self._lock:
            items = list(self._metrics.items())
        for (name, labels), metric in sorted(items, key=lambda kv: kv[0]):
            value = metric.snapshot()
            if not labels:
                out[name] = value
            else:
                label_repr = ",".join(f"{k}={v}" for k, v in labels)
                out.setdefault(name, {})[label_repr] = value
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=str)

    # -- merging -----------------------------------------------------------
    def absorb(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s metrics into this registry.

        Counters and histogram tallies add; gauges take the absorbed
        value (last write wins) — the semantics a shutdown publish into
        the process default registry wants.
        """

        with other._lock:
            items = list(other._metrics.items())
        for (name, labels), metric in items:
            labels_dict = dict(labels)
            if isinstance(metric, CounterMetric):
                self.counter(name, **labels_dict).inc(metric.value)
            elif isinstance(metric, GaugeMetric):
                self.gauge(name, **labels_dict).set(metric.value)
            elif isinstance(metric, HistogramMetric):
                self.histogram(name, **labels_dict).merge(metric)


class _Timer:
    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: HistogramMetric):
        self.histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.histogram.observe(time.perf_counter() - self._start)


# ---------------------------------------------------------------------------
# process default registry (what the bench harness snapshots)
# ---------------------------------------------------------------------------

_default: Optional[MetricsRegistry] = MetricsRegistry()


def default_metrics() -> MetricsRegistry:
    """The process-wide registry runtimes publish into at shutdown."""

    return _default


def reset_default_metrics() -> MetricsRegistry:
    """Swap in a fresh default registry; returns the new one."""

    global _default
    _default = MetricsRegistry()
    return _default
