"""Post-mortem trace analysis from the command line.

Usage::

    python -m repro.obs report trace.json            # full text report
    python -m repro.obs report trace.json --threads 4
"""

from __future__ import annotations

import argparse
import sys

from .analyze import analyze_events, load_chrome_trace, render_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze exported SMPSs traces (Chrome trace JSON).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="makespan/utilisation/locality report for a trace"
    )
    report.add_argument("trace", help="Chrome trace JSON (write_chrome_trace)")
    report.add_argument(
        "--threads", type=int, default=None,
        help="thread count (include threads that never ran a task)",
    )
    args = parser.parse_args(argv)

    if args.command == "report":
        try:
            events = load_chrome_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
            return 1
        if not events:
            print(f"no recognisable events in {args.trace!r}", file=sys.stderr)
            return 1
        trace_report = analyze_events(events, num_threads=args.threads)
        print(render_report(trace_report, title=args.trace))
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
