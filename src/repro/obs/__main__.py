"""Post-mortem trace analysis from the command line.

Usage::

    python -m repro.obs report trace.json             # full text report
    python -m repro.obs report trace.json --threads 4
    python -m repro.obs diff A.trace.json B.trace.json
    python -m repro.obs diff A.trace.json B.trace.json --dot d.dot \\
        --chrome side_by_side.json
    python -m repro.obs diff A.metrics.json B.metrics.json
    python -m repro.obs diff figA.json figB.json
    python -m repro.obs serve tcp:0.0.0.0:9184                # live
    python -m repro.obs serve tcp:0.0.0.0:9184 --metrics-json saved.json
    python -m repro.obs scrape tcp:127.0.0.1:9184             # one page
    python -m repro.obs scrape tcp:127.0.0.1:9184 --health    # findings

``diff`` auto-detects what the two files are: Chrome trace JSONs get
the full makespan-delta attribution (per-task-type shifts with
bootstrap CIs, critical-path composition change, scheduler behaviour);
``*.metrics.json`` snapshots get per-series deltas; saved
``FigureResult`` JSONs get per-point deltas; ``repro.staticgraph`` /
``repro.recording`` documents get a task/edge/stream structural diff
(exit 1 when the graphs diverge — the static-vs-recorded validation
loop of ``repro.check flow``).  ``--kind`` overrides the detection.

``serve`` exposes Prometheus text over the live transport — the
process default registry, or a saved ``*.metrics.json`` with
``--metrics-json``.  A runtime constructed with ``health_address=...``
serves the same endpoint in-process; ``scrape`` fetches one page from
either (``--health`` asks for the watchdog findings instead).
"""

from __future__ import annotations

import argparse
import json
import sys

from .analyze import analyze_events, load_chrome_trace, render_report


def _detect_kind(doc) -> str:
    """'trace' | 'metrics' | 'figure' | 'graph' from a parsed document."""

    if isinstance(doc, list):
        return "trace"  # bare traceEvents array
    if "traceEvents" in doc:
        return "trace"
    if doc.get("format") in ("repro.recording", "repro.staticgraph"):
        return "graph"
    inner = doc.get("graph")
    if isinstance(inner, dict) and inner.get("format") == "repro.staticgraph":
        return "graph"  # `repro.check flow --format json` wrapper
    if "figure_id" in doc and "series" in doc:
        return "figure"
    return "metrics"


def _metrics_snapshot(doc: dict) -> dict:
    # ``repro.bench --save`` wraps the registry snapshot in metadata.
    if "metrics" in doc and isinstance(doc["metrics"], dict):
        return doc["metrics"]
    return doc


def _run_diff(args) -> int:
    from . import diff as D

    docs = []
    for path in (args.a, args.b):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                docs.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"cannot read {path!r}: {exc}", file=sys.stderr)
            return 1
    kind = args.kind or _detect_kind(docs[0])
    if (args.kind is None and _detect_kind(docs[1]) != kind):
        print(
            f"{args.a!r} looks like a {kind} file but {args.b!r} does not; "
            "pass --kind to force", file=sys.stderr,
        )
        return 1
    label_a, label_b = args.label_a or args.a, args.label_b or args.b

    if kind == "trace":
        events_a = load_chrome_trace(docs[0])
        events_b = load_chrome_trace(docs[1])
        if not events_a or not events_b:
            print("no recognisable events in one of the traces", file=sys.stderr)
            return 1
        trace_diff = D.diff_traces(
            events_a, events_b, n_boot=args.boot, seed=args.boot_seed
        )
        print(D.render_trace_diff(trace_diff, label_a, label_b))
        if args.dot:
            D.write_diff_dot(
                trace_diff, args.dot, label_a=label_a, label_b=label_b
            )
            print(f"\nwrote critical-path diff DOT to {args.dot}")
        if args.chrome:
            D.write_diff_chrome_trace(
                events_a, events_b, args.chrome,
                label_a=label_a, label_b=label_b,
            )
            print(f"wrote side-by-side Chrome trace to {args.chrome}")
        return 0
    if args.dot or args.chrome:
        print("--dot/--chrome only apply to trace diffs", file=sys.stderr)
        return 2
    if kind == "metrics":
        deltas = D.diff_metrics(
            _metrics_snapshot(docs[0]), _metrics_snapshot(docs[1])
        )
        print(D.render_metrics_diff(deltas, label_a, label_b))
        return 0
    if kind == "graph":
        graph_diff = D.diff_task_graphs(docs[0], docs[1])
        print(D.render_graph_diff(graph_diff, label_a, label_b))
        return 0 if graph_diff.identical else 1
    print(D.render_figure_diff(D.diff_figures(docs[0], docs[1]),
                               label_a, label_b))
    return 0


def _run_serve(args) -> int:
    import time

    from .exposition import ExpositionServer

    snapshot = None
    if args.metrics_json:
        try:
            with open(args.metrics_json, "r", encoding="utf-8") as handle:
                snapshot = _metrics_snapshot(json.load(handle))
        except (OSError, ValueError) as exc:
            print(
                f"cannot read {args.metrics_json!r}: {exc}", file=sys.stderr
            )
            return 1
    server = ExpositionServer(args.address, snapshot=snapshot)
    print(f"serving metrics on {server.address} (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _run_scrape(args) -> int:
    from .exposition import scrape

    command = "health" if args.health else "metrics"
    try:
        data = scrape(args.address, timeout=args.timeout, command=command)
    except (OSError, RuntimeError, TimeoutError) as exc:
        print(f"scrape of {args.address!r} failed: {exc}", file=sys.stderr)
        return 1
    if args.health:
        print(json.dumps(data, indent=2, default=str))
    else:
        sys.stdout.write(data.get("text", ""))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze and diff exported SMPSs traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="makespan/utilisation/locality report for a trace"
    )
    report.add_argument("trace", help="Chrome trace JSON (write_chrome_trace)")
    report.add_argument(
        "--threads", type=int, default=None,
        help="thread count (include threads that never ran a task)",
    )
    diff = sub.add_parser(
        "diff",
        help="what changed between two runs "
             "(traces, metrics, figures, or task graphs)",
    )
    diff.add_argument(
        "a", help="baseline file (trace/metrics/figure/graph JSON)"
    )
    diff.add_argument("b", help="comparison file of the same kind")
    diff.add_argument(
        "--kind", choices=("trace", "metrics", "figure", "graph"),
        default=None,
        help="file kind (default: auto-detect)",
    )
    diff.add_argument("--label-a", default=None, help="display name for A")
    diff.add_argument("--label-b", default=None, help="display name for B")
    diff.add_argument(
        "--boot", type=int, default=2000, metavar="N",
        help="bootstrap resamples for per-type CIs (0 disables)",
    )
    diff.add_argument(
        "--boot-seed", type=int, default=0,
        help="bootstrap RNG seed (the CIs are deterministic given this)",
    )
    diff.add_argument(
        "--dot", metavar="PATH",
        help="write the critical-path diff as GraphViz DOT here",
    )
    diff.add_argument(
        "--chrome", metavar="PATH",
        help="write a side-by-side Chrome trace (A and B as two processes)",
    )
    serve = sub.add_parser(
        "serve",
        help="Prometheus exposition endpoint (default registry or a "
        "saved metrics JSON)",
    )
    serve.add_argument(
        "address", help="unix-socket path or tcp:HOST:PORT (0 = ephemeral)"
    )
    serve.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="serve this saved *.metrics.json instead of the live "
        "process registry",
    )
    scrape_p = sub.add_parser(
        "scrape", help="fetch one Prometheus page (or health findings)"
    )
    scrape_p.add_argument("address", help="endpoint address to scrape")
    scrape_p.add_argument(
        "--health", action="store_true",
        help="fetch watchdog findings JSON instead of the metrics page",
    )
    scrape_p.add_argument(
        "--timeout", type=float, default=5.0, help="socket timeout seconds"
    )
    args = parser.parse_args(argv)

    if args.command == "serve":
        return _run_serve(args)
    if args.command == "scrape":
        return _run_scrape(args)
    if args.command == "report":
        try:
            events = load_chrome_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
            return 1
        if not events:
            print(f"no recognisable events in {args.trace!r}", file=sys.stderr)
            return 1
        trace_report = analyze_events(events, num_threads=args.threads)
        print(render_report(trace_report, title=args.trace))
        return 0
    if args.command == "diff":
        return _run_diff(args)
    return 1


if __name__ == "__main__":
    from repro.__main__ import deprecation_note

    deprecation_note("repro.obs", "obs")
    raise SystemExit(main())
