"""Post-mortem trace analysis from the command line.

Usage::

    python -m repro.obs report trace.json             # full text report
    python -m repro.obs report trace.json --threads 4
    python -m repro.obs diff A.trace.json B.trace.json
    python -m repro.obs diff A.trace.json B.trace.json --dot d.dot \\
        --chrome side_by_side.json
    python -m repro.obs diff A.metrics.json B.metrics.json
    python -m repro.obs diff figA.json figB.json

``diff`` auto-detects what the two files are: Chrome trace JSONs get
the full makespan-delta attribution (per-task-type shifts with
bootstrap CIs, critical-path composition change, scheduler behaviour);
``*.metrics.json`` snapshots get per-series deltas; saved
``FigureResult`` JSONs get per-point deltas.  ``--kind`` overrides the
detection.
"""

from __future__ import annotations

import argparse
import json
import sys

from .analyze import analyze_events, load_chrome_trace, render_report


def _detect_kind(doc) -> str:
    """'trace' | 'metrics' | 'figure' from a parsed JSON document."""

    if isinstance(doc, list):
        return "trace"  # bare traceEvents array
    if "traceEvents" in doc:
        return "trace"
    if "figure_id" in doc and "series" in doc:
        return "figure"
    return "metrics"


def _metrics_snapshot(doc: dict) -> dict:
    # ``repro.bench --save`` wraps the registry snapshot in metadata.
    if "metrics" in doc and isinstance(doc["metrics"], dict):
        return doc["metrics"]
    return doc


def _run_diff(args) -> int:
    from . import diff as D

    docs = []
    for path in (args.a, args.b):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                docs.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"cannot read {path!r}: {exc}", file=sys.stderr)
            return 1
    kind = args.kind or _detect_kind(docs[0])
    if (args.kind is None and _detect_kind(docs[1]) != kind):
        print(
            f"{args.a!r} looks like a {kind} file but {args.b!r} does not; "
            "pass --kind to force", file=sys.stderr,
        )
        return 1
    label_a, label_b = args.label_a or args.a, args.label_b or args.b

    if kind == "trace":
        events_a = load_chrome_trace(docs[0])
        events_b = load_chrome_trace(docs[1])
        if not events_a or not events_b:
            print("no recognisable events in one of the traces", file=sys.stderr)
            return 1
        trace_diff = D.diff_traces(
            events_a, events_b, n_boot=args.boot, seed=args.boot_seed
        )
        print(D.render_trace_diff(trace_diff, label_a, label_b))
        if args.dot:
            D.write_diff_dot(
                trace_diff, args.dot, label_a=label_a, label_b=label_b
            )
            print(f"\nwrote critical-path diff DOT to {args.dot}")
        if args.chrome:
            D.write_diff_chrome_trace(
                events_a, events_b, args.chrome,
                label_a=label_a, label_b=label_b,
            )
            print(f"wrote side-by-side Chrome trace to {args.chrome}")
        return 0
    if args.dot or args.chrome:
        print("--dot/--chrome only apply to trace diffs", file=sys.stderr)
        return 2
    if kind == "metrics":
        deltas = D.diff_metrics(
            _metrics_snapshot(docs[0]), _metrics_snapshot(docs[1])
        )
        print(D.render_metrics_diff(deltas, label_a, label_b))
        return 0
    print(D.render_figure_diff(D.diff_figures(docs[0], docs[1]),
                               label_a, label_b))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze and diff exported SMPSs traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="makespan/utilisation/locality report for a trace"
    )
    report.add_argument("trace", help="Chrome trace JSON (write_chrome_trace)")
    report.add_argument(
        "--threads", type=int, default=None,
        help="thread count (include threads that never ran a task)",
    )
    diff = sub.add_parser(
        "diff",
        help="what changed between two runs (traces, metrics, or figures)",
    )
    diff.add_argument("a", help="baseline file (trace/metrics/figure JSON)")
    diff.add_argument("b", help="comparison file of the same kind")
    diff.add_argument(
        "--kind", choices=("trace", "metrics", "figure"), default=None,
        help="file kind (default: auto-detect)",
    )
    diff.add_argument("--label-a", default=None, help="display name for A")
    diff.add_argument("--label-b", default=None, help="display name for B")
    diff.add_argument(
        "--boot", type=int, default=2000, metavar="N",
        help="bootstrap resamples for per-type CIs (0 disables)",
    )
    diff.add_argument(
        "--boot-seed", type=int, default=0,
        help="bootstrap RNG seed (the CIs are deterministic given this)",
    )
    diff.add_argument(
        "--dot", metavar="PATH",
        help="write the critical-path diff as GraphViz DOT here",
    )
    diff.add_argument(
        "--chrome", metavar="PATH",
        help="write a side-by-side Chrome trace (A and B as two processes)",
    )
    args = parser.parse_args(argv)

    if args.command == "report":
        try:
            events = load_chrome_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
            return 1
        if not events:
            print(f"no recognisable events in {args.trace!r}", file=sys.stderr)
            return 1
        trace_report = analyze_events(events, num_threads=args.threads)
        print(render_report(trace_report, title=args.trace))
        return 0
    if args.command == "diff":
        return _run_diff(args)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
