"""Prometheus text exposition for the metrics registry.

The health layer's outward-facing surface: render a
:class:`~repro.obs.metrics.MetricsRegistry` (or a saved snapshot) in
the Prometheus text format, and serve it over the shared
:class:`repro.net.Server` transport.  A scrape works two ways over
the same socket:

* the JSON-lines protocol every other live surface speaks —
  ``{"cmd": "metrics", "seq": 1}`` answered with the text in the ack
  (what :func:`scrape` and ``python -m repro.obs scrape`` use);
* a plain HTTP ``GET`` — the server sniffs the first bytes of a
  connection, so ``curl http://host:port/metrics`` (or a Prometheus
  scrape target) works against the same port.  ``GET /health`` returns
  the findings/state JSON instead.

Naming: series are prefixed ``repro_`` with dots/invalid characters
mapped to underscores (``scheduler.pops_high`` →
``repro_scheduler_pops_high``).  Counters and gauges map directly;
histograms are rendered as Prometheus *summaries* — p50/p95/p99 via
:meth:`HistogramMetric.quantile` plus ``_sum``/``_count`` — because
the power-of-two bucket layout has no fixed ``le`` schema worth
promising to dashboards.
"""

from __future__ import annotations

import json
import re
import socket
from typing import Optional

from .metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    default_metrics,
)

__all__ = [
    "CONTENT_TYPE",
    "render_registry",
    "render_snapshot",
    "build_http_response",
    "ExpositionServer",
    "scrape",
]

#: The Prometheus text-format content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantiles published for every histogram series.
QUANTILES = (0.5, 0.95, 0.99)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str) -> str:
    out = prefix + _NAME_RE.sub("_", name)
    if out[0].isdigit():
        out = "_" + out
    return out


def _label_str(labels, extra: Optional[dict] = None) -> str:
    pairs = [(k, v) for k, v in labels]
    if extra:
        pairs.extend(extra.items())
    if not pairs:
        return ""
    rendered = []
    for key, value in pairs:
        key = _LABEL_RE.sub("_", str(key))
        value = str(value).replace("\\", "\\\\").replace('"', '\\"')
        value = value.replace("\n", "\\n")
        rendered.append(f'{key}="{value}"')
    return "{" + ",".join(rendered) + "}"


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    try:
        return repr(float(value))
    except (TypeError, ValueError):
        return "0"


def render_registry(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Prometheus text for every series in *registry*.

    Reads metric objects without folding or mutating them, so a scrape
    concurrent with a running workload never corrupts the tallies; a
    series that races a writer mid-read is skipped for this scrape
    rather than poisoning the whole page.
    """

    groups: dict[str, list] = {}
    for metric in registry:
        groups.setdefault(metric.name, []).append(metric)
    lines: list[str] = []
    for name in sorted(groups):
        metrics = groups[name]
        pname = _metric_name(name, prefix)
        first = metrics[0]
        if isinstance(first, CounterMetric):
            ptype = "counter"
        elif isinstance(first, GaugeMetric):
            ptype = "gauge"
        else:
            ptype = "summary"
        lines.append(f"# HELP {pname} repro series {name}")
        lines.append(f"# TYPE {pname} {ptype}")
        for metric in sorted(metrics, key=lambda m: m.labels):
            try:
                if isinstance(metric, HistogramMetric):
                    # Non-mutating reads: quantile() never folds, and
                    # count/sum are recomposed from the tallies plus the
                    # pending buffer directly.
                    raw = list(metric._raw)
                    count = metric._count + len(raw)
                    total = metric._sum + sum(raw)
                    for q in QUANTILES:
                        value = metric.quantile(q)
                        if value is None:
                            continue
                        labels = _label_str(
                            metric.labels, {"quantile": q}
                        )
                        lines.append(f"{pname}{labels} {_fmt(value)}")
                    labels = _label_str(metric.labels)
                    lines.append(f"{pname}_sum{labels} {_fmt(total)}")
                    lines.append(f"{pname}_count{labels} {count}")
                else:
                    labels = _label_str(metric.labels)
                    lines.append(
                        f"{pname}{labels} {_fmt(metric.snapshot())}"
                    )
            except Exception:  # noqa: BLE001 - skip racing series
                continue
    return "\n".join(lines) + "\n"


def render_snapshot(snapshot: dict, prefix: str = "repro_") -> str:
    """Prometheus text for a *saved* registry snapshot dict.

    Accepts the :meth:`MetricsRegistry.snapshot` shape (what
    ``*.metrics.json`` files and ``registry.to_json()`` hold):
    scalars become gauges; histogram dicts surface ``_sum``/``_count``
    and ``_mean`` (the folded snapshot has no raw values left, so no
    quantiles are invented for it).
    """

    lines: list[str] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        pname = _metric_name(name, prefix)
        series: list[tuple[str, object]] = []
        if isinstance(value, dict) and value and all(
            isinstance(v, dict) for v in value.values()
        ):
            # labelled histograms: {label_repr: {count, sum, ...}}
            hist_like = True
            for label_repr, item in value.items():
                series.append((label_repr, item))
        elif isinstance(value, dict) and {"count", "sum"} <= set(value):
            hist_like = True
            series.append(("", value))
        elif isinstance(value, dict):
            hist_like = False
            for label_repr, item in value.items():
                series.append((label_repr, item))
        else:
            hist_like = False
            series.append(("", value))

        def labels_of(label_repr: str) -> str:
            if not label_repr:
                return ""
            pairs = []
            for part in label_repr.split(","):
                key, _, val = part.partition("=")
                pairs.append((key, val))
            return _label_str(pairs)

        if hist_like:
            lines.append(f"# TYPE {pname} summary")
            for label_repr, item in series:
                labels = labels_of(label_repr)
                lines.append(f"{pname}_sum{labels} {_fmt(item.get('sum', 0))}")
                lines.append(
                    f"{pname}_count{labels} {_fmt(item.get('count', 0))}"
                )
                lines.append(
                    f"{pname}_mean{labels} {_fmt(item.get('mean', 0))}"
                )
        else:
            lines.append(f"# TYPE {pname} gauge")
            for label_repr, item in series:
                if not isinstance(item, (int, float, bool)):
                    continue
                lines.append(f"{pname}{labels_of(label_repr)} {_fmt(item)}")
    return "\n".join(lines) + "\n"


class ExpositionServer:
    """Serve metrics (and health state) over the live transport.

    Three sources, in priority order: a *runtime* (scrapes refresh the
    runtime's mirrored gauges and the health monitor's utilization
    gauges first), an explicit *registry*, or — with neither — the
    process-wide default registry.  A *snapshot* dict serves a saved
    metrics file instead (the ``python -m repro.obs serve`` offline
    mode).
    """

    def __init__(
        self,
        address: str,
        runtime=None,
        monitor=None,
        registry: Optional[MetricsRegistry] = None,
        snapshot: Optional[dict] = None,
    ):
        self._runtime = runtime
        self._monitor = monitor
        self._registry = registry
        self._snapshot = snapshot
        from ..net.server import Server  # local import: obs must not
        # hard-depend on the transport at module import time

        self._server = Server(
            address,
            self._handle,
            hello={"service": "repro.obs.health"},
            http_responder=http_response_for,
            name="repro-obs",
        )
        self.address = self._server.address

    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        if self._snapshot is not None:
            return render_snapshot(self._snapshot)
        runtime = self._runtime
        if runtime is not None:
            try:
                if runtime._metrics_on and runtime.scheduler is not None:
                    runtime._sync_metrics()
            except Exception:  # noqa: BLE001 - racy mirror, best effort
                pass
            if self._monitor is not None:
                self._monitor.note_scrape()
            return render_registry(runtime.metrics)
        registry = self._registry
        if registry is None:
            registry = default_metrics()
        return render_registry(registry)

    def _handle(self, command: dict) -> dict:
        cmd = command.get("cmd")
        if cmd == "metrics":
            return {"content_type": CONTENT_TYPE, "text": self.metrics_text()}
        if cmd == "health":
            if self._monitor is not None:
                return self._monitor.state()
            return {"findings": [], "sample": {}}
        if cmd == "dump":
            if self._monitor is None:
                raise ValueError("no health monitor attached")
            return self._monitor.dump(reason="remote")
        if cmd == "ping":
            return {"service": "repro.obs.health"}
        raise ValueError(f"unknown command {cmd!r}")

    @property
    def client_count(self) -> int:
        return self._server.client_count

    def close(self) -> None:
        self._server.close()


def scrape(address: str, timeout: float = 5.0, command: str = "metrics"):
    """One-shot scrape of an exposition endpoint; returns the ack data.

    For ``command="metrics"`` the interesting field is ``data["text"]``
    (the Prometheus page); ``"health"`` returns the findings/state
    dict.  Speaks the JSON-lines protocol — for plain HTTP use any
    HTTP client against the same address.
    """

    from ..net.protocol import connect, decode, encode

    sock = connect(address, timeout=timeout)
    try:
        sock.sendall(encode({"cmd": command, "seq": 1}))
        buffer = b""
        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout as exc:
                raise TimeoutError(
                    f"no ack from {address} within {timeout}s"
                ) from exc
            if not chunk:
                raise ConnectionError(
                    f"server at {address} closed before answering"
                )
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                record = decode(line)
                if record is None:
                    continue
                if record.get("ev") == "ack" and record.get("seq") == 1:
                    if not record.get("ok"):
                        raise RuntimeError(
                            f"scrape failed: {record.get('error')}"
                        )
                    return record.get("data", {})
    finally:
        sock.close()


def build_http_response(status: str, content_type: str, body: bytes) -> bytes:
    """One complete ``Connection: close`` HTTP response (used by every
    surface that serves plain GETs over the shared transport)."""

    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    return head + body


# Historical internal name.
_http_body_parts = build_http_response


def http_response_for(handler, path: str) -> bytes:
    """Shared GET routing for the transport layer: ``/health`` answers
    the health state as JSON, anything else the metrics page."""

    cmd = "health" if path.startswith("/health") else "metrics"
    try:
        data = handler({"cmd": cmd, "http": True})
    except Exception as exc:  # noqa: BLE001 - reported to the client
        return _http_body_parts(
            "500 Internal Server Error", "text/plain",
            str(exc).encode("utf-8", "replace"),
        )
    if cmd == "health":
        body = json.dumps(data, default=str).encode("utf-8")
        return _http_body_parts("200 OK", "application/json", body)
    body = data.get("text", "").encode("utf-8")
    return _http_body_parts(
        "200 OK", data.get("content_type", CONTENT_TYPE), body
    )
