"""Always-on runtime health: watchdog, blocked-task explainer, findings.

The paper's runtime becomes operable as a long-running service only
when a wedged or limping run can explain *itself*: `Runtime.report()`
and ``trace=True`` are post-mortem tools, and the ad-hoc stall check
the main thread used to carry ("pending tasks but nothing ready or
running") only fires when the main thread happens to be blocked.  This
module centralises that logic:

* :class:`HealthMonitor` — a daemon watchdog thread, enabled by the
  ``health=True`` runtime knob, that samples scheduler/tracker state
  every ``health_interval`` seconds and raises structured
  :class:`Finding`\\ s for global stalls, suspected deadlocks, worker
  starvation, queue imbalance, and mp-worker death spikes.  Every
  anomaly triggers a flight-recorder dump
  (:class:`repro.obs.flightrec.FlightRecorder`), as does ``SIGUSR1``
  or an explicit :meth:`HealthMonitor.dump` call.
* the **blocked-task explainer** — :func:`explain_blocked` /
  :func:`wait_chain` walk the dependency tracker's wait graph and
  answer "why is task X not running": the unmet accesses, the renaming
  decision behind each version, and the task (and worker) currently
  holding each datum.
* :func:`stalled_error` — the single source of the "runtime stalled"
  error both :meth:`SmpssRuntime._main_help` and ``_main_wait`` now
  raise, enriched with the same wait chains.

Detection thresholds are class attributes on :class:`HealthMonitor`
(periods, not seconds, so they scale with ``health_interval``); the
acceptance bar is that a wedge is found — and the flight recorder
dumped with the wait chain — within two watchdog periods.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from ..core.task import TaskState
from .flightrec import FlightRecorder

__all__ = [
    "Finding",
    "HealthMonitor",
    "StallError",
    "explain_blocked",
    "wait_chain",
    "wait_graph_dot",
    "stalled_error",
]


class StallError(RuntimeError):
    """Pending tasks but nothing ready or running — graph corruption.

    Subclasses ``RuntimeError`` so callers catching the historical
    error type keep working; carries the blocked-task findings.
    """

    def __init__(self, message: str, chains: Optional[list] = None):
        super().__init__(message)
        self.chains = chains or []


@dataclass
class Finding:
    """One structured anomaly report from the watchdog/explainer."""

    #: ``global_stall`` | ``suspected_deadlock`` | ``worker_starvation``
    #: | ``queue_imbalance`` | ``worker_death_spike`` | ``blocked_task``
    kind: str
    severity: str  # "warning" | "critical"
    message: str
    #: ``perf_counter`` when detected (same clock as trace events).
    time: float
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "time": self.time,
            "details": self.details,
        }


# ---------------------------------------------------------------------------
# blocked-task explainer (pure reads; the caller picks the lock)
# ---------------------------------------------------------------------------

def _worker_of(runtime, task) -> Optional[int]:
    """Thread index currently executing *task*, if any (racy glance)."""

    current = getattr(runtime, "_current", None) or []
    for idx, running in enumerate(current):
        if running is task:
            return idx
    return None


def _task_brief(runtime, task) -> dict:
    brief = {
        "task_id": task.task_id,
        "name": task.name,
        "state": task.state.value,
    }
    worker = _worker_of(runtime, task)
    if worker is not None:
        brief["worker"] = worker
    return brief


def explain_blocked(runtime, task) -> dict:
    """Why is *task* not running?  One structured answer.

    Walks the task's recorded accesses: every read of a version whose
    producer has not finished is an unmet dependency, reported with the
    parameter name, the version index, the renaming decision that
    created the version (``initial``/``same``/``fresh``/``clone``), and
    the producing task — including which worker is executing it right
    now, when one is.  Predecessors that arrived through explicit
    anti/output edges (renaming off) are reported without a parameter.

    Pure reads — the caller decides whether to hold the tracker lock
    (the watchdog does; the stall path runs when no worker is active).
    """

    waiting_on = []
    explained = set()
    for name, version in task.reads:
        producer = version.producer
        if producer is None or producer.state is TaskState.FINISHED:
            continue
        explained.add(producer.task_id)
        entry = {
            "param": name,
            "version": version.index,
            "renaming": version.kind.value,
            "producer": _task_brief(runtime, producer),
        }
        waiting_on.append(entry)
    for pred in task.predecessors:
        if pred.state is TaskState.FINISHED or pred.task_id in explained:
            continue
        waiting_on.append({
            "param": None,
            "version": None,
            "renaming": None,
            "producer": _task_brief(runtime, pred),
        })
    out = _task_brief(runtime, task)
    out["pending_deps"] = task.num_pending_deps
    out["waiting_on"] = waiting_on
    return out


def wait_chain(runtime, task, max_depth: int = 16) -> list[dict]:
    """The dependency chain keeping *task* from running, root-last.

    Each element is an :func:`explain_blocked` dict; the walk follows
    the first unmet dependency of each task until it reaches a task
    that is running (the likely culprit), has no unmet dependency, or
    a cycle/depth bound stops it.
    """

    chain = []
    seen: set[int] = set()
    current = task
    for _ in range(max_depth):
        if current.task_id in seen:
            break
        seen.add(current.task_id)
        explained = explain_blocked(runtime, current)
        chain.append(explained)
        if not explained["waiting_on"]:
            break
        next_id = explained["waiting_on"][0]["producer"]["task_id"]
        next_task = runtime.graph.get(next_id)
        if next_task is None or next_task.state is TaskState.FINISHED:
            break
        current = next_task
    return chain


def blocked_tasks(runtime, limit: Optional[int] = None) -> list:
    """Unfinished tasks with unmet dependencies, oldest first."""

    out = []
    for task in runtime.graph:
        if task.state is TaskState.BLOCKED and task.num_pending_deps > 0:
            out.append(task)
            if limit is not None and len(out) >= limit:
                break
    return out


_STATE_COLOURS = {
    TaskState.BLOCKED.value: "salmon",
    TaskState.READY.value: "gold",
    TaskState.RUNNING.value: "lightgreen",
    TaskState.FINISHED.value: "lightgrey",
}


def wait_graph_dot(runtime) -> Optional[str]:
    """GraphViz text of the *current* wait graph, or ``None`` if empty.

    Unlike :func:`repro.obs.export.graph_to_dot` (the post-mortem full
    DAG), this renders the in-flight window: nodes coloured by state
    (blocked red-ish, ready gold, running green), blocked nodes
    annotated with the parameter each unmet access waits on.  Works
    with ``keep_graph=False`` — retired tasks have already left the
    graph, which is exactly what a wedge diagnosis wants to see.
    """

    graph = getattr(runtime, "graph", None)
    if graph is None:
        return None
    lines = ["digraph wait {", "  node [style=filled];"]
    edges = []
    count = 0
    for task in graph:
        if task.state is TaskState.FINISHED:
            continue
        count += 1
        colour = _STATE_COLOURS.get(task.state.value, "white")
        label = f"{task.task_id}\\n{task.name}\\n[{task.state.value}]"
        lines.append(
            f'  t{task.task_id} [label="{label}", fillcolor={colour}];'
        )
        if task.state is TaskState.BLOCKED:
            for name, version in task.reads:
                producer = version.producer
                if producer is None or producer.state is TaskState.FINISHED:
                    continue
                edges.append(
                    f'  t{producer.task_id} -> t{task.task_id} '
                    f'[label="{name}"];'
                )
            for pred in task.predecessors:
                if pred.state is TaskState.FINISHED:
                    continue
                edge = f"  t{pred.task_id} -> t{task.task_id};"
                if not any(
                    e.startswith(f"  t{pred.task_id} -> t{task.task_id}")
                    for e in edges
                ):
                    edges.append(edge)
    if count == 0:
        return None
    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines)


def stalled_error(runtime) -> StallError:
    """Build the unified "runtime stalled" error, with wait chains.

    Called by the main thread's blocking loops when ``running == 0``,
    nothing is ready, and pending tasks remain — every completion is
    fully visible at that point (workers update the graph before the
    scheduler), so the remaining pending tasks are genuinely
    unrunnable and can be walked without the tracker lock (no worker
    is active to race with).  Also notifies the health monitor, so a
    flight-recorder dump lands before the exception unwinds the run.
    """

    chains = []
    try:
        for task in blocked_tasks(runtime, limit=8):
            chains.append(wait_chain(runtime, task))
    except Exception:  # noqa: BLE001 - the stall error must still raise
        pass
    message = (
        "runtime stalled: pending tasks but nothing ready or running "
        "(graph corruption?)"
    )
    if chains:
        parts = []
        for chain in chains:
            head = chain[0]
            hops = " <- ".join(
                f"#{link['task_id']} {link['name']}" for link in chain
            )
            parts.append(f"  #{head['task_id']} {head['name']}: {hops}")
        message += "\nblocked-task wait chains:\n" + "\n".join(parts)
    monitor = getattr(runtime, "health", None)
    if monitor is not None:
        monitor.note_stall(chains)
    return StallError(message, chains)


# ---------------------------------------------------------------------------
# the watchdog
# ---------------------------------------------------------------------------

class HealthMonitor:
    """Watchdog thread + flight recorder + optional exposition server.

    Created by :meth:`SmpssRuntime.start` when ``health=True``; the
    runtime exposes it as ``runtime.health``.  All thresholds are in
    watchdog *periods* so they scale with ``health_interval``.

    Locking: the sampling pass reads racy scalars without any lock;
    only the explainer pass (on anomaly or on demand) takes the
    runtime's tracker lock, and never any other runtime lock at the
    same time.
    """

    #: No completion for this many periods, with tasks pending and at
    #: least one task unaccounted for (not running, not ready), fires
    #: ``global_stall``.  Two periods is the acceptance bar: a wedge
    #: must be dumped within two watchdog periods.
    STALL_PERIODS = 2
    #: A worker parked while ready tasks exist, sustained.
    STARVE_PERIODS = 3
    #: One per-thread LIFO hoarding ready work, sustained.
    IMBALANCE_PERIODS = 5
    IMBALANCE_MIN_DEPTH = 8
    IMBALANCE_SHARE = 0.75
    #: mp worker deaths within the rolling window that count as a spike.
    DEATH_SPIKE = 2
    DEATH_WINDOW = 10
    #: Wait chains collected per anomaly / findings retained.
    MAX_CHAINS = 8
    MAX_FINDINGS = 64

    def __init__(self, runtime):
        self.runtime = runtime
        config = runtime.config
        self.interval = float(config.health_interval)
        self.dump_dir = config.health_dump_dir
        self.recorder = FlightRecorder(num_threads=runtime.num_threads)
        #: Structured findings, oldest first (bounded).
        self.findings: list[Finding] = []
        #: Bound exposition address (``None`` without ``health_address``).
        self.address: Optional[str] = None
        self._server = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._prev_sigusr1 = None
        self._sig_installed = False
        self._dump_requested = False
        self._lock = threading.Lock()  # findings list + episode state
        metrics = runtime.metrics
        self._g_age = metrics.gauge("health.last_completion_age")
        self._g_blocked = metrics.gauge("health.blocked_tasks")
        self._g_findings = metrics.gauge("health.findings")
        self._c_samples = metrics.counter("health.samples")
        self._c_errors = metrics.counter("health.watchdog_errors")
        self._started_at = perf_counter()
        self._last_completions = 0
        self._stall_streak = 0
        self._starve_streak = 0
        self._imbalance_streak = 0
        self._death_history: list[int] = []
        #: Finding kinds already reported in the current anomaly episode
        #: (cleared when progress resumes), so a wedge produces one
        #: finding per kind, not one per period.
        self._episode: set[str] = set()
        self.last_sample: dict = {}
        # Scrape bookkeeping for utilization-since-last-scrape gauges.
        self._scrape_time = self._started_at
        self._scrape_busy = list(self.recorder.busy)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.runtime.config.health_address is not None:
            from .exposition import ExpositionServer  # avoid import cycle

            self._server = ExpositionServer(
                self.runtime.config.health_address,
                runtime=self.runtime,
                monitor=self,
            )
            self.address = self._server.address
        self._install_signal()
        self._thread = threading.Thread(
            target=self._loop, name="repro-health-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval + 5.0)
            self._thread = None
        self._restore_signal()
        if self._server is not None:
            self._server.close()
            self._server = None
        # Leave final gauge values behind for the shutdown publish.
        self.note_scrape()

    # ------------------------------------------------------------------
    # SIGUSR1 → flight-recorder dump
    # ------------------------------------------------------------------
    def _install_signal(self) -> None:
        # Only the main thread may install handlers, and not every
        # platform has SIGUSR1; both conditions degrade silently — the
        # dump stays reachable via HealthMonitor.dump() and the
        # exposition "dump" command.
        if threading.current_thread() is not threading.main_thread():
            return
        sig = getattr(signal, "SIGUSR1", None)
        if sig is None:
            return
        try:
            self._prev_sigusr1 = signal.signal(sig, self._on_sigusr1)
            self._sig_installed = True
        except (ValueError, OSError):
            self._sig_installed = False

    def _restore_signal(self) -> None:
        if not self._sig_installed:
            return
        try:
            signal.signal(signal.SIGUSR1, self._prev_sigusr1 or signal.SIG_DFL)
        except (ValueError, OSError):
            pass
        self._sig_installed = False

    def _on_sigusr1(self, _signum, _frame) -> None:
        # Handlers run on the main thread, possibly mid-submission with
        # runtime locks held: just flag, the watchdog thread dumps on
        # its next wakeup (at most one period away).
        self._dump_requested = True

    # ------------------------------------------------------------------
    # the watchdog loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.check_now()
            except Exception:  # noqa: BLE001 - watchdog must survive
                self._c_errors.inc()

    def check_now(self) -> list[Finding]:
        """One sampling pass; returns findings raised *by this pass*.

        The watchdog calls this every period; tests call it directly
        for deterministic coverage.
        """

        runtime = self.runtime
        now = perf_counter()
        self._c_samples.inc()
        scheduler = runtime.scheduler
        graph = runtime.graph
        completions = runtime.tasks_executed
        pending = graph.pending_count if graph is not None else 0
        ready = scheduler.ready_count if scheduler is not None else 0
        running = runtime._running
        parked = runtime._parked
        gate = getattr(scheduler, "gate", None)
        paused = gate is not None and gate.paused
        blocked = max(0, pending - running - ready)
        last = self.recorder.last_completion
        age = now - (last if last else self._started_at)
        self._g_age.set(age)
        self._g_blocked.set(blocked)

        sample = {
            "time": now,
            "completions": completions,
            "pending": pending,
            "ready": ready,
            "running": running,
            "parked": parked,
            "blocked": blocked,
            "paused": paused,
            "last_completion_age": age,
        }
        mp = getattr(runtime, "_mp", None)
        if mp is not None:
            liveness = mp.liveness()
            alive = sum(1 for w in liveness if w["alive"])
            runtime.metrics.gauge("mp.workers_alive").set(alive)
            sample["mp_workers_alive"] = alive
            deaths = runtime.metrics.counter("mp.worker_deaths").value
            self._death_history.append(deaths)
            del self._death_history[: -self.DEATH_WINDOW]
        self.last_sample = sample
        self.recorder.note_snapshot(sample)

        progress = completions > self._last_completions
        self._last_completions = completions
        new_findings: list[Finding] = []

        # -- stall / suspected deadlock --------------------------------
        # A pending graph where every task is either running or sitting
        # ready is slow, not stalled — only unaccounted-for (blocked)
        # tasks, or a fully idle runtime, with zero completions over
        # the streak counts.
        stalled_shape = pending > 0 and (blocked > 0 or running == 0)
        if progress or paused or not stalled_shape:
            self._stall_streak = 0
            if progress or pending == 0:
                with self._lock:
                    self._episode.clear()
        else:
            self._stall_streak += 1
        if self._stall_streak >= self.STALL_PERIODS:
            detail = dict(sample)
            finding = self._raise_finding(
                "global_stall",
                "warning",
                f"no task completed for {self._stall_streak} watchdog "
                f"periods ({self._stall_streak * self.interval:.2f}s) "
                f"with {pending} task(s) pending",
                detail,
            )
            if finding is not None:
                new_findings.append(finding)
            if ready == 0 and blocked > 0:
                chains = self._collect_chains()
                finding = self._raise_finding(
                    "suspected_deadlock",
                    "critical",
                    f"{blocked} task(s) blocked on dependencies that are "
                    f"not completing; see wait chains",
                    {**detail, "chains": chains},
                )
                if finding is not None:
                    new_findings.append(finding)

        # -- worker starvation -----------------------------------------
        starved = parked > 0 and ready > 0 and not paused
        self._starve_streak = self._starve_streak + 1 if starved else 0
        if self._starve_streak >= self.STARVE_PERIODS:
            finding = self._raise_finding(
                "worker_starvation",
                "warning",
                f"{parked} worker(s) parked while {ready} task(s) are "
                f"ready for {self._starve_streak} periods (missed "
                f"wakeup?)",
                dict(sample),
            )
            if finding is not None:
                new_findings.append(finding)

        # -- queue imbalance -------------------------------------------
        imbalance_fn = getattr(scheduler, "queue_imbalance", None)
        deepest, share = imbalance_fn() if imbalance_fn else (0, 0.0)
        imbalanced = (
            deepest >= self.IMBALANCE_MIN_DEPTH
            and share >= self.IMBALANCE_SHARE
        )
        self._imbalance_streak = (
            self._imbalance_streak + 1 if imbalanced else 0
        )
        if self._imbalance_streak >= self.IMBALANCE_PERIODS:
            finding = self._raise_finding(
                "queue_imbalance",
                "warning",
                f"one local ready list holds {deepest} task(s) "
                f"({share:.0%} of all ready work) for "
                f"{self._imbalance_streak} periods",
                {**sample, "deepest": deepest, "share": share},
            )
            if finding is not None:
                new_findings.append(finding)

        # -- mp worker death spike -------------------------------------
        if len(self._death_history) >= 2:
            delta = self._death_history[-1] - self._death_history[0]
            if delta >= self.DEATH_SPIKE:
                finding = self._raise_finding(
                    "worker_death_spike",
                    "critical",
                    f"{delta} worker process death(s) within the last "
                    f"{len(self._death_history)} watchdog periods",
                    {**sample, "deaths_in_window": delta},
                )
                if finding is not None:
                    new_findings.append(finding)

        if self._dump_requested:
            self._dump_requested = False
            self.dump(reason="sigusr1")
        return new_findings

    def _collect_chains(self) -> list:
        """Wait chains for up to :attr:`MAX_CHAINS` blocked tasks.

        Takes the tracker lock (and only it): completions mutate the
        graph under that lock, so the walk sees consistent edges.
        """

        runtime = self.runtime
        chains = []
        with runtime._tracker_lock:
            for task in blocked_tasks(runtime, limit=self.MAX_CHAINS):
                chains.append(wait_chain(runtime, task))
        return chains

    def _raise_finding(self, kind: str, severity: str, message: str,
                       details: dict) -> Optional[Finding]:
        """Record one finding (once per kind per anomaly episode)."""

        with self._lock:
            if kind in self._episode:
                return None
            self._episode.add(kind)
            finding = Finding(
                kind=kind, severity=severity, message=message,
                time=perf_counter(), details=details,
            )
            self.findings.append(finding)
            del self.findings[: -self.MAX_FINDINGS]
            self._g_findings.set(len(self.findings))
            self.runtime.metrics.counter(
                "health.findings_total", kind=kind
            ).inc()
        self.dump(reason=kind, findings=[finding])
        return finding

    # ------------------------------------------------------------------
    # on-demand surface
    # ------------------------------------------------------------------
    def explain(self, task) -> dict:
        """On-demand blocked-task explanation (takes the tracker lock).

        *task* may be a :class:`TaskInstance` or a task id.
        """

        runtime = self.runtime
        with runtime._tracker_lock:
            if isinstance(task, int):
                resolved = runtime.graph.get(task)
                if resolved is None:
                    raise ValueError(f"no in-flight task with id {task}")
                task = resolved
            return {
                "explanation": explain_blocked(runtime, task),
                "chain": wait_chain(runtime, task),
            }

    def dump(self, reason: str = "manual",
             findings: Optional[list] = None) -> dict:
        """Flight-recorder dump to ``health_dump_dir``; returns paths."""

        with self.runtime._tracker_lock:
            return self.recorder.dump(
                self.dump_dir,
                runtime=self.runtime,
                findings=findings if findings is not None else self.findings,
                reason=reason,
            )

    def note_stall(self, chains: list) -> None:
        """Feed from :func:`stalled_error`: the main thread proved a
        stall synchronously; record it and dump before the raise."""

        with self._lock:
            already = "hard_stall" in self._episode
            self._episode.add("hard_stall")
            if not already:
                finding = Finding(
                    kind="hard_stall",
                    severity="critical",
                    message=(
                        "main thread found pending tasks with nothing "
                        "ready or running (graph corruption?)"
                    ),
                    time=perf_counter(),
                    details={"chains": chains},
                )
                self.findings.append(finding)
                del self.findings[: -self.MAX_FINDINGS]
                self._g_findings.set(len(self.findings))
                self.runtime.metrics.counter(
                    "health.findings_total", kind="hard_stall"
                ).inc()
        if not already:
            # Not via self.dump(): the caller already holds the
            # scheduler lock, and the tracker lock is free to take —
            # but keep to the one-lock-at-a-time watchdog rule and
            # dump without extra locking (no worker is active).
            self.recorder.dump(
                self.dump_dir, runtime=self.runtime,
                findings=self.findings, reason="hard_stall",
            )

    def note_scrape(self) -> dict:
        """Refresh per-worker utilization-since-last-scrape gauges.

        Called by the exposition endpoint on every scrape (and once at
        shutdown); returns ``{thread: utilization}``.
        """

        now = perf_counter()
        elapsed = max(1e-9, now - self._scrape_time)
        busy = list(self.recorder.busy)
        out = {}
        metrics = self.runtime.metrics
        for idx, total in enumerate(busy):
            prev = (
                self._scrape_busy[idx]
                if idx < len(self._scrape_busy) else 0.0
            )
            util = max(0.0, min(1.0, (total - prev) / elapsed))
            metrics.gauge("health.worker_utilization", thread=idx).set(util)
            out[idx] = util
        self._scrape_time = now
        self._scrape_busy = busy
        return out

    def state(self) -> dict:
        """Plain-data health state (for the exposition ``health`` cmd)."""

        return {
            "interval": self.interval,
            "sample": dict(self.last_sample),
            "findings": [f.as_dict() for f in self.findings],
            "completions": self.recorder.completions,
            "address": self.address,
        }
