"""repro.obs — observability for the SMPSs reproduction.

The paper ships a *tracing-enabled runtime* whose Paraver traces are
how its authors diagnosed scheduler locality and the small-block
runtime-overhead wall (section VII.A).  This package is that story for
the Python reproduction, richer and cheaper:

* :class:`MetricsRegistry` — counters/gauges/histograms the runtimes
  populate (per-task-type durations, analysis and barrier overhead,
  steal/rename counts, ready-queue depths, renaming footprint);
* :class:`~repro.core.tracing.ThreadLocalTracer` — per-thread
  ring-buffer trace collection (re-exported here) replacing the
  shared-list hot path under the threaded backend;
* exporters — Chrome trace-event JSON (Perfetto-loadable) and
  Graphviz DOT with the critical path highlighted;
* the critical-path / utilisation analyzer behind
  ``Runtime.report()`` and ``python -m repro.obs report trace.json``;
* the differential analyzer (:mod:`repro.obs.diff`) behind
  ``python -m repro.obs diff A.trace.json B.trace.json`` — run-to-run
  makespan-delta attribution with bootstrap CIs, critical-path
  composition diffs, and side-by-side Chrome-trace/DOT exports;
* the always-on health layer (:mod:`repro.obs.health`,
  ``health=True``) — a stall/starvation/deadlock watchdog with a
  blocked-task explainer, a bounded flight recorder dumped on anomaly
  or ``SIGUSR1`` (:mod:`repro.obs.flightrec`), and a Prometheus text
  exposition endpoint (:mod:`repro.obs.exposition`,
  ``python -m repro.obs serve`` / ``scrape``).

See ``docs/observability.md`` for the metrics catalogue and usage,
and ``docs/benchmarking.md`` for the baseline/compare workflow built
on the diff engine.
"""

from ..core.tracing import ThreadLocalTracer
from .analyze import (
    ThreadUsage,
    TraceReport,
    analyze_events,
    analyze_tracer,
    load_chrome_trace,
    render_report,
    runtime_report,
)
from .diff import (
    GraphDiff,
    TraceDiff,
    critical_chain,
    diff_figures,
    diff_metrics,
    diff_task_graphs,
    diff_traces,
    render_figure_diff,
    render_graph_diff,
    render_metrics_diff,
    render_trace_diff,
    write_diff_chrome_trace,
    write_diff_dot,
)
from .export import graph_to_dot, to_chrome_trace, write_chrome_trace, write_dot
from .exposition import (
    ExpositionServer,
    render_registry,
    render_snapshot,
    scrape,
)
from .flightrec import FlightRecorder
from .health import (
    Finding,
    HealthMonitor,
    StallError,
    explain_blocked,
    wait_chain,
    wait_graph_dot,
)
from .metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    default_metrics,
    reset_default_metrics,
)

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "default_metrics",
    "reset_default_metrics",
    "ThreadLocalTracer",
    "ThreadUsage",
    "TraceReport",
    "analyze_events",
    "analyze_tracer",
    "load_chrome_trace",
    "render_report",
    "runtime_report",
    "graph_to_dot",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_dot",
    "GraphDiff",
    "TraceDiff",
    "critical_chain",
    "diff_traces",
    "diff_metrics",
    "diff_figures",
    "diff_task_graphs",
    "render_trace_diff",
    "render_graph_diff",
    "render_metrics_diff",
    "render_figure_diff",
    "write_diff_chrome_trace",
    "write_diff_dot",
    "ExpositionServer",
    "render_registry",
    "render_snapshot",
    "scrape",
    "FlightRecorder",
    "Finding",
    "HealthMonitor",
    "StallError",
    "explain_blocked",
    "wait_chain",
    "wait_graph_dot",
]
