"""Trace and graph exporters: Chrome trace-event JSON and Graphviz DOT.

The paper's tracing-enabled runtime emits Paraver ``.prv`` traces
(section VII.A); :meth:`repro.core.tracing.Tracer.to_paraver` keeps
that dialect.  This module adds the two formats today's tooling reads:

* **Chrome trace-event JSON** — loadable in Perfetto (ui.perfetto.dev)
  or ``chrome://tracing``.  Task executions become paired ``B``/``E``
  duration events on the executing thread's track; steals, renames,
  barriers and write-backs become instant events; ready-queue depth is
  derivable from the ready/start pairs.
* **Graphviz DOT** — the recorded :class:`~repro.core.graph.TaskGraph`
  with one colour per task type (Figure 5 style) and the critical path
  highlighted, the TEMANEJO-style task-graph debugging surface.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from ..core.graph import EdgeKind, TaskGraph
from ..core.tracing import EventKind

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "graph_to_dot",
    "write_dot",
]

#: Point events exported as Chrome "instant" records.
_INSTANT_KINDS = {
    EventKind.TASK_ADDED: "task_added",
    EventKind.TASK_READY: "task_ready",
    EventKind.EDGE_ADDED: "edge_added",
    EventKind.STEAL: "steal",
    EventKind.RENAME: "rename",
    EventKind.BARRIER_ENTER: "barrier_enter",
    EventKind.BARRIER_EXIT: "barrier_exit",
    EventKind.WAIT_ON_ENTER: "wait_on_enter",
    EventKind.WAIT_ON_EXIT: "wait_on_exit",
    EventKind.WRITE_BACK: "write_back",
}


def to_chrome_trace(tracer, *, pid: int = 1) -> dict:
    """Convert a tracer's events to a Chrome trace-event document.

    Timestamps are microseconds (the format's unit); the trace is
    shifted so the first event sits at ``ts == 0``, which keeps virtual
    simulator clocks and wall-clock ``perf_counter`` origins equally
    readable.  Task executions are ``B``/``E`` pairs; everything else is
    an instant (``ph == "i"``) with thread scope.
    """

    # Timestamp order, not list order: a plain Tracer that ingested
    # worker-ring batches (mp replies) holds them appended after the
    # fact, and Chrome's B/E matching requires per-tid time order —
    # unsorted, a task's E could precede its B and the slice vanishes.
    events = sorted(tracer.events, key=lambda e: e.time)
    t0 = min((e.time for e in events), default=0.0)
    records = []
    for event in events:
        ts = (event.time - t0) * 1e6
        tid = max(event.thread, 0)
        if event.kind == EventKind.TASK_START:
            records.append({
                "name": event.task_name or f"task {event.task_id}",
                "cat": "task",
                "ph": "B",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": {"task_id": event.task_id},
            })
        elif event.kind == EventKind.TASK_END:
            records.append({
                "name": event.task_name or f"task {event.task_id}",
                "cat": "task",
                "ph": "E",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": {"task_id": event.task_id},
            })
        else:
            name = _INSTANT_KINDS.get(event.kind, event.kind)
            # The raw thread (-1 means "no unlocking thread") so the
            # locality analysis round-trips through the JSON.
            args = {"task_id": event.task_id, "thread": event.thread}
            if event.extra:
                args["extra"] = [str(x) for x in event.extra]
            records.append({
                "name": name,
                "cat": "runtime",
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": "repro-smpss"},
        }
    ]
    for tid in sorted({r["tid"] for r in records}):
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": "main" if tid == 0 else f"worker-{tid}"},
        })
    return {
        "traceEvents": metadata + records,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "events": len(records)},
    }


def write_chrome_trace(tracer, path: str, *, pid: int = 1) -> str:
    """Write the Perfetto-loadable JSON to *path*; returns *path*."""

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer, pid=pid), handle)
    return path


# ---------------------------------------------------------------------------
# DOT export with critical path
# ---------------------------------------------------------------------------

_PALETTE = [
    "lightblue", "lightgreen", "salmon", "gold", "plum",
    "lightgrey", "orange", "cyan",
]


def graph_to_dot(
    graph: TaskGraph,
    weight: Optional[Callable] = None,
    highlight_critical: bool = True,
    label_names: bool = False,
) -> str:
    """Graphviz text of *graph*, critical path drawn bold red.

    *weight* feeds :meth:`TaskGraph.critical_path_tasks` (default unit
    weights — the T∞ chain in task counts).  ``label_names`` puts the
    task-type name in each node label next to the id.
    """

    critical_ids: set[int] = set()
    critical_edges: set[tuple[int, int]] = set()
    if highlight_critical:
        path = graph.critical_path_tasks(weight)
        critical_ids = {t.task_id for t in path}
        critical_edges = {
            (a.task_id, b.task_id) for a, b in zip(path, path[1:])
        }
    colours: dict[str, str] = {}
    lines = ["digraph tasks {", "  node [style=filled];"]
    for task in graph:
        colour = colours.setdefault(
            task.name, _PALETTE[len(colours) % len(_PALETTE)]
        )
        label = (
            f"{task.task_id}\\n{task.name}" if label_names else str(task.task_id)
        )
        attrs = f'label="{label}", fillcolor={colour}'
        if task.task_id in critical_ids:
            attrs += ", color=red, penwidth=3"
        lines.append(f"  t{task.task_id} [{attrs}];")
    for pred, succ, kind in sorted(graph.edges()):
        attrs = []
        if kind != EdgeKind.TRUE:
            attrs.append("style=dashed")
        if (pred, succ) in critical_edges:
            attrs.append("color=red")
            attrs.append("penwidth=3")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  t{pred} -> t{succ}{suffix};")
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: TaskGraph, path: str, **kwargs) -> str:
    """Write :func:`graph_to_dot` output to *path*; returns *path*."""

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(graph_to_dot(graph, **kwargs))
        handle.write("\n")
    return path
