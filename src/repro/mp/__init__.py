"""repro.mp — multiprocess shared-memory execution backend.

True parallelism beyond the GIL: the same sequential-looking task
program, the same master-side dependency tracker and scheduler, but
task bodies execute in long-lived forked worker processes.  Selected
per runtime with ``SmpssRuntime(backend="processes")``; see
``docs/execution_backends.md`` for the backend matrix and the arena
lifecycle rules.

Public surface (also re-exported from :mod:`repro`):

* :class:`SharedArena` / :func:`arena_array` — shared-memory ndarray
  allocation, so data crosses the process boundary by handle instead
  of by pickling;
* :func:`default_arena` — the lazily created process-wide arena;
* :class:`ArenaHandle` — the stable block reference that travels over
  the pipe;
* the error types a process-backed run can surface:
  :class:`MpSerializationError`, :class:`RemoteTaskError`,
  :class:`WorkerLostError`.
"""

from .arena import (
    ArenaHandle,
    SharedArena,
    arena_array,
    attach_handle,
    default_arena,
    handle_of,
    leaked_segment_files,
)
from .encoding import MpSerializationError, RemoteTaskError, WorkerLostError
from .executor import ProcessBackend

__all__ = [
    "ArenaHandle",
    "MpSerializationError",
    "ProcessBackend",
    "RemoteTaskError",
    "SharedArena",
    "WorkerLostError",
    "arena_array",
    "attach_handle",
    "default_arena",
    "handle_of",
    "leaked_segment_files",
]
