"""Wire format between the master and worker processes.

A task crosses the pipe as ``(definition key, definition payload,
encoded call values, write-back specs)``:

* the **definition key** is stable per :class:`TaskDefinition`; each
  worker caches resolved definitions so the payload (how to find the
  task function) is sent once per worker, not once per task;
* each **call value** ships either as an :class:`~repro.mp.arena.ArenaHandle`
  (when the resolved value is an ndarray living in a shared-memory
  arena — zero copy, and worker writes land directly in master memory)
  or by pickle (scalars, small objects, non-arena arrays);
* the **write-back specs** say which pickled values the worker must
  send back because the master's dependency semantics treat them as
  written — whole renamed buffers, lists/bytearrays, or the declared
  region slice of a region-mode access.  Arena-backed values never
  need write-back.

Everything here runs master-side except :func:`decode_values` /
:func:`collect_writebacks`, which the worker calls; keeping both ends
of the format in one module keeps them from drifting apart.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional

import numpy as np

from ..core.task import Direction, TaskInstance
from .arena import attach_handle, handle_of

__all__ = [
    "MpSerializationError",
    "WorkerLostError",
    "RemoteTaskError",
    "definition_key",
    "definition_payload",
    "resolve_definition_func",
    "encode_values",
    "decode_values",
    "writeback_specs",
    "collect_writebacks",
    "apply_writebacks",
    "format_remote_error",
]

PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Value tags on the wire.
_ARENA = "a"
_PICKLE = "v"


class MpSerializationError(TypeError):
    """A task's arguments cannot cross the process boundary safely."""


class WorkerLostError(RuntimeError):
    """A worker process died and the task could not be recovered."""


class RemoteTaskError(RuntimeError):
    """A task body raised inside a worker process.

    Carries the remote exception's type name, message, and formatted
    traceback (the original object may not be picklable, so it never
    crosses the pipe).
    """

    def __init__(self, exc_type: str, message: str, remote_traceback: str):
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:
        base = super().__str__()
        if self.remote_traceback:
            return f"{base}\n--- remote traceback ---\n{self.remote_traceback}"
        return base


def format_remote_error(exc: BaseException) -> tuple:
    import traceback

    return (
        type(exc).__name__,
        str(exc),
        "".join(traceback.format_exception(type(exc), exc, exc.__traceback__)),
    )


# ---------------------------------------------------------------------------
# task definitions
# ---------------------------------------------------------------------------

def definition_key(definition) -> int:
    """Stable per-definition cache key (valid for the master's lifetime)."""

    return id(definition)


def definition_payload(definition) -> tuple:
    """How a worker locates the task function.

    Preferred form is ``("n", module, qualname)``: the worker imports
    the module and walks the qualname.  The attribute it finds is
    usually the ``@css_task`` wrapper, whose ``.sequential`` is the
    plain function — exactly what the worker must call (with no runtime
    on the worker's stack, calling the wrapper would also work, but
    resolving to the raw function keeps nested task calls trivially
    inline).  Functions that are not reachable by name (closures,
    ``<locals>``) fall back to pickling the function object itself;
    when neither works the task cannot run on the process backend.
    """

    func = definition.func
    module = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if module and qualname and "<locals>" not in qualname:
        return ("n", module, qualname)
    try:
        return ("p", pickle.dumps(func, protocol=PROTOCOL))
    except Exception as exc:
        raise MpSerializationError(
            f"task {definition.name!r}: function is not reachable by "
            f"module/qualname and not picklable ({exc!r}); the process "
            f"backend cannot ship it — define the task at module level "
            f"or use backend='threads'"
        ) from exc


def resolve_definition_func(payload: tuple):
    """Worker-side inverse of :func:`definition_payload`."""

    if payload[0] == "p":
        return pickle.loads(payload[1])
    _tag, module_name, qualname = payload
    import importlib

    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    sequential = getattr(obj, "sequential", None)
    if sequential is not None and callable(sequential):
        return sequential
    wrapped = getattr(obj, "__wrapped__", None)
    if wrapped is not None and callable(wrapped):
        return wrapped
    if callable(obj):
        return obj
    raise MpSerializationError(
        f"{module_name}.{qualname} resolved to a non-callable {obj!r}"
    )


# ---------------------------------------------------------------------------
# call values
# ---------------------------------------------------------------------------

def encode_values(task: TaskInstance, values: list) -> list:
    """Encode resolved call *values* for the wire.

    Arena-backed ndarrays (and any non-negative-stride view into one)
    become handles; everything else is embedded for pickling.  Opaque
    ndarray parameters are *required* to be arena-backed: the tracker
    ignores them, so a worker writing into a pickled copy (the paper's
    ``put_block``-through-``void*`` idiom) would be silently lost —
    exactly the failure mode this check turns into an error.
    """

    encoded: list = []
    opaque_positions = _opaque_positions(task)
    for pos, value in enumerate(values):
        handle = handle_of(value)
        if handle is not None:
            encoded.append((_ARENA, handle))
            continue
        if pos in opaque_positions and isinstance(value, np.ndarray):
            raise MpSerializationError(
                f"task {task.name!r}: opaque ndarray parameter "
                f"{task.definition.param_names[pos]!r} is not arena-backed; "
                f"worker writes to a pickled copy would be lost silently. "
                f"Allocate it with repro.arena_array(...) or run with "
                f"backend='threads'."
            )
        encoded.append((_PICKLE, value))
    return encoded


def _opaque_positions(task: TaskInstance) -> frozenset:
    positions = task.definition.positions
    return frozenset(
        positions[spec.name]
        for spec in task.definition.params
        if spec.direction is Direction.OPAQUE and spec.name in positions
    )


def decode_values(encoded: list, segment_cache: dict) -> list:
    """Worker-side: materialise the argument list."""

    return [
        attach_handle(payload, segment_cache) if tag == _ARENA else payload
        for tag, payload in encoded
    ]


# ---------------------------------------------------------------------------
# write-back
# ---------------------------------------------------------------------------

def writeback_specs(task: TaskInstance, values: list) -> list:
    """Which positions the worker must return, as ``(pos, slices)``.

    ``slices`` is ``None`` for whole-object write-back and a tuple of
    :class:`slice` objects for region-mode accesses (two workers
    writing disjoint regions of one array must each copy back only
    their own region, or the later copy would clobber the earlier one).
    Arena-backed values are skipped — worker writes already landed in
    shared memory.
    """

    specs: list = []
    seen: set = set()
    for access in task.accesses:
        if not access.direction.writes:
            continue
        pos = access.position
        if pos < 0:
            pos = task.definition.positions[access.name]
        value = values[pos]
        if handle_of(value) is not None:
            continue
        slices: Optional[tuple] = None
        if access.region is not None:
            slices = access.region.to_slices()
        dedup = (pos, None if slices is None else tuple(
            (s.start, s.stop, s.step) for s in slices
        ))
        if dedup in seen:
            continue
        seen.add(dedup)
        if isinstance(value, np.ndarray):
            specs.append((pos, slices))
        elif isinstance(value, (list, bytearray)) and slices is None:
            specs.append((pos, None))
        else:
            raise MpSerializationError(
                f"task {task.name!r}: written parameter "
                f"{access.name!r} has type {type(value).__name__}, which "
                f"the process backend cannot copy back from a worker; "
                f"use an ndarray/list/bytearray, an arena-backed array, "
                f"or backend='threads'"
            )
    return specs


def collect_writebacks(specs: list, values: list) -> list:
    """Worker-side: the values (or region slices) to send home."""

    out: list = []
    for pos, slices in specs:
        value = values[pos]
        if slices is not None:
            out.append(np.ascontiguousarray(value[slices]))
        else:
            out.append(value)
    return out


def apply_writebacks(specs: list, payloads: list, values: list) -> None:
    """Master-side: land returned data in the task's resolved storage.

    Runs on the proxy thread *before* the task is marked complete, so
    successors (and the barrier's write-back pass) observe the data
    exactly as if the task had executed locally.
    """

    for (pos, slices), payload in zip(specs, payloads):
        target = values[pos]
        if slices is not None:
            target[slices] = payload
        elif isinstance(target, np.ndarray):
            target[...] = payload
        else:  # list / bytearray
            target[:] = payload
