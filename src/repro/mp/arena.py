"""Shared-memory arena: ndarray blocks with stable cross-process handles.

The process backend (:mod:`repro.mp.executor`) ships task arguments to
worker processes over pipes.  Pickling every ndarray would copy the
data twice per task — the exact overhead the paper's shared-address
runtime avoids — so the arena provides the shared-address half of the
design: blocks allocated here live in ``multiprocessing.shared_memory``
segments that every worker process maps, and an arena-backed array (or
any view into one) travels as a tiny :class:`ArenaHandle` instead of
bytes.  Reads and writes made by a worker land directly in the master's
memory, which is what lets renaming, write-back, and the paper's
"opaque flat matrix" idiom (:func:`repro.apps.tasks.put_block_t`) work
unchanged across process boundaries.

Lifecycle: an arena owns its segments.  ``close()`` (also ``__exit__``,
``__del__``, and an ``atexit`` hook for the process-default arena)
closes and unlinks every segment, so no ``/dev/shm`` files outlive the
process even when a ``with`` block unwinds on an exception.
:func:`leaked_segment_files` supports leak checks in tests.

Allocation is a simple bump allocator: blocks are carved from the
current segment and a new segment is mapped when it fills.  Blocks are
freed only by ``close()`` — the intended granularity is "one arena per
application phase", matching the barrier-scoped data lifetime of the
programming model.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
from multiprocessing import shared_memory
from typing import Any, NamedTuple, Optional

import numpy as np

__all__ = [
    "ArenaHandle",
    "SharedArena",
    "arena_array",
    "default_arena",
    "handle_of",
    "attach_handle",
    "leaked_segment_files",
]

#: Prefix of every segment name this module creates; the leak check
#: scans ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro-mp"

#: Alignment of every block (bytes).  Cache-line aligned so tiles handed
#: to different workers never share a line.
_ALIGN = 64

#: Process-global segment registry: name -> (base address, size, arena).
#: :func:`handle_of` resolves any ndarray against it, so adoption of
#: arena-backed arrays is transparent — apps pass views around and the
#: encoder recognises them wherever they came from.
_SEGMENTS: dict[str, tuple[int, int, "SharedArena"]] = {}
_registry_lock = threading.Lock()


class ArenaHandle(NamedTuple):
    """A stable, picklable reference to an ndarray in a shared segment."""

    segment: str
    offset: int
    shape: tuple
    #: dtype string (``np.dtype.str``; endianness included).
    dtype: str
    strides: tuple


def _buffer_address(shm: shared_memory.SharedMemory) -> int:
    return np.frombuffer(shm.buf, dtype=np.uint8).__array_interface__["data"][0]


class SharedArena:
    """Bump allocator handing out ndarray blocks in shared memory.

    Usage::

        with SharedArena() as arena:
            a = arena.zeros((n, n), np.float64)
            ...  # run task programs over `a` and views of it

    or, for the common case, the module-level :func:`arena_array`
    against the process-default arena.
    """

    def __init__(self, segment_bytes: int = 16 << 20):
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        self.segment_bytes = int(segment_bytes)
        self._uid = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._segments: list[shared_memory.SharedMemory] = []
        self._cursor = 0  # bump offset within the newest segment
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def _new_segment(self, at_least: int) -> shared_memory.SharedMemory:
        size = max(self.segment_bytes, at_least)
        name = f"{SEGMENT_PREFIX}-{self._uid}-{len(self._segments)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._segments.append(shm)
        self._cursor = 0
        with _registry_lock:
            _SEGMENTS[shm.name] = (_buffer_address(shm), shm.size, self)
        return shm

    def empty(self, shape, dtype=np.float64) -> np.ndarray:
        """Allocate an uninitialised C-contiguous block."""

        dtype = np.dtype(dtype)
        shape = (shape,) if isinstance(shape, (int, np.integer)) else tuple(shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        with self._lock:
            if self._closed:
                raise RuntimeError("arena is closed")
            if not self._segments or self._cursor + nbytes > self._segments[-1].size:
                self._new_segment(nbytes)
            shm = self._segments[-1]
            offset = self._cursor
            self._cursor = (offset + nbytes + _ALIGN - 1) & ~(_ALIGN - 1)
        return np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)

    def zeros(self, shape, dtype=np.float64) -> np.ndarray:
        block = self.empty(shape, dtype)
        block[...] = 0
        return block

    def array(self, source: np.ndarray) -> np.ndarray:
        """Copy *source* into the arena (the adoption path for apps)."""

        block = self.empty(source.shape, source.dtype)
        block[...] = source
        return block

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def segment_names(self) -> list[str]:
        return [shm.name for shm in self._segments]

    @property
    def allocated_segments(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Close and unlink every segment.  Idempotent, never raises.

        Arrays previously handed out become invalid; touching one after
        close is use-after-free (numpy may still see the old mapping
        until the last reference drops, so misuse is not guaranteed to
        crash — don't rely on it).
        """

        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, []
        for shm in segments:
            with _registry_lock:
                _SEGMENTS.pop(shm.name, None)
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# handles
# ---------------------------------------------------------------------------

def handle_of(value: Any) -> Optional[ArenaHandle]:
    """The :class:`ArenaHandle` of *value* if it lives in a registered
    arena segment, else ``None``.

    Works for any view (slices, blocks, transposes) as long as every
    stride is non-negative and the view's extent fits inside one
    segment; reversed (negative-stride) views fall back to ``None`` and
    travel by pickle instead — correct, just slower.
    """

    if not isinstance(value, np.ndarray) or value.dtype.hasobject:
        return None
    with _registry_lock:
        segments = list(_SEGMENTS.items())
    if not segments:
        return None
    addr = value.__array_interface__["data"][0]
    strides = value.strides
    if any(s < 0 for s in strides):
        return None
    span = value.itemsize + sum(
        (n - 1) * s for n, s in zip(value.shape, strides) if n > 0
    )
    if 0 in value.shape:
        span = 0
    for name, (base, size, _arena) in segments:
        if base <= addr and addr + span <= base + size:
            return ArenaHandle(
                segment=name,
                offset=addr - base,
                shape=tuple(value.shape),
                dtype=value.dtype.str,
                strides=tuple(strides),
            )
    return None


#: Process-global attachment cache for :func:`attach_handle` callers
#: that do not manage one themselves.  Entries MUST stay referenced for
#: as long as any array built on them is alive: ``SharedMemory.__del__``
#: unmaps the segment even while ndarrays still point into it (numpy's
#: ``base`` chain holds the mmap *object*, not a buffer export).
_ATTACH_CACHE: dict[str, shared_memory.SharedMemory] = {}


def attach_handle(
    handle: ArenaHandle,
    cache: Optional[dict[str, shared_memory.SharedMemory]] = None,
) -> np.ndarray:
    """Map *handle* back to an ndarray (worker-process side).

    *cache* memoises segment attachments per process (default: a
    module-global cache, which is what keeps the mapping alive under
    the returned array — see :data:`_ATTACH_CACHE`).  Ownership note
    (CPython's bpo-39959 behaviour): attaching registers the segment
    with the attacher's ``resource_tracker``, and a non-owner's
    registration would produce spurious unlinks/warnings — worker
    processes therefore suppress shared-memory registration wholesale
    (see ``repro.mp.worker``); only the creating arena ever unlinks.
    """

    if cache is None:
        cache = _ATTACH_CACHE
    shm = cache.get(handle.segment)
    if shm is None:
        shm = shared_memory.SharedMemory(name=handle.segment)
        cache[handle.segment] = shm
    return np.ndarray(
        handle.shape,
        dtype=np.dtype(handle.dtype),
        buffer=shm.buf,
        offset=handle.offset,
        strides=handle.strides,
    )


# ---------------------------------------------------------------------------
# the process-default arena
# ---------------------------------------------------------------------------

_default: Optional[SharedArena] = None
_default_lock = threading.Lock()


def default_arena() -> SharedArena:
    """The lazily created process-wide arena (unlinked at interpreter
    exit via ``atexit``; replaceable after an explicit ``close()``)."""

    global _default
    with _default_lock:
        if _default is None or _default._closed:
            _default = SharedArena()
        return _default


@atexit.register
def _close_default_arena() -> None:  # pragma: no cover - exit hook
    global _default
    if _default is not None:
        _default.close()
        _default = None


def arena_array(source_or_shape, dtype=np.float64, *, arena: Optional[SharedArena] = None) -> np.ndarray:
    """Allocate (or adopt) an ndarray in shared-arena memory.

    * ``arena_array((256, 256))`` — a zero-filled float64 block;
    * ``arena_array((64,), np.int32)`` — explicit dtype;
    * ``arena_array(existing_ndarray)`` — a shared copy of the data
      (the dtype is taken from the source).

    Uses the process-default arena unless *arena* is given.  The result
    is an ordinary ndarray usable under either backend; under
    ``backend="processes"`` it (and every view of it) travels to
    workers by handle, zero-copy.
    """

    arena = arena or default_arena()
    if isinstance(source_or_shape, np.ndarray):
        return arena.array(source_or_shape)
    return arena.zeros(source_or_shape, dtype)


def leaked_segment_files(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """``/dev/shm`` entries left behind by this module (should be none).

    On platforms without ``/dev/shm`` the check degrades to the live
    registry (segments not yet closed).
    """

    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        try:
            return sorted(
                name for name in os.listdir(shm_dir) if name.startswith(prefix)
            )
        except OSError:  # pragma: no cover - permission oddities
            pass
    with _registry_lock:
        return sorted(name for name in _SEGMENTS if name.startswith(prefix))
