"""Worker-process entry point for the process backend.

Each worker is a long-lived forked child running :func:`worker_main`:
a loop of ``recv task -> attach arena blocks -> run the task function
-> send back write-backs (+ trace events)``.  The dependency analysis,
the scheduler, renaming, and all completion bookkeeping stay in the
master — a worker sees only fully-resolved argument values, exactly
like a worker *thread* does in :mod:`repro.core.runtime`.

Forked children inherit the master's interpreter state, including the
active-runtime stack and the arena registry.  The first thing a worker
does is neutralise both: the api stack is cleared so task calls made
*inside* a task body run inline (sequential semantics, the same rule
the threaded backend implements via ``in_task_body``), and inherited
:class:`~repro.mp.arena.SharedArena` objects are disarmed so a worker
exiting can never close or unlink segments the master still owns.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from time import perf_counter

from ..core.tracing import EventKind, TraceEvent
from .encoding import (
    PROTOCOL,
    collect_writebacks,
    decode_values,
    format_remote_error,
    resolve_definition_func,
)

__all__ = ["worker_main"]

#: message tags (master -> worker)
MSG_TASK = "task"
MSG_STOP = "stop"
#: message tags (worker -> master)
MSG_READY = "ready"
MSG_DONE = "done"
MSG_BYE = "bye"


def _neutralise_inherited_state() -> None:
    """Disarm master-owned state copied across ``fork``.

    * The api runtime stack: must look sequential in the worker, and
      its lock must be fresh (another master thread could have held it
      at fork time).
    * Arenas: the child's copies must never close/unlink shared
      segments — only the master arena owns them.  Inherited
      ``SharedMemory`` objects are dropped without ``close()`` so the
      ``atexit``/GC paths in the child are no-ops.
    """

    from ..core import api as _api

    _api._neutralise_stack()

    # Workers never own shared-memory segments, so none of their
    # attachments may reach the (fork-shared) resource tracker: a
    # non-owner registration either double-unregisters when the master
    # unlinks or triggers a bogus leaked-resource unlink at exit
    # (bpo-39959).  Suppress shared_memory registration wholesale.
    from multiprocessing import resource_tracker as _rt

    _orig_register = _rt.register

    def _register(name, rtype):  # pragma: no cover - child-process only
        if rtype == "shared_memory":
            return
        _orig_register(name, rtype)

    _rt.register = _register

    from . import arena as _arena

    for _base, _size, owner in list(_arena._SEGMENTS.values()):
        owner._closed = True
        owner._segments = []
    _arena._SEGMENTS = {}
    _arena._registry_lock = threading.Lock()
    _arena._default = None
    _arena._default_lock = threading.Lock()


def worker_main(conn, slot: int, trace: bool, ring_capacity: int) -> None:
    """Run tasks from *conn* until a stop message (or EOF/unpickle death).

    *slot* is the thread index this worker represents in the merged
    timeline (the same index as its master-side proxy thread), so the
    observability stack sees worker processes as threads.  Trace events
    are buffered in a bounded ring and piggy-backed on every reply —
    there is no separate trace channel to flush or lose.
    """

    _neutralise_inherited_state()

    segment_cache: dict = {}
    func_cache: dict = {}
    events: deque = deque(maxlen=max(int(ring_capacity), 2))
    clock = perf_counter

    def send(msg: tuple) -> None:
        conn.send_bytes(pickle.dumps(msg, protocol=PROTOCOL))

    def drain_events() -> list:
        out = list(events)
        events.clear()
        return out

    send((MSG_READY, None))
    try:
        while True:
            try:
                msg = pickle.loads(conn.recv_bytes())
            except (EOFError, OSError):
                return  # master is gone; nothing to report to
            if msg[0] == MSG_STOP:
                send((MSG_BYE, drain_events()))
                return
            (_tag, seq, def_key, def_payload, task_id, task_name,
             enc_values, wb_specs) = msg
            func = func_cache.get(def_key)
            err = None
            wb_values: list = []
            duration = 0.0
            try:
                if func is None:
                    func = func_cache[def_key] = resolve_definition_func(
                        def_payload
                    )
                values = decode_values(enc_values, segment_cache)
                if trace:
                    events.append(TraceEvent(
                        time=clock(), kind=EventKind.TASK_START,
                        task_id=task_id, task_name=task_name, thread=slot,
                    ))
                t0 = clock()
                func(*values)
                duration = clock() - t0
                if trace:
                    events.append(TraceEvent(
                        time=clock(), kind=EventKind.TASK_END,
                        task_id=task_id, task_name=task_name, thread=slot,
                    ))
                wb_values = collect_writebacks(wb_specs, values)
            except BaseException as exc:  # noqa: BLE001 - shipped to master
                err = format_remote_error(exc)
                if trace:
                    events.append(TraceEvent(
                        time=clock(), kind=EventKind.TASK_END,
                        task_id=task_id, task_name=task_name, thread=slot,
                        extra=("error",),
                    ))
            try:
                send((MSG_DONE, seq, err, wb_values, duration, drain_events()))
            except (BrokenPipeError, OSError):
                return
            except Exception as exc:  # e.g. unpicklable write-back value
                try:
                    send((MSG_DONE, seq, format_remote_error(exc), [],
                          duration, []))
                except Exception:
                    return
    finally:
        try:
            conn.close()
        except Exception:
            pass
